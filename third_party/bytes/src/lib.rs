//! Offline shim for `bytes`: a `Vec<u8>`-backed `BytesMut` writer and a
//! cursor-style `Bytes` reader, covering exactly the little-endian
//! `put_*`/`get_*` surface the store codec uses.

use std::ops::Deref;

/// Growable write buffer.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self { buf: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn freeze(self) -> Bytes {
        Bytes { buf: self.buf, pos: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over an owned byte buffer.
#[derive(Debug, Clone)]
pub struct Bytes {
    buf: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { buf: data.to_vec(), pos: 0 }
    }

    /// Splits off the next `len` unread bytes into a new `Bytes`,
    /// advancing this cursor past them.
    pub fn split_to(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "split_to out of bounds");
        let start = self.pos;
        self.pos += len;
        Bytes { buf: self.buf[start..start + len].to_vec(), pos: 0 }
    }

    /// Copies the unread portion into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        Self { buf, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.buf[self.pos..]
    }
}

/// Read side: little-endian primitive extraction. Panics when the buffer
/// is exhausted, matching the real crate; callers bounds-check first via
/// [`Buf::remaining`].
pub trait Buf {
    fn remaining(&self) -> usize;
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.remaining(), "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        out
    }
}

/// Write side: little-endian primitive appends.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_i64_le(-42);
        w.put_f64_le(3.25);
        w.put_slice(b"ab");
        let mut r = Bytes::from(w.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 3.25);
        let tail = r.split_to(2);
        assert_eq!(tail.to_vec(), b"ab");
        assert_eq!(r.remaining(), 0);
    }
}
