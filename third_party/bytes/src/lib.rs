//! Offline shim for `bytes`: a `Vec<u8>`-backed `BytesMut` writer and a
//! shared-buffer `Bytes` reader, covering exactly the little-endian
//! `put_*`/`get_*` surface the store codec uses.
//!
//! `Bytes` mirrors the real crate's cheap-clone semantics: the backing
//! allocation lives behind an `Arc<[u8]>` and [`Bytes::slice`] /
//! [`Bytes::split_to`] hand out sub-views without copying, which is what
//! lets the store's offset-index reader decode borrowed payloads straight
//! out of one file-sized buffer.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Growable write buffer.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self { buf: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Cheaply cloneable view into a shared byte buffer.
///
/// The `get_*` cursor methods consume from the front of the view (advancing
/// `start`), matching how the real crate's `Buf` impl behaves.
#[derive(Debug, Clone)]
pub struct Bytes {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Unread length of this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view of `range` (relative to this view) sharing the same
    /// backing buffer — no bytes are copied. Panics when the range is out
    /// of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { buf: Arc::clone(&self.buf), start: self.start + lo, end: self.start + hi }
    }

    /// Splits off the next `len` unread bytes into a new `Bytes` (sharing
    /// the backing buffer), advancing this cursor past them.
    pub fn split_to(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "split_to out of bounds");
        let head = self.slice(..len);
        self.start += len;
        head
    }

    /// Copies the unread portion into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf[self.start..self.end].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        let end = buf.len();
        Self { buf: buf.into(), start: 0, end }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Read side: little-endian primitive extraction. Panics when the buffer
/// is exhausted, matching the real crate; callers bounds-check first via
/// [`Buf::remaining`].
pub trait Buf {
    fn remaining(&self) -> usize;
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.remaining(), "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.start..self.start + N]);
        self.start += N;
        out
    }
}

/// Write side: little-endian primitive appends.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_i64_le(-42);
        w.put_f64_le(3.25);
        w.put_slice(b"ab");
        let mut r = Bytes::from(w.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 3.25);
        let tail = r.split_to(2);
        assert_eq!(tail.to_vec(), b"ab");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slices_share_the_backing_buffer() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = b.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        // A slice of a slice stays anchored to the original allocation.
        let inner = mid.slice(1..3);
        assert_eq!(inner.to_vec(), vec![3, 4]);
        assert_eq!(b.len(), 8);

        let mut cursor = mid;
        let head = cursor.split_to(2);
        assert_eq!(&head[..], &[2, 3]);
        assert_eq!(cursor.to_vec(), vec![4, 5]);
    }
}
