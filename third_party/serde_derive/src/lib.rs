//! Offline shim for `serde_derive`: the derives are accepted (including
//! `#[serde(...)]` field/container attributes) and expand to nothing.
//! Nothing in this workspace serialises through serde — the store codec
//! is hand-rolled — so marker-level compatibility is all that is needed.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
