//! Offline shim for `proptest`: a deterministic property-testing runner
//! covering the strategy surface this workspace uses — numeric range
//! strategies, tuples, `collection::vec`, `bool::ANY`, `prop_map`, and
//! the `proptest!` / `prop_assert!` macro family.
//!
//! Differences from the real crate, by design:
//! - no shrinking: a failing case reports its case index and seed so it
//!   can be replayed (generation is a pure function of test name + index);
//! - uniform sampling only, no edge-case biasing;
//! - `ProptestConfig` carries just the `cases` knob.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::{vec, VecStrategy};
}

/// `proptest::bool` — strategy for arbitrary booleans.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current property case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when the assumption does not hold. The shim
/// counts a skipped case as a (vacuous) pass.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0f64..1.0, n in 1usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(test_path, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(message) = outcome {
                    ::std::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        test_path, case, config.cases, message
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}
