//! Value-generation strategies for the proptest shim.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`. Unlike the real
/// crate there is no value tree / shrinking: `generate` draws one value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty integer range strategy");
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $ty
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Strategy for `Vec`s with a length drawn from `size` and elements drawn
/// from `element`. Mirrors `proptest::collection::vec`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let len = if span == 0 {
            self.size.start
        } else {
            self.size.start + (rng.next_u64() as usize) % span
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = (3usize..4).generate(&mut rng);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = vec(0f64..1.0, 2..12).generate(&mut rng);
            assert!((2..12).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::new(3);
        let s = (0f64..1.0, 10i32..20).prop_map(|(a, b)| (b, a));
        let (b, a) = s.generate(&mut rng);
        assert!((10..20).contains(&b));
        assert!((0.0..1.0).contains(&a));
    }
}
