//! Deterministic RNG and runner configuration for the proptest shim.

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Lighter than the real crate's 256: every case re-runs from the
        // same seeds each time (no time/entropy input), so extra cases
        // only cost wall-clock, they never explore new inputs between CI
        // runs.
        Self { cases: 64 }
    }
}

/// SplitMix64 generator seeded from the test path and case index, so every
/// run of a given test replays the identical input sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Seeds a generator for one case of one property.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(hash.wrapping_add(u64::from(case).wrapping_mul(0x2545_f491_4f6c_dd1d)))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = TestRng::for_case("mod::test", 4);
        assert_ne!(a[0], other.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = TestRng::new(42);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
