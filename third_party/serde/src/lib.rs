//! Offline shim for `serde`: marker traits plus re-exported no-op derive
//! macros. The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! forward-compatible annotations; no code path serialises through serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
