//! Offline shim for `criterion`: same API shape (`Criterion`, groups,
//! `Bencher::iter`/`iter_batched`, `Throughput`, the `criterion_group!` /
//! `criterion_main!` macros) backed by a simple wall-clock sampler.
//!
//! Each benchmark is auto-calibrated so one sample costs roughly
//! `target_sample_ms`, then `sample_size` samples are taken and the
//! median per-iteration time is reported on stdout. No statistics beyond
//! that, no plots, no saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared workload per iteration; used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortises setup; the shim treats every variant as
/// "one setup per routine call".
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
struct SamplerConfig {
    sample_size: usize,
    target_sample_ms: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self { sample_size: 12, target_sample_ms: 20 }
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    config: SamplerConfig,
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.config, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            config: self.config,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks sharing throughput/sampling knobs.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: SamplerConfig,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        let per_sample = time.as_millis() as u64 / self.config.sample_size.max(1) as u64;
        self.config.target_sample_ms = per_sample.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.config, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; records timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut timed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
        }
        self.elapsed = timed;
    }
}

fn run_one<F>(id: &str, config: SamplerConfig, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the iteration count until one sample takes long
    // enough to measure reliably.
    let mut iters: u64 = 1;
    let target = Duration::from_millis(config.target_sample_ms);
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= target || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (target.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut samples: Vec<f64> = (0..config.sample_size)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let median = samples[samples.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  thrpt: {:>12}/s", format_count(n as f64 / median))
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  thrpt: {:>11}B/s", format_count(n as f64 / median))
        }
        _ => String::new(),
    };
    println!("{id:<48} time: {:>12}/iter{rate}", format_time(median));
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn format_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls = calls.wrapping_add(1)));
        assert!(calls > 0);
    }

    #[test]
    fn group_with_throughput_and_batched() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(3);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
