//! `taxi-traces` — a full Rust reproduction of *"Revealing reliable
//! information from taxi traces: from raw data to information discovery"*
//! (ICDE Workshops 2022).
//!
//! This facade crate re-exports the workspace so downstream users depend on
//! one crate:
//!
//! | module | contents |
//! |---|---|
//! | [`geo`] | planar geometry, grids, R-tree, thick-geometry corridors |
//! | [`timebase`] | timestamps, civil dates, Finnish seasons |
//! | [`roadnet`] | Digiroad-like road network, Dijkstra, synthetic Oulu |
//! | [`weather`] | FMI-style road weather substitute |
//! | [`traces`] | taxi fleet simulator, device sampler, error injection |
//! | [`store`] | embedded trip store (PostGIS stand-in) |
//! | [`cleaning`] | §IV-B order repair + Table 2 segmentation |
//! | [`matching`] | §IV-E incremental / HMM / nearest map-matching |
//! | [`od`] | §IV-D O-D transition funnel (Table 3) |
//! | [`stats`] | summaries, OLS, REML mixed models, QQ |
//! | [`core`] | the end-to-end [`core::Study`] pipeline and analyses |
//! | [`obs`] | metrics registry, spans, schema-versioned renderers |
//! | [`serve`] | read service: epoch-swapped snapshots, HTTP/JSON queries |
//! | [`stream`] | streaming ingest: watermarks, backpressure, stream cursors |
//! | [`ingest`] | untrusted external trace/map formats, fuzz mutators |
//!
//! See the repository's `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-versus-measured record.
//!
//! ```
//! use taxi_traces::core::{Study, StudyConfig};
//!
//! let config = StudyConfig::builder(1).scale(0.05).build().expect("valid config");
//! let out = Study::new(config).run().expect("pipeline");
//! assert!(!out.segments.is_empty());
//! ```

pub use taxitrace_cleaning as cleaning;
pub use taxitrace_core as core;
pub use taxitrace_geo as geo;
pub use taxitrace_ingest as ingest;
pub use taxitrace_matching as matching;
pub use taxitrace_obs as obs;
pub use taxitrace_od as od;
pub use taxitrace_roadnet as roadnet;
pub use taxitrace_serve as serve;
pub use taxitrace_stats as stats;
pub use taxitrace_store as store;
pub use taxitrace_stream as stream;
pub use taxitrace_timebase as timebase;
pub use taxitrace_traces as traces;
pub use taxitrace_weather as weather;
