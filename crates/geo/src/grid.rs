use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BBox, Point};

/// Identifier of one grid cell: integer column (`ix`, east) and row (`iy`,
/// north) indices relative to the grid origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId {
    pub ix: i32,
    pub iy: i32,
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell({}, {})", self.ix, self.iy)
    }
}

/// Uniform analysis grid over the planar frame.
///
/// The paper aggregates point speeds and map features into even
/// 200 m × 200 m cells (§V); this type provides the cell addressing for that
/// aggregation, for Table 5 and Figs. 6–9, and also serves as the spatial
/// bucket index of the trip store.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    origin: Point,
    cell_size: f64,
}

impl Grid {
    /// Creates a grid anchored at `origin` with square cells of
    /// `cell_size` metres. Panics if `cell_size` is not strictly positive.
    pub fn new(origin: Point, cell_size: f64) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell size must be positive and finite, got {cell_size}"
        );
        Self { origin, cell_size }
    }

    /// The paper's 200 m grid anchored at the frame origin.
    pub fn paper_default() -> Self {
        Self::new(Point::new(0.0, 0.0), 200.0)
    }

    /// Cell edge length in metres.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The cell containing `p` (cells are half-open: `[min, min + size)`).
    #[inline]
    pub fn cell_of(&self, p: Point) -> CellId {
        CellId {
            ix: ((p.x - self.origin.x) / self.cell_size).floor() as i32,
            iy: ((p.y - self.origin.y) / self.cell_size).floor() as i32,
        }
    }

    /// South-west corner of a cell.
    #[inline]
    pub fn cell_min(&self, c: CellId) -> Point {
        Point::new(
            self.origin.x + c.ix as f64 * self.cell_size,
            self.origin.y + c.iy as f64 * self.cell_size,
        )
    }

    /// Geometric centre of a cell.
    #[inline]
    pub fn cell_center(&self, c: CellId) -> Point {
        let min = self.cell_min(c);
        Point::new(min.x + self.cell_size / 2.0, min.y + self.cell_size / 2.0)
    }

    /// Bounding box of a cell.
    #[inline]
    pub fn cell_bbox(&self, c: CellId) -> BBox {
        let min = self.cell_min(c);
        BBox {
            min_x: min.x,
            min_y: min.y,
            max_x: min.x + self.cell_size,
            max_y: min.y + self.cell_size,
        }
    }

    /// All cells overlapping `bbox`, row-major.
    pub fn cells_in_bbox(&self, bbox: &BBox) -> Vec<CellId> {
        if bbox.is_empty() {
            return Vec::new();
        }
        let lo = self.cell_of(Point::new(bbox.min_x, bbox.min_y));
        let hi = self.cell_of(Point::new(bbox.max_x, bbox.max_y));
        let mut out =
            Vec::with_capacity(((hi.ix - lo.ix + 1) * (hi.iy - lo.iy + 1)).max(0) as usize);
        for iy in lo.iy..=hi.iy {
            for ix in lo.ix..=hi.ix {
                out.push(CellId { ix, iy });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_addressing_half_open() {
        let g = Grid::paper_default();
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), CellId { ix: 0, iy: 0 });
        assert_eq!(g.cell_of(Point::new(199.9, 199.9)), CellId { ix: 0, iy: 0 });
        assert_eq!(g.cell_of(Point::new(200.0, 0.0)), CellId { ix: 1, iy: 0 });
        assert_eq!(g.cell_of(Point::new(-0.1, -0.1)), CellId { ix: -1, iy: -1 });
    }

    #[test]
    fn center_is_inside_cell() {
        let g = Grid::paper_default();
        let c = CellId { ix: 3, iy: -2 };
        let center = g.cell_center(c);
        assert_eq!(g.cell_of(center), c);
        assert_eq!(center, Point::new(700.0, -300.0));
    }

    #[test]
    fn bbox_cells_cover_box() {
        let g = Grid::paper_default();
        let b = BBox::from_corners(Point::new(-50.0, -50.0), Point::new(250.0, 150.0));
        let cells = g.cells_in_bbox(&b);
        assert_eq!(cells.len(), 6); // ix in {-1,0,1}, iy in {-1,0}
        assert!(cells.contains(&CellId { ix: -1, iy: -1 }));
        assert!(cells.contains(&CellId { ix: 1, iy: 0 }));
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn rejects_zero_cell_size() {
        let _ = Grid::new(Point::new(0.0, 0.0), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every point falls inside the bbox of the cell it maps to.
        #[test]
        fn point_inside_own_cell(x in -1e5f64..1e5, y in -1e5f64..1e5, size in 1f64..1000.0) {
            let g = Grid::new(Point::new(0.0, 0.0), size);
            let p = Point::new(x, y);
            let c = g.cell_of(p);
            let b = g.cell_bbox(c);
            // Floating point rounding at cell borders can put the point on
            // the boundary; allow a metre-scale epsilon relative to size.
            prop_assert!(p.x >= b.min_x - 1e-9 && p.x <= b.max_x + 1e-9);
            prop_assert!(p.y >= b.min_y - 1e-9 && p.y <= b.max_y + 1e-9);
        }

        /// Neighbouring cells never share interior points.
        #[test]
        fn cells_disjoint(ix in -100i32..100, iy in -100i32..100) {
            let g = Grid::paper_default();
            let c = CellId { ix, iy };
            let center = g.cell_center(c);
            prop_assert_eq!(g.cell_of(center), c);
        }
    }
}
