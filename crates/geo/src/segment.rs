use serde::{Deserialize, Serialize};

use crate::{BBox, Point};

/// A directed line segment in the planar frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Self { a, b }
    }

    /// Segment length in metres.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Compass heading of the segment direction (a → b), degrees `[0, 360)`.
    #[inline]
    pub fn heading(&self) -> f64 {
        self.a.heading_to(self.b)
    }

    /// Bounding box of the segment.
    #[inline]
    pub fn bbox(&self) -> BBox {
        BBox::from_corners(self.a, self.b)
    }

    /// Parameter `t ∈ [0, 1]` of the point on the segment closest to `p`.
    pub fn project_t(&self, p: Point) -> f64 {
        let d = self.b.sub(self.a);
        let len_sq = d.dot(d);
        if len_sq == 0.0 {
            return 0.0; // degenerate segment
        }
        (p.sub(self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// Point on the segment at parameter `t ∈ [0, 1]`.
    #[inline]
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Closest point on the segment to `p`.
    #[inline]
    pub fn closest_point(&self, p: Point) -> Point {
        self.point_at(self.project_t(p))
    }

    /// Distance from `p` to the segment, in metres.
    #[inline]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Proper intersection of two segments.
    ///
    /// Returns the intersection parameters `(t_self, t_other)` when the
    /// segments cross (including endpoint touches); `None` when parallel,
    /// collinear, or disjoint. This powers crossing detection against the
    /// thick O-D geometries.
    pub fn intersect(&self, other: &Segment) -> Option<(f64, f64)> {
        let r = self.b.sub(self.a);
        let s = other.b.sub(other.a);
        let denom = r.cross(s);
        if denom == 0.0 {
            return None;
        }
        let qp = other.a.sub(self.a);
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
            Some((t, u))
        } else {
            None
        }
    }

    /// The segment reversed (b → a).
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.project_t(Point::new(-5.0, 3.0)), 0.0);
        assert_eq!(s.project_t(Point::new(15.0, 3.0)), 1.0);
        assert_eq!(s.project_t(Point::new(4.0, 3.0)), 0.4);
    }

    #[test]
    fn distance_perpendicular_and_beyond() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.distance_to_point(Point::new(5.0, 3.0)), 3.0);
        assert_eq!(s.distance_to_point(Point::new(13.0, 4.0)), 5.0);
    }

    #[test]
    fn degenerate_segment() {
        let s = seg(2.0, 2.0, 2.0, 2.0);
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.distance_to_point(Point::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn crossing_segments_intersect() {
        let a = seg(0.0, 0.0, 10.0, 10.0);
        let b = seg(0.0, 10.0, 10.0, 0.0);
        let (t, u) = a.intersect(&b).unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_and_disjoint() {
        let a = seg(0.0, 0.0, 10.0, 0.0);
        assert!(a.intersect(&seg(0.0, 1.0, 10.0, 1.0)).is_none()); // parallel
        assert!(a.intersect(&seg(20.0, -1.0, 20.0, 1.0)).is_none()); // disjoint
    }

    #[test]
    fn endpoint_touch_counts() {
        let a = seg(0.0, 0.0, 10.0, 0.0);
        let b = seg(10.0, 0.0, 10.0, 5.0);
        let (t, u) = a.intersect(&b).unwrap();
        assert_eq!((t, u), (1.0, 0.0));
    }

    #[test]
    fn heading_east() {
        assert!((seg(0.0, 0.0, 1.0, 0.0).heading() - 90.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_point() -> impl Strategy<Value = Point> {
        (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(x, y)| Point::new(x, y))
    }

    proptest! {
        /// Distance to the segment never exceeds the distance to either endpoint.
        #[test]
        fn distance_bounded_by_endpoints(a in arb_point(), b in arb_point(), p in arb_point()) {
            let s = Segment::new(a, b);
            let d = s.distance_to_point(p);
            prop_assert!(d <= p.distance(a) + 1e-9);
            prop_assert!(d <= p.distance(b) + 1e-9);
        }

        /// The closest point actually lies on the segment (within epsilon of
        /// the line through a–b and within the parameter range).
        #[test]
        fn closest_point_on_segment(a in arb_point(), b in arb_point(), p in arb_point()) {
            let s = Segment::new(a, b);
            let c = s.closest_point(p);
            // c is a convex combination of a and b:
            prop_assert!(c.distance(a) + c.distance(b) <= s.length() + 1e-6);
        }

        /// Reversal preserves distances.
        #[test]
        fn reversal_preserves_distance(a in arb_point(), b in arb_point(), p in arb_point()) {
            let s = Segment::new(a, b);
            prop_assert!((s.distance_to_point(p) - s.reversed().distance_to_point(p)).abs() < 1e-9);
        }
    }
}
