//! Geospatial substrate for the `taxi-traces` workspace.
//!
//! The paper stores taxi traces and the Digiroad road network in
//! PostgreSQL/PostGIS and leans on a small set of geometric operators:
//! geodesic distances, point-to-road projection, "thick geometry" corridors
//! around origin/destination roads, crossing-angle tests, a 200 m × 200 m
//! analysis grid, and spatial indexing for candidate lookup during
//! map-matching. This crate implements exactly that operator set.
//!
//! # Coordinate frames
//!
//! * [`GeoPoint`] — WGS-84 longitude/latitude in degrees (`EPSG:4326`), the
//!   frame in which raw traces and map geometries are expressed.
//! * [`Point`] — a local planar frame in metres produced by a
//!   [`LocalProjection`] (equirectangular about a reference point). At the
//!   scale of a city (the paper's study area spans a few kilometres around
//!   downtown Oulu, 65 °N) the projection error is far below GPS noise.
//!
//! All analysis-side geometry (segments, polylines, grids, R-trees,
//! corridors) operates on the planar frame.
//!
//! # Example
//!
//! ```
//! use taxitrace_geo::{GeoPoint, LocalProjection, Polyline};
//!
//! let oulu = GeoPoint::new(25.4651, 65.0121);
//! let proj = LocalProjection::new(oulu);
//! let a = proj.project(GeoPoint::new(25.4651, 65.0121));
//! let b = proj.project(GeoPoint::new(25.4751, 65.0121));
//! let line = Polyline::new(vec![a, b]).unwrap();
//! assert!((line.length() - 470.0).abs() < 10.0); // ~470 m per 0.01° lon at 65°N
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod angle;
mod bbox;
mod corridor;
mod distance;
mod grid;
mod point;
mod polyline;
mod proj;
mod rtree;
mod segment;
mod simplify;
pub mod wkt;

pub use angle::{angle_between_deg, heading_diff_deg, normalize_deg};
pub use bbox::BBox;
pub use corridor::{Corridor, Crossing};
pub use distance::{bearing_deg, haversine_m, EARTH_RADIUS_M};
pub use grid::{CellId, Grid};
pub use point::{GeoPoint, Point};
pub use polyline::{Polyline, PolylineError, Projection};
pub use proj::LocalProjection;
pub use rtree::{RTree, RTreeEntry};
pub use segment::Segment;
pub use simplify::{simplify_polyline, simplify_rdp};
