use serde::{Deserialize, Serialize};

use crate::{angle_between_deg, BBox, Point, Polyline, Segment};

/// A crossing of a trajectory through a [`Corridor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossing {
    /// Index of the trajectory point *before* the crossing step.
    pub point_index: usize,
    /// Acute angle (degrees, `[0, 90]`) between the trajectory step and the
    /// corridor axis at the crossing location.
    pub angle_deg: f64,
    /// Where the trajectory step was when it entered the corridor.
    pub location: Point,
}

/// "Thick geometry" around a road: the paper artificially widens the
/// origin/destination roads so routes that deviate slightly from the road
/// centre-line are still caught (§IV-D, Fig. 2).
///
/// A corridor is the set of points within `half_width` metres of the axis
/// polyline. [`Corridor::crossings`] finds the trajectory steps that enter
/// the corridor and reports the incidence angle, enabling the paper's
/// "intersects the thick roads on an angle within a predefined range" filter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corridor {
    axis: Polyline,
    half_width: f64,
    /// Cached expanded bbox for fast rejection.
    bbox: BBox,
}

impl Corridor {
    /// Builds a corridor of total width `2 * half_width` around `axis`.
    /// Panics if `half_width` is not strictly positive.
    pub fn new(axis: Polyline, half_width: f64) -> Self {
        assert!(
            half_width > 0.0 && half_width.is_finite(),
            "corridor half width must be positive, got {half_width}"
        );
        let bbox = axis.bbox().expand(half_width);
        Self { axis, half_width, bbox }
    }

    /// The corridor axis (original road geometry).
    #[inline]
    pub fn axis(&self) -> &Polyline {
        &self.axis
    }

    /// Half the corridor width in metres.
    #[inline]
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// Expanded bounding box of the corridor.
    #[inline]
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Whether `p` lies inside the thick geometry.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.bbox.contains(p) && self.axis.distance_to_point(p) <= self.half_width
    }

    /// Finds entries of the piecewise-linear trajectory `points` into the
    /// corridor. For each step `i → i+1` where the step moves from outside
    /// to inside (or passes through), a [`Crossing`] with the incidence angle
    /// is reported. Consecutive inside points produce no duplicate crossings.
    pub fn crossings(&self, points: &[Point]) -> Vec<Crossing> {
        let mut out = Vec::new();
        if points.len() < 2 {
            return out;
        }
        let mut inside_prev = self.contains(points[0]);
        if inside_prev {
            // Trajectory starts inside: count as a crossing at index 0 with
            // the angle of the first step.
            let step = Segment::new(points[0], points[1]);
            if step.length() > 0.0 {
                out.push(Crossing {
                    point_index: 0,
                    angle_deg: self.incidence_angle(points[0], step.heading()),
                    location: points[0],
                });
            }
        }
        for i in 0..points.len() - 1 {
            let step = Segment::new(points[i], points[i + 1]);
            let inside_next = self.contains(points[i + 1]);
            let entered = !inside_prev
                && (inside_next || self.step_clips_corridor(&step));
            if entered && step.length() > 0.0 {
                let entry = if inside_next { points[i + 1] } else { step.point_at(0.5) };
                out.push(Crossing {
                    point_index: i,
                    angle_deg: self.incidence_angle(entry, step.heading()),
                    location: entry,
                });
            }
            inside_prev = inside_next;
        }
        out
    }

    /// Whether a step that starts and ends outside still passes through the
    /// corridor (fast GPS sampling can jump across a thin corridor).
    fn step_clips_corridor(&self, step: &Segment) -> bool {
        if !self.bbox.intersects(&step.bbox()) {
            return false;
        }
        // The step clips the corridor iff some axis segment comes within
        // half_width of the step. Test axis vertices and segment crossings.
        for seg in self.axis.segments() {
            if seg.intersect(step).is_some() {
                return true;
            }
            // Min distance between two segments: check all 4 point-segment pairs.
            let d = seg
                .distance_to_point(step.a)
                .min(seg.distance_to_point(step.b))
                .min(step.distance_to_point(seg.a))
                .min(step.distance_to_point(seg.b));
            if d <= self.half_width {
                return true;
            }
        }
        false
    }

    /// Acute angle between a heading and the corridor axis direction at the
    /// point of the axis closest to `at`.
    fn incidence_angle(&self, at: Point, heading: f64) -> f64 {
        let proj = self.axis.project(at);
        let axis_heading = self.axis.heading_at(proj.offset);
        angle_between_deg(heading, axis_heading)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// East-west road from (0,0) to (1000,0), 50 m thick on each side.
    fn road() -> Corridor {
        let axis =
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)]).unwrap();
        Corridor::new(axis, 50.0)
    }

    #[test]
    fn containment() {
        let c = road();
        assert!(c.contains(Point::new(500.0, 0.0)));
        assert!(c.contains(Point::new(500.0, 49.0)));
        assert!(!c.contains(Point::new(500.0, 51.0)));
        assert!(!c.contains(Point::new(-100.0, 0.0)));
    }

    #[test]
    fn perpendicular_crossing_detected_at_90_degrees() {
        let c = road();
        // Trajectory driving north across the road.
        let traj = vec![
            Point::new(500.0, -200.0),
            Point::new(500.0, -100.0),
            Point::new(500.0, 0.0),
            Point::new(500.0, 100.0),
        ];
        let xs = c.crossings(&traj);
        assert_eq!(xs.len(), 1);
        assert!((xs[0].angle_deg - 90.0).abs() < 1e-6);
        assert_eq!(xs[0].point_index, 1);
    }

    #[test]
    fn parallel_drive_along_road_is_single_entry_at_low_angle() {
        let c = road();
        let traj = vec![
            Point::new(-100.0, 10.0),
            Point::new(100.0, 10.0),
            Point::new(300.0, 10.0),
            Point::new(500.0, 10.0),
        ];
        let xs = c.crossings(&traj);
        assert_eq!(xs.len(), 1, "one entry even though many points inside");
        assert!(xs[0].angle_deg < 5.0);
    }

    #[test]
    fn fast_clip_through_thin_corridor() {
        let c = road();
        // Single long step jumping from south to north of the road.
        let traj = vec![Point::new(500.0, -200.0), Point::new(500.0, 200.0)];
        let xs = c.crossings(&traj);
        assert_eq!(xs.len(), 1);
        assert!((xs[0].angle_deg - 90.0).abs() < 1e-6);
    }

    #[test]
    fn starting_inside_counts_once() {
        let c = road();
        let traj = vec![Point::new(500.0, 0.0), Point::new(500.0, 300.0)];
        let xs = c.crossings(&traj);
        assert_eq!(xs.len(), 1);
        assert_eq!(xs[0].point_index, 0);
    }

    #[test]
    fn no_crossing_far_away() {
        let c = road();
        let traj = vec![Point::new(0.0, 500.0), Point::new(1000.0, 500.0)];
        assert!(c.crossings(&traj).is_empty());
    }

    #[test]
    fn reentry_counts_twice() {
        let c = road();
        let traj = vec![
            Point::new(200.0, -100.0),
            Point::new(200.0, 0.0), // in
            Point::new(200.0, 100.0), // out
            Point::new(400.0, 100.0),
            Point::new(400.0, 0.0), // in again
        ];
        let xs = c.crossings(&traj);
        assert_eq!(xs.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Containment is consistent with axis distance.
        #[test]
        fn containment_matches_distance(x in -200f64..1200.0, y in -200f64..200.0, w in 1f64..100.0) {
            let axis = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)]).unwrap();
            let c = Corridor::new(axis.clone(), w);
            let p = Point::new(x, y);
            prop_assert_eq!(c.contains(p), axis.distance_to_point(p) <= w);
        }

        /// A straight perpendicular pass always yields exactly one crossing
        /// with angle near 90°.
        #[test]
        fn perpendicular_pass(x in 10f64..990.0, step_count in 2usize..20) {
            let c = Corridor::new(
                Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)]).unwrap(),
                30.0,
            );
            let traj: Vec<Point> = (0..=step_count)
                .map(|k| Point::new(x, -300.0 + 600.0 * k as f64 / step_count as f64))
                .collect();
            let xs = c.crossings(&traj);
            prop_assert_eq!(xs.len(), 1);
            prop_assert!((xs[0].angle_deg - 90.0).abs() < 1e-6);
        }
    }
}
