use crate::{BBox, Point};

/// An item stored in the [`RTree`]: a bounding box plus a caller payload
/// (typically a road-edge or traffic-element identifier).
#[derive(Debug, Clone)]
pub struct RTreeEntry<T> {
    pub bbox: BBox,
    pub item: T,
}

#[derive(Debug, Clone)]
struct Node {
    bbox: BBox,
    /// Children: either inner node indices or leaf entry ranges.
    kind: NodeKind,
}

#[derive(Debug, Clone)]
enum NodeKind {
    /// Indices into `nodes`.
    Inner(Vec<usize>),
    /// `start..end` range into `entries`.
    Leaf(usize, usize),
}

/// A static, bulk-loaded R-tree (Sort-Tile-Recursive packing).
///
/// The map-matcher needs "all road edges near this GPS point" thousands of
/// times per trip; PostGIS provides a GiST index for this, we provide an STR
/// R-tree. The tree is immutable after construction, which matches the
/// workload: the road network is loaded once per study.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    entries: Vec<RTreeEntry<T>>,
    nodes: Vec<Node>,
    root: Option<usize>,
}

const LEAF_CAPACITY: usize = 8;
const FANOUT: usize = 8;

impl<T> RTree<T> {
    /// Bulk-loads the tree from entries using STR packing.
    pub fn bulk_load(mut entries: Vec<RTreeEntry<T>>) -> Self {
        if entries.is_empty() {
            return Self { entries, nodes: Vec::new(), root: None };
        }
        // STR: sort by center x, slice into vertical strips, sort each strip
        // by center y, then chunk into leaves.
        let n = entries.len();
        let num_leaves = n.div_ceil(LEAF_CAPACITY);
        let num_strips = (num_leaves as f64).sqrt().ceil() as usize;
        let strip_size = n.div_ceil(num_strips);

        entries.sort_by(|a, b| {
            a.bbox.center().x.total_cmp(&b.bbox.center().x)
        });
        let mut i = 0;
        while i < n {
            let end = (i + strip_size).min(n);
            entries[i..end].sort_by(|a, b| {
                a.bbox.center().y.total_cmp(&b.bbox.center().y)
            });
            i = end;
        }

        let mut nodes: Vec<Node> = Vec::new();
        // Build leaves over consecutive chunks.
        let mut level: Vec<usize> = Vec::with_capacity(num_leaves);
        let mut start = 0;
        while start < n {
            let end = (start + LEAF_CAPACITY).min(n);
            let bbox = entries[start..end]
                .iter()
                .fold(BBox::EMPTY, |b, e| b.union(e.bbox));
            nodes.push(Node { bbox, kind: NodeKind::Leaf(start, end) });
            level.push(nodes.len() - 1);
            start = end;
        }
        // Pack upper levels until a single root remains.
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(FANOUT));
            for chunk in level.chunks(FANOUT) {
                let bbox = chunk
                    .iter()
                    .fold(BBox::EMPTY, |b, &i| b.union(nodes[i].bbox));
                nodes.push(Node { bbox, kind: NodeKind::Inner(chunk.to_vec()) });
                next.push(nodes.len() - 1);
            }
            level = next;
        }
        let root = Some(level[0]);
        Self { entries, nodes, root }
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Visits every entry whose bbox intersects `query`.
    pub fn query<'a>(&'a self, query: &BBox, mut visit: impl FnMut(&'a RTreeEntry<T>)) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni];
            if !node.bbox.intersects(query) {
                continue;
            }
            match &node.kind {
                NodeKind::Inner(children) => stack.extend_from_slice(children),
                NodeKind::Leaf(s, e) => {
                    for entry in &self.entries[*s..*e] {
                        if entry.bbox.intersects(query) {
                            visit(entry);
                        }
                    }
                }
            }
        }
    }

    /// Collects all entries whose bbox intersects `query`.
    pub fn query_vec(&self, query: &BBox) -> Vec<&RTreeEntry<T>> {
        let mut out = Vec::new();
        self.query(query, |e| out.push(e));
        out
    }

    /// All entries whose bbox lies within `radius` metres of `p`.
    ///
    /// This is the candidate-lookup primitive of the map-matcher: the true
    /// per-geometry distance test is done by the caller on the returned
    /// candidates.
    pub fn within_radius(&self, p: Point, radius: f64) -> Vec<&RTreeEntry<T>> {
        let query = BBox::from_point(p).expand(radius);
        let mut out = Vec::new();
        self.query(&query, |e| {
            if e.bbox.distance_to_point(p) <= radius {
                out.push(e);
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: usize, x: f64, y: f64, hw: f64) -> RTreeEntry<usize> {
        RTreeEntry {
            bbox: BBox::from_point(Point::new(x, y)).expand(hw),
            item: id,
        }
    }

    #[test]
    fn empty_tree() {
        let t: RTree<usize> = RTree::bulk_load(Vec::new());
        assert!(t.is_empty());
        assert!(t.query_vec(&BBox::from_point(Point::new(0.0, 0.0)).expand(1e9)).is_empty());
    }

    #[test]
    fn finds_all_in_range() {
        let entries: Vec<_> = (0..100)
            .map(|i| entry(i, (i % 10) as f64 * 100.0, (i / 10) as f64 * 100.0, 5.0))
            .collect();
        let t = RTree::bulk_load(entries);
        assert_eq!(t.len(), 100);
        let hits = t.query_vec(&BBox::from_corners(Point::new(-10.0, -10.0), Point::new(110.0, 110.0)));
        // Grid points (0,0),(100,0),(0,100),(100,100) => ids 0,1,10,11
        let mut ids: Vec<_> = hits.iter().map(|e| e.item).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 10, 11]);
    }

    #[test]
    fn within_radius_respects_distance() {
        let entries: Vec<_> = (0..50).map(|i| entry(i, i as f64 * 10.0, 0.0, 0.0)).collect();
        let t = RTree::bulk_load(entries);
        let hits = t.within_radius(Point::new(100.0, 0.0), 25.0);
        let mut ids: Vec<_> = hits.iter().map(|e| e.item).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![8, 9, 10, 11, 12]);
    }

    #[test]
    fn matches_brute_force() {
        // Deterministic pseudo-random boxes.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 10_000) as f64 - 5_000.0
        };
        let entries: Vec<_> = (0..500).map(|i| entry(i, rnd(), rnd(), 20.0)).collect();
        let brute = entries.clone();
        let t = RTree::bulk_load(entries);
        for q in 0..20 {
            let query = BBox::from_point(Point::new(rnd(), rnd())).expand(300.0 + q as f64);
            let mut got: Vec<_> = t.query_vec(&query).iter().map(|e| e.item).collect();
            got.sort_unstable();
            let mut want: Vec<_> = brute
                .iter()
                .filter(|e| e.bbox.intersects(&query))
                .map(|e| e.item)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {query:?}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// R-tree query results always equal brute force scan results.
        #[test]
        fn query_equals_brute_force(
            boxes in proptest::collection::vec(
                ((-1e3f64..1e3), (-1e3f64..1e3), (0f64..100.0)), 0..100),
            qx in -1.2e3f64..1.2e3, qy in -1.2e3f64..1.2e3, qr in 0f64..500.0,
        ) {
            let entries: Vec<RTreeEntry<usize>> = boxes
                .iter()
                .enumerate()
                .map(|(i, &(x, y, hw))| RTreeEntry {
                    bbox: BBox::from_point(Point::new(x, y)).expand(hw),
                    item: i,
                })
                .collect();
            let brute = entries.clone();
            let t = RTree::bulk_load(entries);
            let query = BBox::from_point(Point::new(qx, qy)).expand(qr);
            let mut got: Vec<_> = t.query_vec(&query).iter().map(|e| e.item).collect();
            got.sort_unstable();
            let mut want: Vec<_> = brute
                .iter()
                .filter(|e| e.bbox.intersects(&query))
                .map(|e| e.item)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
