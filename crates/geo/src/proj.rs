use serde::{Deserialize, Serialize};

use crate::{GeoPoint, Point, EARTH_RADIUS_M};

/// Local equirectangular projection about a reference coordinate.
///
/// Maps WGS-84 degrees to a planar metre frame with `x` east / `y` north.
/// Over a city-sized study area (the paper's region of interest is a few
/// kilometres of downtown Oulu) the distortion is on the order of
/// centimetres, well below the GPS noise of the on-board trackers, which is
/// why the paper's PostGIS pipeline can likewise treat the region as planar.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalProjection {
    origin: GeoPoint,
    /// Metres per degree of longitude at the origin latitude.
    m_per_deg_lon: f64,
    /// Metres per degree of latitude.
    m_per_deg_lat: f64,
}

impl LocalProjection {
    /// Creates a projection centred on `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        let m_per_deg = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
        Self {
            origin,
            m_per_deg_lon: m_per_deg * origin.lat.to_radians().cos(),
            m_per_deg_lat: m_per_deg,
        }
    }

    /// The reference coordinate (maps to `(0, 0)`).
    #[inline]
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a WGS-84 coordinate into the planar frame (metres).
    #[inline]
    pub fn project(&self, g: GeoPoint) -> Point {
        Point::new(
            (g.lon - self.origin.lon) * self.m_per_deg_lon,
            (g.lat - self.origin.lat) * self.m_per_deg_lat,
        )
    }

    /// Inverse projection back to WGS-84 degrees.
    #[inline]
    pub fn unproject(&self, p: Point) -> GeoPoint {
        GeoPoint::new(
            self.origin.lon + p.x / self.m_per_deg_lon,
            self.origin.lat + p.y / self.m_per_deg_lat,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haversine_m;

    fn oulu() -> LocalProjection {
        LocalProjection::new(GeoPoint::new(25.4651, 65.0121))
    }

    #[test]
    fn origin_maps_to_zero() {
        let proj = oulu();
        let p = proj.project(proj.origin());
        assert!(p.x.abs() < 1e-9 && p.y.abs() < 1e-9);
    }

    #[test]
    fn round_trip() {
        let proj = oulu();
        let g = GeoPoint::new(25.5244, 65.0252);
        let back = proj.unproject(proj.project(g));
        assert!((back.lon - g.lon).abs() < 1e-12);
        assert!((back.lat - g.lat).abs() < 1e-12);
    }

    #[test]
    fn planar_distance_matches_haversine_at_city_scale() {
        let proj = oulu();
        let a = GeoPoint::new(25.4558, 65.0434);
        let b = GeoPoint::new(25.5244, 65.0252);
        let planar = proj.project(a).distance(proj.project(b));
        let geodesic = haversine_m(a, b);
        // Within 0.1% over ~4 km.
        assert!((planar - geodesic).abs() / geodesic < 1e-3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Projection round-trip is the identity for any point in a
        /// city-sized neighbourhood of the origin.
        #[test]
        fn round_trip_identity(dlon in -0.2f64..0.2, dlat in -0.1f64..0.1) {
            let proj = LocalProjection::new(GeoPoint::new(25.4651, 65.0121));
            let g = GeoPoint::new(25.4651 + dlon, 65.0121 + dlat);
            let back = proj.unproject(proj.project(g));
            prop_assert!((back.lon - g.lon).abs() < 1e-9);
            prop_assert!((back.lat - g.lat).abs() < 1e-9);
        }

        /// Planar distances stay within 1% of haversine in the study area.
        #[test]
        fn distance_agreement(
            dlon1 in -0.05f64..0.05, dlat1 in -0.03f64..0.03,
            dlon2 in -0.05f64..0.05, dlat2 in -0.03f64..0.03,
        ) {
            let proj = LocalProjection::new(GeoPoint::new(25.4651, 65.0121));
            let a = GeoPoint::new(25.4651 + dlon1, 65.0121 + dlat1);
            let b = GeoPoint::new(25.4651 + dlon2, 65.0121 + dlat2);
            let planar = proj.project(a).distance(proj.project(b));
            let geodesic = crate::haversine_m(a, b);
            if geodesic > 10.0 {
                prop_assert!((planar - geodesic).abs() / geodesic < 0.01);
            }
        }
    }
}
