use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BBox, Point, Segment};

/// Error constructing a [`Polyline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolylineError {
    /// Fewer than two vertices were supplied.
    TooFewVertices(usize),
    /// A vertex contained a non-finite coordinate.
    NonFiniteVertex(usize),
}

impl fmt::Display for PolylineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolylineError::TooFewVertices(n) => {
                write!(f, "polyline needs at least 2 vertices, got {n}")
            }
            PolylineError::NonFiniteVertex(i) => {
                write!(f, "polyline vertex {i} has a non-finite coordinate")
            }
        }
    }
}

impl std::error::Error for PolylineError {}

/// Result of projecting a point onto a polyline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    /// Index of the segment the closest point lies on.
    pub segment: usize,
    /// Parameter within that segment, `[0, 1]`.
    pub t: f64,
    /// The closest point itself.
    pub point: Point,
    /// Distance from the query point to `point`, metres.
    pub distance: f64,
    /// Arc-length position of `point` from the start of the polyline, metres.
    pub offset: f64,
}

/// A polyline (road centre-line geometry) in the planar frame.
///
/// Cumulative segment lengths are precomputed so projection, interpolation
/// and length queries are cheap — these run in the inner loops of
/// map-matching and attribute fetching.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    vertices: Vec<Point>,
    /// `cum[i]` = arc length from the start to vertex `i`; `cum[0] == 0`.
    cum: Vec<f64>,
}

impl Polyline {
    /// Builds a polyline from at least two finite vertices.
    pub fn new(vertices: Vec<Point>) -> Result<Self, PolylineError> {
        if vertices.len() < 2 {
            return Err(PolylineError::TooFewVertices(vertices.len()));
        }
        for (i, v) in vertices.iter().enumerate() {
            if !v.x.is_finite() || !v.y.is_finite() {
                return Err(PolylineError::NonFiniteVertex(i));
            }
        }
        let mut cum = Vec::with_capacity(vertices.len());
        cum.push(0.0);
        for w in vertices.windows(2) {
            // lint:allow(panic-free-library): `cum` starts with a pushed 0.0
            let last = *cum.last().expect("cum starts non-empty");
            cum.push(last + w[0].distance(w[1]));
        }
        Ok(Self { vertices, cum })
    }

    /// The vertices of the polyline.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Total arc length, metres.
    #[inline]
    pub fn length(&self) -> f64 {
        // lint:allow(panic-free-library): `new` seeds `cum` with 0.0
        *self.cum.last().expect("cum non-empty")
    }

    /// First vertex.
    #[inline]
    pub fn start(&self) -> Point {
        self.vertices[0]
    }

    /// Last vertex.
    #[inline]
    pub fn end(&self) -> Point {
        // lint:allow(panic-free-library): `new` rejects < 2 vertices
        *self.vertices.last().expect("at least two vertices")
    }

    /// Number of segments (`vertices - 1`).
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.vertices.len() - 1
    }

    /// The `i`-th segment.
    #[inline]
    pub fn segment(&self, i: usize) -> Segment {
        Segment::new(self.vertices[i], self.vertices[i + 1])
    }

    /// Iterator over all segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.vertices.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Bounding box over all vertices.
    pub fn bbox(&self) -> BBox {
        BBox::from_points(&self.vertices)
    }

    /// Point at arc-length `offset` from the start, clamped to `[0, length]`.
    pub fn point_at(&self, offset: f64) -> Point {
        let offset = offset.clamp(0.0, self.length());
        // Binary search for the segment containing `offset`.
        let i = match self.cum.binary_search_by(|c| c.total_cmp(&offset)) {
            Ok(i) => i.min(self.num_segments()),
            Err(i) => i - 1,
        };
        if i >= self.num_segments() {
            return self.end();
        }
        let seg_len = self.cum[i + 1] - self.cum[i];
        let t = if seg_len > 0.0 { (offset - self.cum[i]) / seg_len } else { 0.0 };
        self.segment(i).point_at(t)
    }

    /// Compass heading of the polyline at arc-length `offset` (heading of the
    /// segment containing that offset).
    pub fn heading_at(&self, offset: f64) -> f64 {
        let offset = offset.clamp(0.0, self.length());
        let mut i = match self.cum.binary_search_by(|c| c.total_cmp(&offset)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        if i >= self.num_segments() {
            i = self.num_segments() - 1;
        }
        // Skip zero-length segments.
        let mut j = i;
        while j < self.num_segments() && self.segment(j).length() == 0.0 {
            j += 1;
        }
        if j >= self.num_segments() {
            j = i.min(self.num_segments() - 1);
        }
        self.segment(j).heading()
    }

    /// Projects `p` onto the polyline, returning the nearest location.
    pub fn project(&self, p: Point) -> Projection {
        let mut best = Projection {
            segment: 0,
            t: 0.0,
            point: self.vertices[0],
            distance: p.distance(self.vertices[0]),
            offset: 0.0,
        };
        for i in 0..self.num_segments() {
            let seg = self.segment(i);
            let t = seg.project_t(p);
            let c = seg.point_at(t);
            let d = c.distance(p);
            if d < best.distance {
                best = Projection {
                    segment: i,
                    t,
                    point: c,
                    distance: d,
                    offset: self.cum[i] + t * seg.length(),
                };
            }
        }
        best
    }

    /// Minimum distance from `p` to the polyline.
    #[inline]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.project(p).distance
    }

    /// Resamples the polyline at roughly `step` metre spacing (endpoints
    /// always included). Useful for rasterising routes onto the analysis grid.
    pub fn resample(&self, step: f64) -> Vec<Point> {
        assert!(step > 0.0, "resample step must be positive");
        let len = self.length();
        if len == 0.0 {
            return vec![self.start(), self.end()];
        }
        let n = (len / step).ceil() as usize;
        let mut out = Vec::with_capacity(n + 1);
        for k in 0..=n {
            out.push(self.point_at(len * k as f64 / n as f64));
        }
        out
    }

    /// Concatenates another polyline onto the end of this one, skipping the
    /// duplicated join vertex when the endpoints coincide (within 1 mm).
    pub fn extend_with(&mut self, other: &Polyline) {
        let mut verts = std::mem::take(&mut self.vertices);
        let skip_first = verts
            .last()
            .is_some_and(|p| p.distance(other.start()) < 1e-3);
        let tail = if skip_first { &other.vertices[1..] } else { &other.vertices[..] };
        verts.extend_from_slice(tail);
        // lint:allow(panic-free-library): both inputs had >= 2 vertices
        *self = Polyline::new(verts).expect("concatenation keeps >= 2 vertices");
    }

    /// The polyline with vertex order reversed.
    pub fn reversed(&self) -> Polyline {
        let mut v = self.vertices.clone();
        v.reverse();
        // lint:allow(panic-free-library): `self` already had >= 2 vertices
        Polyline::new(v).expect("reversal keeps >= 2 vertices")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(v: &[(f64, f64)]) -> Polyline {
        Polyline::new(v.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(matches!(
            Polyline::new(vec![Point::new(0.0, 0.0)]),
            Err(PolylineError::TooFewVertices(1))
        ));
        assert!(matches!(
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(f64::NAN, 0.0)]),
            Err(PolylineError::NonFiniteVertex(1))
        ));
    }

    #[test]
    fn length_of_l_shape() {
        let p = pl(&[(0.0, 0.0), (10.0, 0.0), (10.0, 5.0)]);
        assert_eq!(p.length(), 15.0);
        assert_eq!(p.num_segments(), 2);
    }

    #[test]
    fn point_at_walks_the_line() {
        let p = pl(&[(0.0, 0.0), (10.0, 0.0), (10.0, 5.0)]);
        assert_eq!(p.point_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(p.point_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(p.point_at(12.0), Point::new(10.0, 2.0));
        assert_eq!(p.point_at(15.0), Point::new(10.0, 5.0));
        assert_eq!(p.point_at(99.0), Point::new(10.0, 5.0)); // clamped
    }

    #[test]
    fn heading_changes_at_corner() {
        let p = pl(&[(0.0, 0.0), (10.0, 0.0), (10.0, 5.0)]);
        assert!((p.heading_at(5.0) - 90.0).abs() < 1e-9); // east
        assert!((p.heading_at(12.0) - 0.0).abs() < 1e-9); // north
    }

    #[test]
    fn projection_on_corner_line() {
        let p = pl(&[(0.0, 0.0), (10.0, 0.0), (10.0, 5.0)]);
        let proj = p.project(Point::new(4.0, 3.0));
        assert_eq!(proj.segment, 0);
        assert_eq!(proj.point, Point::new(4.0, 0.0));
        assert_eq!(proj.distance, 3.0);
        assert_eq!(proj.offset, 4.0);

        let proj2 = p.project(Point::new(12.0, 4.0));
        assert_eq!(proj2.segment, 1);
        assert_eq!(proj2.point, Point::new(10.0, 4.0));
        assert_eq!(proj2.offset, 14.0);
    }

    #[test]
    fn resample_endpoint_inclusive() {
        let p = pl(&[(0.0, 0.0), (10.0, 0.0)]);
        let pts = p.resample(3.0);
        assert_eq!(*pts.first().unwrap(), Point::new(0.0, 0.0));
        assert_eq!(*pts.last().unwrap(), Point::new(10.0, 0.0));
        assert!(pts.len() >= 4);
    }

    #[test]
    fn extend_with_dedups_join() {
        let mut a = pl(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = pl(&[(10.0, 0.0), (10.0, 5.0)]);
        a.extend_with(&b);
        assert_eq!(a.vertices().len(), 3);
        assert_eq!(a.length(), 15.0);
    }

    #[test]
    fn reversed_preserves_length() {
        let p = pl(&[(0.0, 0.0), (10.0, 0.0), (10.0, 5.0)]);
        let r = p.reversed();
        assert_eq!(r.length(), p.length());
        assert_eq!(r.start(), p.end());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_polyline() -> impl Strategy<Value = Polyline> {
        proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..12)
            .prop_map(|v| {
                Polyline::new(v.into_iter().map(|(x, y)| Point::new(x, y)).collect()).unwrap()
            })
    }

    proptest! {
        /// Projection distance equals the minimum over per-segment distances.
        #[test]
        fn projection_is_minimum(p in arb_polyline(), x in -2e3f64..2e3, y in -2e3f64..2e3) {
            let q = Point::new(x, y);
            let proj = p.project(q);
            let brute = p
                .segments()
                .map(|s| s.distance_to_point(q))
                .fold(f64::INFINITY, f64::min);
            prop_assert!((proj.distance - brute).abs() < 1e-9);
            prop_assert!(proj.offset >= -1e-9 && proj.offset <= p.length() + 1e-9);
        }

        /// point_at(offset) round-trips through projection offset for points
        /// on the line (for non-self-intersecting access we only check the
        /// distance is ~0).
        #[test]
        fn point_at_lies_on_line(p in arb_polyline(), f in 0f64..1.0) {
            let q = p.point_at(f * p.length());
            prop_assert!(p.distance_to_point(q) < 1e-6);
        }

        /// Resampling preserves endpoints and stays on the line.
        #[test]
        fn resample_on_line(p in arb_polyline(), step in 1f64..100.0) {
            let pts = p.resample(step);
            prop_assert_eq!(*pts.first().unwrap(), p.start());
            prop_assert!(pts.last().unwrap().distance(p.end()) < 1e-6);
            for q in pts {
                prop_assert!(p.distance_to_point(q) < 1e-6);
            }
        }
    }
}
