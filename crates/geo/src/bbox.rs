use serde::{Deserialize, Serialize};

use crate::Point;

/// Axis-aligned bounding box in the planar frame (metres).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl BBox {
    /// An "empty" box that any union will replace.
    pub const EMPTY: BBox = BBox {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// Box covering a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Self { min_x: p.x, min_y: p.y, max_x: p.x, max_y: p.y }
    }

    /// Box covering two corner points given in any order.
    pub fn from_corners(a: Point, b: Point) -> Self {
        Self {
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// Smallest box covering all `points`; `EMPTY` if the slice is empty.
    pub fn from_points(points: &[Point]) -> Self {
        points.iter().fold(Self::EMPTY, |b, &p| b.union(Self::from_point(p)))
    }

    /// Whether no point has been added.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x
    }

    /// Smallest box covering both operands.
    #[inline]
    pub fn union(&self, other: BBox) -> BBox {
        BBox {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Whether the two boxes overlap (boundaries touching counts).
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Whether `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        (self.min_x..=self.max_x).contains(&p.x) && (self.min_y..=self.max_y).contains(&p.y)
    }

    /// Box grown by `margin` metres on every side.
    #[inline]
    pub fn expand(&self, margin: f64) -> BBox {
        BBox {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }

    /// Geometric centre.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)
    }

    /// Width × height.
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max_x - self.min_x) * (self.max_y - self.min_y)
        }
    }

    /// Minimum distance from `p` to the box (0 when inside).
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        dx.hypot(dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_behaviour() {
        assert!(BBox::EMPTY.is_empty());
        assert_eq!(BBox::EMPTY.area(), 0.0);
        let p = BBox::from_point(Point::new(1.0, 2.0));
        assert_eq!(BBox::EMPTY.union(p), p);
    }

    #[test]
    fn corners_any_order() {
        let b = BBox::from_corners(Point::new(3.0, -1.0), Point::new(-2.0, 4.0));
        assert_eq!(b.min_x, -2.0);
        assert_eq!(b.max_y, 4.0);
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(!b.contains(Point::new(5.0, 0.0)));
    }

    #[test]
    fn intersection_and_touching() {
        let a = BBox::from_corners(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = BBox::from_corners(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        let c = BBox::from_corners(Point::new(2.1, 2.1), Point::new(3.0, 3.0));
        assert!(a.intersects(&b)); // touching corner
        assert!(!a.intersects(&c));
    }

    #[test]
    fn distance_to_point_zero_inside() {
        let b = BBox::from_corners(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert_eq!(b.distance_to_point(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(b.distance_to_point(Point::new(5.0, 1.0)), 3.0);
        assert!((b.distance_to_point(Point::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn expand_grows_all_sides() {
        let b = BBox::from_point(Point::new(0.0, 0.0)).expand(10.0);
        assert!(b.contains(Point::new(9.9, -9.9)));
        assert!(!b.contains(Point::new(10.1, 0.0)));
        assert_eq!(b.area(), 400.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_point() -> impl Strategy<Value = Point> {
        (-1e4f64..1e4, -1e4f64..1e4).prop_map(|(x, y)| Point::new(x, y))
    }

    proptest! {
        #[test]
        fn union_contains_both(a in arb_point(), b in arb_point(), c in arb_point()) {
            let u = BBox::from_corners(a, b).union(BBox::from_point(c));
            prop_assert!(u.contains(a));
            prop_assert!(u.contains(b));
            prop_assert!(u.contains(c));
        }

        #[test]
        fn from_points_contains_all(pts in proptest::collection::vec(arb_point(), 1..20)) {
            let b = BBox::from_points(&pts);
            for p in &pts {
                prop_assert!(b.contains(*p));
            }
        }
    }
}
