//! Polyline simplification (Ramer–Douglas–Peucker).
//!
//! Digital-map centre lines are often denser than an analysis needs;
//! simplification with a metre-scale tolerance shrinks geometry without
//! moving it perceptibly. Used when exporting maps and when rendering
//! routes.

use crate::{Point, Polyline, Segment};

/// Simplifies `points` with the RDP algorithm: the result keeps the first
/// and last points and every point farther than `tolerance_m` from the
/// simplified baseline.
pub fn simplify_rdp(points: &[Point], tolerance_m: f64) -> Vec<Point> {
    assert!(tolerance_m >= 0.0, "tolerance must be non-negative");
    if points.len() <= 2 {
        return points.to_vec();
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    rdp_mark(points, 0, points.len() - 1, tolerance_m, &mut keep);
    points
        .iter()
        .zip(&keep)
        .filter(|(_, k)| **k)
        .map(|(p, _)| *p)
        .collect()
}

fn rdp_mark(points: &[Point], lo: usize, hi: usize, tol: f64, keep: &mut [bool]) {
    if hi <= lo + 1 {
        return;
    }
    let base = Segment::new(points[lo], points[hi]);
    let mut far_idx = lo;
    let mut far_dist = -1.0;
    for (i, p) in points.iter().enumerate().take(hi).skip(lo + 1) {
        let d = base.distance_to_point(*p);
        if d > far_dist {
            far_dist = d;
            far_idx = i;
        }
    }
    if far_dist > tol {
        keep[far_idx] = true;
        rdp_mark(points, lo, far_idx, tol, keep);
        rdp_mark(points, far_idx, hi, tol, keep);
    }
}

/// Simplifies a polyline, preserving endpoints.
pub fn simplify_polyline(line: &Polyline, tolerance_m: f64) -> Polyline {
    let pts = simplify_rdp(line.vertices(), tolerance_m);
    // lint:allow(panic-free-library): RDP always keeps both endpoints
    Polyline::new(pts).expect("simplification keeps >= 2 vertices")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let line = pts(&[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (30.0, 0.0)]);
        let s = simplify_rdp(&line, 0.5);
        assert_eq!(s, pts(&[(0.0, 0.0), (30.0, 0.0)]));
    }

    #[test]
    fn corner_is_kept() {
        let line = pts(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)]);
        let s = simplify_rdp(&line, 0.5);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn small_wiggles_removed_large_kept() {
        let line = pts(&[
            (0.0, 0.0),
            (5.0, 0.3),  // wiggle below tolerance
            (10.0, 0.0),
            (15.0, 8.0), // a real feature
            (20.0, 0.0),
        ]);
        let s = simplify_rdp(&line, 1.0);
        assert!(s.contains(&Point::new(15.0, 8.0)));
        assert!(!s.contains(&Point::new(5.0, 0.3)));
    }

    #[test]
    fn short_inputs_unchanged() {
        assert_eq!(simplify_rdp(&pts(&[(1.0, 2.0)]), 1.0).len(), 1);
        let two = pts(&[(0.0, 0.0), (5.0, 5.0)]);
        assert_eq!(simplify_rdp(&two, 1.0), two);
    }

    #[test]
    fn polyline_wrapper() {
        let line = Polyline::new(pts(&[(0.0, 0.0), (50.0, 0.1), (100.0, 0.0)])).unwrap();
        let s = simplify_polyline(&line, 1.0);
        assert_eq!(s.vertices().len(), 2);
        assert!((s.length() - 100.0).abs() < 0.1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_points() -> impl Strategy<Value = Vec<Point>> {
        proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..40)
            .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
    }

    proptest! {
        /// Every original point is within tolerance of the simplified line;
        /// endpoints are preserved; output is a subsequence.
        #[test]
        fn simplification_is_faithful(points in arb_points(), tol in 0.1f64..100.0) {
            let s = simplify_rdp(&points, tol);
            prop_assert_eq!(*s.first().unwrap(), *points.first().unwrap());
            prop_assert_eq!(*s.last().unwrap(), *points.last().unwrap());
            prop_assert!(s.len() <= points.len());
            if s.len() >= 2 {
                let line = Polyline::new(s.clone()).unwrap();
                for p in &points {
                    prop_assert!(
                        line.distance_to_point(*p) <= tol + 1e-6,
                        "point {p} strays {} > {tol}",
                        line.distance_to_point(*p)
                    );
                }
            }
            // Output is a subsequence of the input.
            let mut it = points.iter();
            for kept in &s {
                prop_assert!(it.any(|p| p == kept), "subsequence property");
            }
        }

        /// Zero tolerance keeps collinearity-only removal: re-simplifying is
        /// idempotent.
        #[test]
        fn idempotent(points in arb_points(), tol in 0.1f64..50.0) {
            let once = simplify_rdp(&points, tol);
            let twice = simplify_rdp(&once, tol);
            prop_assert_eq!(once, twice);
        }
    }
}
