/// Normalizes an angle in degrees to `[0, 360)`.
#[inline]
pub fn normalize_deg(deg: f64) -> f64 {
    let d = deg % 360.0;
    if d < 0.0 {
        d + 360.0
    } else {
        d
    }
}

/// Smallest absolute difference between two compass headings, in `[0, 180]`.
///
/// Used by the incremental map-matcher's orientation score and by the
/// O-D "thick geometry" crossing-angle filter of §IV-D.
#[inline]
pub fn heading_diff_deg(a: f64, b: f64) -> f64 {
    let d = (normalize_deg(a) - normalize_deg(b)).abs();
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

/// Acute angle between two *undirected* lines given by their headings,
/// in `[0, 90]`.
///
/// The paper filters trips that intersect a thick O-D road "on an angle
/// within a predefined range"; a route crossing a road is agnostic to which
/// way either is digitised, hence the undirected form.
#[inline]
pub fn angle_between_deg(a: f64, b: f64) -> f64 {
    let d = heading_diff_deg(a, b);
    if d > 90.0 {
        180.0 - d
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_wraps() {
        assert_eq!(normalize_deg(0.0), 0.0);
        assert_eq!(normalize_deg(360.0), 0.0);
        assert_eq!(normalize_deg(-90.0), 270.0);
        assert_eq!(normalize_deg(725.0), 5.0);
    }

    #[test]
    fn heading_diff_takes_short_way() {
        assert_eq!(heading_diff_deg(10.0, 350.0), 20.0);
        assert_eq!(heading_diff_deg(0.0, 180.0), 180.0);
        assert_eq!(heading_diff_deg(90.0, 90.0), 0.0);
        assert_eq!(heading_diff_deg(-10.0, 10.0), 20.0);
    }

    #[test]
    fn undirected_angle_folds_at_90() {
        assert_eq!(angle_between_deg(0.0, 180.0), 0.0); // same line
        assert_eq!(angle_between_deg(0.0, 90.0), 90.0);
        assert_eq!(angle_between_deg(10.0, 170.0), 20.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn normalized_in_range(a in -10_000f64..10_000.0) {
            let n = normalize_deg(a);
            prop_assert!((0.0..360.0).contains(&n));
        }

        #[test]
        fn heading_diff_symmetric_and_bounded(a in -720f64..720.0, b in -720f64..720.0) {
            let d = heading_diff_deg(a, b);
            prop_assert!((0.0..=180.0).contains(&d));
            prop_assert!((d - heading_diff_deg(b, a)).abs() < 1e-9);
        }

        #[test]
        fn undirected_invariant_to_reversal(a in 0f64..360.0, b in 0f64..360.0) {
            let d1 = angle_between_deg(a, b);
            let d2 = angle_between_deg(a + 180.0, b);
            prop_assert!((d1 - d2).abs() < 1e-9);
            prop_assert!((0.0..=90.0 + 1e-9).contains(&d1));
        }
    }
}
