use std::fmt;

use serde::{Deserialize, Serialize};

/// A WGS-84 coordinate in degrees (`EPSG:4326`), longitude first as in the
/// paper's `POINT(25.5244, 65.0252)` examples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Longitude in degrees, positive east.
    pub lon: f64,
    /// Latitude in degrees, positive north.
    pub lat: f64,
}

impl GeoPoint {
    /// Creates a coordinate from longitude and latitude in degrees.
    #[inline]
    pub const fn new(lon: f64, lat: f64) -> Self {
        Self { lon, lat }
    }

    /// Whether the coordinate lies in the valid WGS-84 range.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.lon.is_finite()
            && self.lat.is_finite()
            && (-180.0..=180.0).contains(&self.lon)
            && (-90.0..=90.0).contains(&self.lat)
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // PostGIS-style WKT, matching Table 1 of the paper.
        write!(f, "POINT({:.4}, {:.4})", self.lon, self.lat)
    }
}

/// A point in the local planar analysis frame, in metres.
///
/// Produced by [`crate::LocalProjection`]; `x` grows east, `y` grows north.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other` in metres.
    #[inline]
    pub fn distance(&self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance; cheaper when only comparisons are needed.
    #[inline]
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector difference `self - other`.
    #[inline]
    pub fn sub(&self, other: Point) -> Point {
        Point::new(self.x - other.x, self.y - other.y)
    }

    /// Vector sum.
    #[inline]
    pub fn add(&self, other: Point) -> Point {
        Point::new(self.x + other.x, self.y + other.y)
    }

    /// Scales the point as a vector.
    #[inline]
    pub fn scale(&self, k: f64) -> Point {
        Point::new(self.x * k, self.y * k)
    }

    /// Dot product treating both points as vectors.
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component), positive when `other` is
    /// counter-clockwise from `self`.
    #[inline]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Compass heading from `self` to `other` in degrees `[0, 360)`,
    /// 0 = north, 90 = east (navigation convention, as reported by GPS units).
    #[inline]
    pub fn heading_to(&self, other: Point) -> f64 {
        let h = (other.x - self.x).atan2(other.y - self.y).to_degrees();
        if h < 0.0 {
            h + 360.0
        } else {
            h
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2} m, {:.2} m)", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_point_display_matches_table1_style() {
        let p = GeoPoint::new(25.5244, 65.0252);
        assert_eq!(p.to_string(), "POINT(25.5244, 65.0252)");
    }

    #[test]
    fn geo_point_validity() {
        assert!(GeoPoint::new(25.46, 65.01).is_valid());
        assert!(!GeoPoint::new(200.0, 65.0).is_valid());
        assert!(!GeoPoint::new(25.0, 95.0).is_valid());
        assert!(!GeoPoint::new(f64::NAN, 65.0).is_valid());
    }

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn heading_navigation_convention() {
        let o = Point::new(0.0, 0.0);
        assert!((o.heading_to(Point::new(0.0, 1.0)) - 0.0).abs() < 1e-9); // north
        assert!((o.heading_to(Point::new(1.0, 0.0)) - 90.0).abs() < 1e-9); // east
        assert!((o.heading_to(Point::new(0.0, -1.0)) - 180.0).abs() < 1e-9); // south
        assert!((o.heading_to(Point::new(-1.0, 0.0)) - 270.0).abs() < 1e-9); // west
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -3.0));
    }

    #[test]
    fn cross_sign_is_ccw() {
        let east = Point::new(1.0, 0.0);
        let north = Point::new(0.0, 1.0);
        assert!(east.cross(north) > 0.0);
        assert!(north.cross(east) < 0.0);
    }
}
