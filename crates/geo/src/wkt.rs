//! Minimal WKT (well-known text) reading and writing.
//!
//! Digiroad is distributed as GIS layers; the paper stores geometries in
//! PostGIS, whose lingua franca is WKT (`POINT`, `LINESTRING`). This module
//! implements exactly the two geometry types the pipeline exchanges, so a
//! synthetic map can be exported to and re-imported from a GIS-compatible
//! text form.

use std::fmt::Write as _;

use crate::{GeoPoint, Point, Polyline, PolylineError};

/// WKT parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum WktError {
    /// The tag (POINT/LINESTRING) was missing or unknown.
    BadTag(String),
    /// Parenthesis structure was malformed.
    BadStructure,
    /// A coordinate failed to parse.
    BadNumber(String),
    /// A linestring had fewer than two coordinates.
    TooFewCoordinates(usize),
}

impl std::fmt::Display for WktError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WktError::BadTag(t) => write!(f, "unknown WKT tag {t:?}"),
            WktError::BadStructure => write!(f, "malformed WKT parentheses"),
            WktError::BadNumber(s) => write!(f, "bad WKT coordinate {s:?}"),
            WktError::TooFewCoordinates(n) => {
                write!(f, "LINESTRING needs >= 2 coordinates, got {n}")
            }
        }
    }
}

impl std::error::Error for WktError {}

/// Formats a WGS-84 point as `POINT(lon lat)`.
pub fn point_to_wkt(p: GeoPoint) -> String {
    format!("POINT({:.7} {:.7})", p.lon, p.lat)
}

/// Formats a planar polyline (converted by the caller to WGS-84 via a
/// projection) as `LINESTRING(lon lat, ...)`.
pub fn linestring_to_wkt(points: &[GeoPoint]) -> String {
    let mut s = String::with_capacity(16 + points.len() * 24);
    s.push_str("LINESTRING(");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{:.7} {:.7}", p.lon, p.lat);
    }
    s.push(')');
    s
}

/// Parses `POINT(lon lat)`.
pub fn point_from_wkt(s: &str) -> Result<GeoPoint, WktError> {
    let body = strip_tag(s, "POINT")?;
    let coords = parse_coord(body.trim())?;
    Ok(coords)
}

/// Parses `LINESTRING(lon lat, lon lat, ...)`.
pub fn linestring_from_wkt(s: &str) -> Result<Vec<GeoPoint>, WktError> {
    let body = strip_tag(s, "LINESTRING")?;
    let mut out = Vec::new();
    for part in body.split(',') {
        out.push(parse_coord(part.trim())?);
    }
    if out.len() < 2 {
        return Err(WktError::TooFewCoordinates(out.len()));
    }
    Ok(out)
}

/// Convenience: planar polyline from WKT via a projection closure.
pub fn polyline_from_wkt(
    s: &str,
    mut project: impl FnMut(GeoPoint) -> Point,
) -> Result<Polyline, WktError> {
    let coords = linestring_from_wkt(s)?;
    Polyline::new(coords.into_iter().map(&mut project).collect()).map_err(|e| match e {
        PolylineError::TooFewVertices(n) => WktError::TooFewCoordinates(n),
        PolylineError::NonFiniteVertex(_) => WktError::BadStructure,
    })
}

fn strip_tag<'a>(s: &'a str, tag: &str) -> Result<&'a str, WktError> {
    let t = s.trim();
    let upper = t.to_ascii_uppercase();
    if !upper.starts_with(tag) {
        let found: String = t.chars().take_while(|c| c.is_ascii_alphabetic()).collect();
        return Err(WktError::BadTag(found));
    }
    let rest = t[tag.len()..].trim_start();
    if !rest.starts_with('(') || !rest.ends_with(')') {
        return Err(WktError::BadStructure);
    }
    Ok(&rest[1..rest.len() - 1])
}

fn parse_coord(s: &str) -> Result<GeoPoint, WktError> {
    let mut it = s.split_whitespace();
    let lon = it
        .next()
        .ok_or(WktError::BadStructure)?
        .parse::<f64>()
        .map_err(|_| WktError::BadNumber(s.into()))?;
    let lat = it
        .next()
        .ok_or(WktError::BadStructure)?
        .parse::<f64>()
        .map_err(|_| WktError::BadNumber(s.into()))?;
    if it.next().is_some() {
        return Err(WktError::BadStructure);
    }
    Ok(GeoPoint::new(lon, lat))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_round_trip() {
        let p = GeoPoint::new(25.4651234, 65.0121987);
        let wkt = point_to_wkt(p);
        assert!(wkt.starts_with("POINT(25.4651234"));
        let back = point_from_wkt(&wkt).unwrap();
        assert!((back.lon - p.lon).abs() < 1e-7);
        assert!((back.lat - p.lat).abs() < 1e-7);
    }

    #[test]
    fn linestring_round_trip() {
        let pts = vec![
            GeoPoint::new(25.46, 65.01),
            GeoPoint::new(25.47, 65.02),
            GeoPoint::new(25.48, 65.015),
        ];
        let wkt = linestring_to_wkt(&pts);
        let back = linestring_from_wkt(&wkt).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in back.iter().zip(&pts) {
            assert!((a.lon - b.lon).abs() < 1e-7);
            assert!((a.lat - b.lat).abs() < 1e-7);
        }
    }

    #[test]
    fn tolerant_of_case_and_spacing() {
        assert!(point_from_wkt(" point ( 25.1 65.2 ) ").is_ok());
        assert!(linestring_from_wkt("linestring(1 2, 3 4)").is_ok());
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(point_from_wkt("POLYGON((1 2))"), Err(WktError::BadTag(_))));
        assert!(matches!(point_from_wkt("POINT 1 2"), Err(WktError::BadStructure)));
        assert!(matches!(point_from_wkt("POINT(a b)"), Err(WktError::BadNumber(_))));
        assert!(matches!(point_from_wkt("POINT(1 2 3)"), Err(WktError::BadStructure)));
        assert!(matches!(
            linestring_from_wkt("LINESTRING(1 2)"),
            Err(WktError::TooFewCoordinates(1))
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any city-range coordinate survives a WKT round trip within
        /// format precision.
        #[test]
        fn point_round_trips(lon in 20f64..30.0, lat in 60f64..70.0) {
            let p = GeoPoint::new(lon, lat);
            let back = point_from_wkt(&point_to_wkt(p)).unwrap();
            prop_assert!((back.lon - lon).abs() < 1e-6);
            prop_assert!((back.lat - lat).abs() < 1e-6);
        }

        /// Linestrings of any length ≥ 2 round trip.
        #[test]
        fn linestring_round_trips(
            coords in proptest::collection::vec((20f64..30.0, 60f64..70.0), 2..20)
        ) {
            let pts: Vec<GeoPoint> =
                coords.into_iter().map(|(lon, lat)| GeoPoint::new(lon, lat)).collect();
            let back = linestring_from_wkt(&linestring_to_wkt(&pts)).unwrap();
            prop_assert_eq!(back.len(), pts.len());
        }
    }
}
