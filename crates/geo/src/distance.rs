use crate::GeoPoint;

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Great-circle distance between two WGS-84 coordinates, in metres
/// (haversine formula).
///
/// Used when computing trip lengths directly from raw route points, e.g. in
/// the order-repair step of §IV-B where the trip length is evaluated for the
/// id-ordered and time-ordered candidate sequences.
pub fn haversine_m(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lat2) = (a.lat.to_radians(), b.lat.to_radians());
    let dlat = lat2 - lat1;
    let dlon = (b.lon - a.lon).to_radians();
    let s = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * s.sqrt().asin()
}

/// Initial compass bearing from `a` to `b` in degrees `[0, 360)`,
/// 0 = north, 90 = east.
pub fn bearing_deg(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lat2) = (a.lat.to_radians(), b.lat.to_radians());
    let dlon = (b.lon - a.lon).to_radians();
    let y = dlon.sin() * lat2.cos();
    let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
    let deg = y.atan2(x).to_degrees();
    if deg < 0.0 {
        deg + 360.0
    } else {
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance() {
        let p = GeoPoint::new(25.4651, 65.0121);
        assert_eq!(haversine_m(p, p), 0.0);
    }

    #[test]
    fn one_degree_latitude_is_about_111_km() {
        let a = GeoPoint::new(25.0, 65.0);
        let b = GeoPoint::new(25.0, 66.0);
        let d = haversine_m(a, b);
        assert!((d - 111_195.0).abs() < 200.0, "got {d}");
    }

    #[test]
    fn longitude_shrinks_with_latitude() {
        let eq = haversine_m(GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 0.0));
        let oulu = haversine_m(GeoPoint::new(25.0, 65.0), GeoPoint::new(26.0, 65.0));
        // cos(65°) ≈ 0.4226
        assert!((oulu / eq - 65.0_f64.to_radians().cos()).abs() < 1e-3);
    }

    #[test]
    fn symmetry() {
        let a = GeoPoint::new(25.4651, 65.0121);
        let b = GeoPoint::new(25.5244, 65.0252);
        assert!((haversine_m(a, b) - haversine_m(b, a)).abs() < 1e-9);
    }

    #[test]
    fn bearings_cardinal() {
        let o = GeoPoint::new(25.0, 65.0);
        assert!((bearing_deg(o, GeoPoint::new(25.0, 65.1)) - 0.0).abs() < 1e-6);
        assert!((bearing_deg(o, GeoPoint::new(25.0, 64.9)) - 180.0).abs() < 1e-6);
        let east = bearing_deg(o, GeoPoint::new(25.1, 65.0));
        assert!((east - 90.0).abs() < 0.1, "got {east}");
    }
}
