//! Order-preserving parallel executor for pipeline stages.
//!
//! The pipeline previously parallelised with hand-rolled scoped threads
//! over static chunks: split the work list into `n_threads` contiguous
//! slices up front, one thread each. That balances badly when item costs
//! are skewed (long trips, dense traces): the slowest chunk gates the
//! stage. This module replaces those with a single shared primitive:
//!
//! - a shared atomic cursor over the work list — each worker claims the
//!   next unclaimed index ("work stealing" in the bakery sense: idle
//!   workers immediately pull whatever work remains, so imbalance is
//!   bounded by one item, not one chunk);
//! - results carry their original index and are scattered back into their
//!   original slot, so the output order equals the input order no matter
//!   which worker ran which item, or in what interleaving.
//!
//! # Determinism
//!
//! `par_map(items, f)` is observationally equivalent to
//! `items.iter().map(f).collect()` whenever `f` is a pure function of the
//! item (plus per-worker scratch that does not alter results — caches
//! memoising pure computations, reusable search buffers). Scheduling
//! affects only *which worker* computes an item and *when*, never the
//! value written to slot `i`. The pipeline relies on this: `repro`
//! output is byte-identical across runs and thread counts.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads for a work list of `len` items: one per
/// available CPU, capped by the number of items (never zero).
pub fn worker_count(len: usize) -> usize {
    let cpus = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    cpus.min(len).max(1)
}

/// Maps `f` over `items` in parallel, preserving input order in the
/// returned vector.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (results, _) = par_map_init(items, || (), |(), item| f(item));
    results
}

/// Like [`par_map`], but each worker first builds a local state with
/// `init` and threads it through every item it claims. Use this to hold
/// per-worker scratch (reusable search state, memo caches) across items.
/// The worker states are returned so callers can fold up statistics;
/// their order is by worker index and carries no meaning beyond that.
pub fn par_map_init<T, R, S, I, F>(items: &[T], init: I, f: F) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        let mut state = init();
        let results = items.iter().map(|item| f(&mut state, item)).collect();
        return (results, vec![state]);
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    let mut states = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        // Workers buffer (index, value) pairs locally and the parent
        // scatters them after join: no shared &mut slots, and the hot
        // loop has no synchronisation beyond one fetch_add per item.
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            let init = &init;
            handles.push(scope.spawn(move || {
                let mut state = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    local.push((index, f(&mut state, &items[index])));
                }
                (state, local)
            }));
        }
        for handle in handles {
            let (state, local) = handle.join().expect("executor worker panicked");
            states.push(state);
            for (index, value) in local {
                debug_assert!(slots[index].is_none(), "slot {index} written twice");
                slots[index] = Some(value);
            }
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect();
    (results, states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn matches_sequential_map_under_skewed_costs() {
        // Item cost grows with value; static chunking would leave the
        // last worker with most of the work. Results must still be in
        // input order.
        let items: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = items.iter().map(|&x| (0..x % 37).sum::<u64>() + x).collect();
        let got = par_map(&items, |&x| (0..x % 37).sum::<u64>() + x);
        assert_eq!(got, expect);
    }

    #[test]
    fn worker_states_cover_all_items() {
        let items: Vec<usize> = (0..500).collect();
        let (results, states) = par_map_init(
            &items,
            || 0usize,
            |processed, &x| {
                *processed += 1;
                x + 1
            },
        );
        assert_eq!(results.len(), items.len());
        assert_eq!(states.iter().sum::<usize>(), items.len());
        assert_eq!(results[499], 500);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(10_000) >= 1);
    }
}
