//! Order-preserving parallel executor for pipeline stages.
//!
//! The pipeline previously parallelised with hand-rolled scoped threads
//! over static chunks: split the work list into `n_threads` contiguous
//! slices up front, one thread each. That balances badly when item costs
//! are skewed (long trips, dense traces): the slowest chunk gates the
//! stage. This module replaces those with a single shared primitive:
//!
//! - a shared atomic cursor over the work list — each worker claims the
//!   next unclaimed index ("work stealing" in the bakery sense: idle
//!   workers immediately pull whatever work remains, so imbalance is
//!   bounded by one item, not one chunk);
//! - results carry their original index and are scattered back into their
//!   original slot, so the output order equals the input order no matter
//!   which worker ran which item, or in what interleaving.
//!
//! # Determinism
//!
//! `par_map(items, f)` is observationally equivalent to
//! `items.iter().map(f).collect()` whenever `f` is a pure function of the
//! item (plus per-worker scratch that does not alter results — caches
//! memoising pure computations, reusable search buffers). Scheduling
//! affects only *which worker* computes an item and *when*, never the
//! value written to slot `i`. The pipeline relies on this: `repro`
//! output is byte-identical across runs and thread counts.
//!
//! # Observability
//!
//! The `*_metered` variants report executor behaviour through a
//! [`taxitrace_obs::Registry`] via [`ExecMeter`]: tasks executed, steals
//! (items a worker claimed beyond its fair share), cumulative idle time,
//! worker counts, and a histogram of per-worker task loads. Metering
//! never changes results — it only counts what the schedule did.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use taxitrace_obs::{Counter, Gauge, Histogram, Registry};

/// Number of worker threads for a work list of `len` items: one per
/// available CPU, capped by the number of items (never zero).
pub fn worker_count(len: usize) -> usize {
    let cpus = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    cpus.min(len).max(1)
}

/// Executor metric handles, registered once and reused across stages.
///
/// * `exec.tasks` — items executed across all metered calls;
/// * `exec.steals` — items claimed by a worker beyond its fair share
///   (`ceil(len / workers)`); non-zero means the cursor rebalanced skew;
/// * `exec.idle_us` — cumulative worker idle time (stage wall minus the
///   worker's busy time), microseconds;
/// * `exec.batches` — metered stage invocations;
/// * `exec.workers` — workers used by the most recent batch (gauge);
/// * `exec.worker_tasks` — per-worker task-count distribution.
#[derive(Debug, Clone)]
pub struct ExecMeter {
    tasks: Counter,
    steals: Counter,
    idle_us: Counter,
    batches: Counter,
    workers: Gauge,
    worker_tasks: Histogram,
}

impl ExecMeter {
    pub fn new(registry: &Registry) -> Self {
        Self {
            tasks: registry.counter("exec.tasks"),
            steals: registry.counter("exec.steals"),
            idle_us: registry.counter("exec.idle_us"),
            batches: registry.counter("exec.batches"),
            workers: registry.gauge("exec.workers"),
            worker_tasks: registry.histogram(
                "exec.worker_tasks",
                &[16.0, 64.0, 256.0, 1024.0, 4096.0],
            ),
        }
    }

    fn record_batch(&self, wall_s: f64, workers: usize, per_worker: &[(usize, f64)]) {
        let len: usize = per_worker.iter().map(|(tasks, _)| tasks).sum();
        let fair = len.div_ceil(workers.max(1));
        self.batches.inc();
        self.workers.set(workers as f64);
        self.tasks.add(len as u64);
        for &(tasks, busy_s) in per_worker {
            self.steals.add(tasks.saturating_sub(fair) as u64);
            self.idle_us.add(((wall_s - busy_s).max(0.0) * 1e6) as u64);
            self.worker_tasks.observe(tasks as f64);
        }
    }
}

/// Maps `f` over `items` in parallel, preserving input order in the
/// returned vector.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (results, _) = par_map_init(items, || (), |(), item| f(item));
    results
}

/// [`par_map`] with executor metrics recorded through `meter`.
pub fn par_map_metered<T, R, F>(items: &[T], f: F, meter: &ExecMeter) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (results, _) = par_map_init_metered(items, || (), |(), item| f(item), meter);
    results
}

/// Like [`par_map`], but each worker first builds a local state with
/// `init` and threads it through every item it claims. Use this to hold
/// per-worker scratch (reusable search state, memo caches) across items.
/// The worker states are returned so callers can fold up statistics;
/// their order is by worker index and carries no meaning beyond that.
pub fn par_map_init<T, R, S, I, F>(items: &[T], init: I, f: F) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    par_map_core(items, init, f, None)
}

/// [`par_map_init`] with executor metrics recorded through `meter`.
pub fn par_map_init_metered<T, R, S, I, F>(
    items: &[T],
    init: I,
    f: F,
    meter: &ExecMeter,
) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    par_map_core(items, init, f, Some(meter))
}

fn par_map_core<T, R, S, I, F>(
    items: &[T],
    init: I,
    f: F,
    meter: Option<&ExecMeter>,
) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = worker_count(items.len());
    let stage_start = Instant::now();
    if workers <= 1 {
        let mut state = init();
        let results: Vec<R> = items.iter().map(|item| f(&mut state, item)).collect();
        if let Some(meter) = meter {
            let wall_s = stage_start.elapsed().as_secs_f64();
            meter.record_batch(wall_s, 1, &[(items.len(), wall_s)]);
        }
        return (results, vec![state]);
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    let mut states = Vec::with_capacity(workers);
    let mut per_worker: Vec<(usize, f64)> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        // Workers buffer (index, value) pairs locally and the parent
        // scatters them after join: no shared &mut slots, and the hot
        // loop has no synchronisation beyond one fetch_add per item.
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            let init = &init;
            handles.push(scope.spawn(move || {
                let busy_start = Instant::now();
                let mut state = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    local.push((index, f(&mut state, &items[index])));
                }
                (state, local, busy_start.elapsed().as_secs_f64())
            }));
        }
        for handle in handles {
            let (state, local, busy_s) = match handle.join() {
                Ok(result) => result,
                // A worker panicked while running `f`; re-raise the
                // original payload in the caller's thread.
                Err(payload) => std::panic::resume_unwind(payload),
            };
            states.push(state);
            per_worker.push((local.len(), busy_s));
            for (index, value) in local {
                debug_assert!(slots[index].is_none(), "slot {index} written twice");
                slots[index] = Some(value);
            }
        }
    });
    if let Some(meter) = meter {
        meter.record_batch(stage_start.elapsed().as_secs_f64(), workers, &per_worker);
    }

    let results = slots
        .into_iter()
        // lint:allow(panic-free-library): the steal loop fills every slot
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect();
    (results, states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn matches_sequential_map_under_skewed_costs() {
        // Item cost grows with value; static chunking would leave the
        // last worker with most of the work. Results must still be in
        // input order.
        let items: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = items.iter().map(|&x| (0..x % 37).sum::<u64>() + x).collect();
        let got = par_map(&items, |&x| (0..x % 37).sum::<u64>() + x);
        assert_eq!(got, expect);
    }

    #[test]
    fn worker_states_cover_all_items() {
        let items: Vec<usize> = (0..500).collect();
        let (results, states) = par_map_init(
            &items,
            || 0usize,
            |processed, &x| {
                *processed += 1;
                x + 1
            },
        );
        assert_eq!(results.len(), items.len());
        assert_eq!(states.iter().sum::<usize>(), items.len());
        assert_eq!(results[499], 500);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(10_000) >= 1);
    }

    #[test]
    fn metered_map_counts_every_task() {
        let registry = Registry::new();
        let meter = ExecMeter::new(&registry);
        let items: Vec<usize> = (0..777).collect();
        let out = par_map_metered(&items, |&x| x + 1, &meter);
        assert_eq!(out.len(), items.len());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("exec.tasks"), Some(777));
        assert_eq!(snap.counter("exec.batches"), Some(1));
        assert!(snap.gauge("exec.workers").is_some_and(|w| w >= 1.0));
        // Per-worker task counts land in the histogram and sum to the
        // task total.
        let hist = snap.histograms.iter().find(|h| h.name == "exec.worker_tasks");
        assert!(hist.is_some_and(|h| (h.sum - 777.0).abs() < 1e-9));
    }

    #[test]
    fn registry_counters_exact_under_par_map() {
        // Many workers hammering shared counter handles through the
        // work-stealing map must lose no increments.
        let registry = Registry::new();
        let meter = ExecMeter::new(&registry);
        let hits = registry.counter("test.hits");
        let weighted = registry.counter("test.weighted");
        let items: Vec<u64> = (0..5000).collect();
        let out = par_map_metered(
            &items,
            |&x| {
                hits.inc();
                weighted.add(x % 7);
                x
            },
            &meter,
        );
        assert_eq!(out, items);
        let expect_weighted: u64 = items.iter().map(|x| x % 7).sum();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("test.hits"), Some(5000));
        assert_eq!(snap.counter("test.weighted"), Some(expect_weighted));
        assert_eq!(snap.counter("exec.tasks"), Some(5000));
    }

    #[test]
    fn metered_results_equal_unmetered() {
        let registry = Registry::new();
        let meter = ExecMeter::new(&registry);
        let items: Vec<u64> = (0..300).collect();
        let plain = par_map(&items, |&x| x * x);
        let metered = par_map_metered(&items, |&x| x * x, &meter);
        assert_eq!(plain, metered);
    }
}
