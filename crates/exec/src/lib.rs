//! Order-preserving parallel executor for pipeline stages.
//!
//! The pipeline previously parallelised with hand-rolled scoped threads
//! over static chunks: split the work list into `n_threads` contiguous
//! slices up front, one thread each. That balances badly when item costs
//! are skewed (long trips, dense traces): the slowest chunk gates the
//! stage. This module replaces those with a single shared primitive:
//!
//! - a shared atomic cursor over the work list — each worker claims the
//!   next unclaimed index ("work stealing" in the bakery sense: idle
//!   workers immediately pull whatever work remains, so imbalance is
//!   bounded by one item, not one chunk);
//! - results carry their original index and are scattered back into their
//!   original slot, so the output order equals the input order no matter
//!   which worker ran which item, or in what interleaving.
//!
//! # Fault isolation
//!
//! Every task runs under `catch_unwind`: a panicking task becomes a typed
//! [`TaskError`] in its output slot instead of tearing down sibling
//! workers mid-run. The fallible entry points ([`try_par_map`],
//! [`try_par_map_init_metered`]) expose per-slot `Result`s governed by a
//! [`TaskPolicy`]: `FailFast` rejects the batch on the first failure,
//! `Collect { max_failures }` tolerates a bounded number, and
//! `max_attempts` retries *fallible* errors (never panics — a panic may
//! leave the per-worker scratch in an unspecified state) a bounded,
//! deterministic number of times on the same worker. The infallible
//! wrappers ([`par_map`] and friends) keep their historical contract —
//! a task panic still reaches the caller — but only after every sibling
//! worker has completed, and always as the payload of the failing item
//! with the smallest input index, so the surfaced panic is deterministic.
//!
//! # Determinism
//!
//! `par_map(items, f)` is observationally equivalent to
//! `items.iter().map(f).collect()` whenever `f` is a pure function of the
//! item (plus per-worker scratch that does not alter results — caches
//! memoising pure computations, reusable search buffers). Scheduling
//! affects only *which worker* computes an item and *when*, never the
//! value written to slot `i`. The pipeline relies on this: `repro`
//! output is byte-identical across runs and thread counts.
//!
//! # Observability
//!
//! The `*_metered` variants report executor behaviour through a
//! [`taxitrace_obs::Registry`] via [`ExecMeter`]: tasks executed, steals
//! (items a worker claimed beyond its fair share), cumulative idle time,
//! worker counts, a histogram of per-worker task loads, and fault
//! counters (task panics, task failures, retries). Metering never
//! changes results — it only counts what the schedule did.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::any::Any;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use taxitrace_obs::{Counter, Gauge, Histogram, Registry};

/// Process-wide worker override set by [`set_max_workers`]; `0` means
/// "auto" (one worker per available CPU).
static MAX_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count used by every subsequent batch in this
/// process. `0` restores the automatic per-CPU default.
///
/// The override is taken literally rather than capped at
/// `available_parallelism()`: forcing e.g. 8 workers on a 1-core host
/// deliberately oversubscribes, which is exactly what thread-count
/// invariance tests need to exercise multi-worker interleavings anywhere.
/// Results never depend on the value (see *Determinism* above) — only
/// wall time does.
pub fn set_max_workers(n: usize) {
    // sync(MAX_WORKERS): standalone config cell; nothing else is published
    // through it, so Relaxed suffices (SeqCst here would imply a protocol
    // that does not exist).
    MAX_WORKERS.store(n, Ordering::Relaxed);
}

/// The current worker override (`0` = auto).
pub fn max_workers() -> usize {
    // sync(MAX_WORKERS): standalone config cell, value-only read.
    MAX_WORKERS.load(Ordering::Relaxed)
}

/// Number of worker threads for a work list of `len` items: one per
/// available CPU (or the [`set_max_workers`] override), capped by the
/// number of items (never zero).
pub fn worker_count(len: usize) -> usize {
    // sync(MAX_WORKERS): standalone config cell, value-only read.
    let cap = MAX_WORKERS.load(Ordering::Relaxed);
    let workers = if cap == 0 {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    } else {
        cap
    };
    workers.min(len).max(1)
}

/// Why a single task's output slot holds no value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError<E> {
    /// The task panicked; the payload is reduced to its message. Panics
    /// are never retried: the per-worker scratch state may be poisoned.
    Panicked {
        /// Stringified panic payload (`&str`/`String` payloads verbatim).
        message: String,
    },
    /// The task returned `Err` on every one of `attempts` tries.
    Failed {
        /// The error from the final attempt.
        error: E,
        /// How many times the task ran (≥ 1, ≤ `TaskPolicy::max_attempts`).
        attempts: u32,
    },
}

impl<E: std::fmt::Display> std::fmt::Display for TaskError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panicked { message } => write!(f, "task panicked: {message}"),
            TaskError::Failed { error, attempts } => {
                write!(f, "task failed after {attempts} attempt(s): {error}")
            }
        }
    }
}

/// How a batch reacts to failed slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Any failed slot rejects the whole batch. Unlike the historical
    /// `resume_unwind` path this is still *isolated*: every sibling task
    /// completes first, and the reported failure is the one with the
    /// smallest input index, so the outcome is deterministic.
    FailFast,
    /// Tolerate up to `max_failures` failed slots; the batch is rejected
    /// only past that budget.
    Collect {
        /// Maximum number of failed slots the batch absorbs.
        max_failures: usize,
    },
}

/// Per-batch fault-handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskPolicy {
    /// Batch-level reaction to failed slots.
    pub failure: FailurePolicy,
    /// Upper bound on executions per task (≥ 1). Retries re-run the task
    /// on the same worker with the same scratch, so a retried success is
    /// observationally identical to a first-try success for pure tasks.
    pub max_attempts: u32,
}

impl Default for TaskPolicy {
    fn default() -> Self {
        Self { failure: FailurePolicy::FailFast, max_attempts: 1 }
    }
}

/// Per-item outcomes of a fallible batch, one slot per input item in
/// input order.
pub type TaskSlots<R, E> = Vec<Result<R, TaskError<E>>>;

/// Outcome of a scratch-carrying fallible batch: the per-item slots plus
/// the per-worker scratch states, or the batch-level rejection.
pub type ScratchBatchResult<R, S, E> = Result<(TaskSlots<R, E>, Vec<S>), BatchError<E>>;

/// A batch rejected by its [`FailurePolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError<E> {
    /// Input index of the first failed slot.
    pub index: usize,
    /// The first failure, by input index.
    pub error: TaskError<E>,
    /// Total failed slots in the batch.
    pub failures: usize,
}

impl<E: std::fmt::Display> std::fmt::Display for BatchError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of the batch's tasks failed; first at index {}: {}",
            self.failures, self.index, self.error
        )
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for BatchError<E> {}

/// Executor metric handles, registered once and reused across stages.
///
/// * `exec.tasks` — items executed across all metered calls;
/// * `exec.steals` — items claimed by a worker beyond its fair share
///   (`ceil(len / workers)`); non-zero means the cursor rebalanced skew;
/// * `exec.idle_us` — cumulative worker idle time (stage wall minus the
///   worker's busy time), microseconds;
/// * `exec.batches` — metered stage invocations;
/// * `exec.workers` — workers used by the most recent batch (gauge);
/// * `exec.worker_tasks` — per-worker task-count distribution;
/// * `exec.task_panics` — tasks whose final attempt panicked;
/// * `exec.task_failures` — tasks whose final attempt returned `Err`;
/// * `exec.task_retries` — extra attempts beyond the first.
#[derive(Debug, Clone)]
pub struct ExecMeter {
    tasks: Counter,
    steals: Counter,
    idle_us: Counter,
    batches: Counter,
    task_panics: Counter,
    task_failures: Counter,
    task_retries: Counter,
    workers: Gauge,
    worker_tasks: Histogram,
}

impl ExecMeter {
    pub fn new(registry: &Registry) -> Self {
        Self {
            tasks: registry.counter("exec.tasks"),
            steals: registry.counter("exec.steals"),
            idle_us: registry.counter("exec.idle_us"),
            batches: registry.counter("exec.batches"),
            task_panics: registry.counter("exec.task_panics"),
            task_failures: registry.counter("exec.task_failures"),
            task_retries: registry.counter("exec.task_retries"),
            workers: registry.gauge("exec.workers"),
            worker_tasks: registry.histogram(
                "exec.worker_tasks",
                &[16.0, 64.0, 256.0, 1024.0, 4096.0],
            ),
        }
    }

    fn record_batch(&self, wall_s: f64, workers: usize, per_worker: &[(usize, f64)]) {
        let len: usize = per_worker.iter().map(|(tasks, _)| tasks).sum();
        let fair = len.div_ceil(workers.max(1));
        self.batches.inc();
        self.workers.set(workers as f64);
        self.tasks.add(len as u64);
        for &(tasks, busy_s) in per_worker {
            self.steals.add(tasks.saturating_sub(fair) as u64);
            self.idle_us.add(((wall_s - busy_s).max(0.0) * 1e6) as u64);
            self.worker_tasks.observe(tasks as f64);
        }
    }

    fn record_faults(&self, panics: u64, failures: u64, retries: u64) {
        self.task_panics.add(panics);
        self.task_failures.add(failures);
        self.task_retries.add(retries);
    }
}

/// Maps `f` over `items` in parallel, preserving input order in the
/// returned vector.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (results, _) = par_map_init(items, || (), |(), item| f(item));
    results
}

/// [`par_map`] with executor metrics recorded through `meter`.
pub fn par_map_metered<T, R, F>(items: &[T], f: F, meter: &ExecMeter) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (results, _) = par_map_init_metered(items, || (), |(), item| f(item), meter);
    results
}

/// Like [`par_map`], but each worker first builds a local state with
/// `init` and threads it through every item it claims. Use this to hold
/// per-worker scratch (reusable search state, memo caches) across items.
/// The worker states are returned so callers can fold up statistics;
/// their order is by worker index and carries no meaning beyond that.
pub fn par_map_init<T, R, S, I, F>(items: &[T], init: I, f: F) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    par_map_core(items, init, f, None)
}

/// [`par_map_init`] with executor metrics recorded through `meter`.
pub fn par_map_init_metered<T, R, S, I, F>(
    items: &[T],
    init: I,
    f: F,
    meter: &ExecMeter,
) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    par_map_core(items, init, f, Some(meter))
}

/// Fault-isolated parallel map: each slot is `Ok(value)` or the
/// [`TaskError`] that emptied it, and the batch as a whole is accepted or
/// rejected by `policy`. See the module docs for the isolation contract.
pub fn try_par_map<T, R, E, F>(
    items: &[T],
    f: F,
    policy: TaskPolicy,
) -> Result<TaskSlots<R, E>, BatchError<E>>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let (slots, _) = par_try_core(items, || (), |(), item| f(item), policy.max_attempts, None);
    apply_policy(slots, policy.failure)
}

/// [`try_par_map`] with per-worker scratch states and executor metrics.
pub fn try_par_map_init_metered<T, R, S, E, I, F>(
    items: &[T],
    init: I,
    f: F,
    policy: TaskPolicy,
    meter: &ExecMeter,
) -> ScratchBatchResult<R, S, E>
where
    T: Sync,
    R: Send,
    S: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> Result<R, E> + Sync,
{
    let (slots, states) = par_try_core(items, init, f, policy.max_attempts, Some(meter));
    apply_policy(slots, policy.failure).map(|slots| (slots, states))
}

/// A slot failure as captured inside the workers: panics keep their raw
/// payload so the infallible wrappers can re-raise it unchanged.
enum RawTaskError<E> {
    Panic(Box<dyn Any + Send>),
    Failed { error: E, attempts: u32 },
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl<E> RawTaskError<E> {
    fn typed(self) -> TaskError<E> {
        match self {
            RawTaskError::Panic(payload) => {
                TaskError::Panicked { message: panic_message(payload.as_ref()) }
            }
            RawTaskError::Failed { error, attempts } => TaskError::Failed { error, attempts },
        }
    }
}

fn apply_policy<R, E>(
    slots: Vec<Result<R, RawTaskError<E>>>,
    policy: FailurePolicy,
) -> Result<TaskSlots<R, E>, BatchError<E>> {
    let slots: Vec<Result<R, TaskError<E>>> =
        slots.into_iter().map(|slot| slot.map_err(RawTaskError::typed)).collect();
    let failures = slots.iter().filter(|slot| slot.is_err()).count();
    let budget = match policy {
        FailurePolicy::FailFast => 0,
        FailurePolicy::Collect { max_failures } => max_failures,
    };
    if failures <= budget {
        return Ok(slots);
    }
    // Reject with the first failure by input index — deterministic no
    // matter which worker hit it or when.
    let first = slots
        .into_iter()
        .enumerate()
        .find_map(|(index, slot)| slot.err().map(|error| (index, error)));
    match first {
        Some((index, error)) => Err(BatchError { index, error, failures }),
        // `failures > budget >= 0` implies at least one Err slot exists.
        None => Err(BatchError {
            index: 0,
            error: TaskError::Panicked { message: "failure count without failed slot".into() },
            failures,
        }),
    }
}

/// Runs one task to completion: up to `max_attempts` executions, retrying
/// only fallible `Err` outcomes. Returns the outcome plus the number of
/// extra attempts spent.
fn run_task<T, R, S, E, F>(
    f: &F,
    state: &mut S,
    item: &T,
    max_attempts: u32,
) -> (Result<R, RawTaskError<E>>, u64)
where
    F: Fn(&mut S, &T) -> Result<R, E>,
{
    let max_attempts = max_attempts.max(1);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        // The closure only touches the caller's state and the item; a
        // caught panic leaves `state` logically unspecified, which is why
        // panics are terminal (never retried) and why per-worker scratch
        // must be rebuildable from scratch semantics alone.
        match catch_unwind(AssertUnwindSafe(|| f(state, item))) {
            Ok(Ok(value)) => return (Ok(value), u64::from(attempts - 1)),
            Ok(Err(error)) => {
                if attempts < max_attempts {
                    continue;
                }
                return (Err(RawTaskError::Failed { error, attempts }), u64::from(attempts - 1));
            }
            Err(payload) => {
                return (Err(RawTaskError::Panic(payload)), u64::from(attempts - 1))
            }
        }
    }
}

fn par_try_core<T, R, S, E, I, F>(
    items: &[T],
    init: I,
    f: F,
    max_attempts: u32,
    meter: Option<&ExecMeter>,
) -> (Vec<Result<R, RawTaskError<E>>>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> Result<R, E> + Sync,
{
    let workers = worker_count(items.len());
    let stage_start = Instant::now();
    if workers <= 1 {
        let mut state = init();
        let mut retries = 0u64;
        let results: Vec<Result<R, RawTaskError<E>>> = items
            .iter()
            .map(|item| {
                let (outcome, extra) = run_task(&f, &mut state, item, max_attempts);
                retries += extra;
                outcome
            })
            .collect();
        if let Some(meter) = meter {
            let wall_s = stage_start.elapsed().as_secs_f64();
            meter.record_batch(wall_s, 1, &[(items.len(), wall_s)]);
            record_fault_counts(meter, &results, retries);
        }
        return (results, vec![state]);
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<R, RawTaskError<E>>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    let mut states = Vec::with_capacity(workers);
    let mut per_worker: Vec<(usize, f64)> = Vec::with_capacity(workers);
    let mut retries = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        // Workers buffer (index, outcome) pairs locally and the parent
        // scatters them after join: no shared &mut slots, and the hot
        // loop has no synchronisation beyond one fetch_add per item.
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            let init = &init;
            handles.push(scope.spawn(move || {
                let busy_start = Instant::now();
                let mut state = init();
                let mut local: Vec<(usize, Result<R, RawTaskError<E>>)> = Vec::new();
                let mut retries = 0u64;
                loop {
                    // sync(cursor): claim uniqueness needs only RMW
                    // atomicity; results publish via thread join below.
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    // Task panics are caught inside run_task, so a worker
                    // thread can no longer die from a poison item.
                    let (outcome, extra) = run_task(f, &mut state, &items[index], max_attempts);
                    retries += extra;
                    local.push((index, outcome));
                }
                (state, local, busy_start.elapsed().as_secs_f64(), retries)
            }));
        }
        for handle in handles {
            // Every task runs under catch_unwind, so join can only fail if
            // the harness itself (cursor bookkeeping, Vec pushes) panicked —
            // re-raise that in the caller: it is a bug, not a task fault.
            let (state, local, busy_s, worker_retries) = match handle.join() {
                Ok(result) => result,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            states.push(state);
            per_worker.push((local.len(), busy_s));
            retries += worker_retries;
            for (index, value) in local {
                debug_assert!(slots[index].is_none(), "slot {index} written twice");
                slots[index] = Some(value);
            }
        }
    });

    let results: Vec<Result<R, RawTaskError<E>>> = slots
        .into_iter()
        // lint:allow(panic-free-library): the steal loop fills every slot
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect();
    if let Some(meter) = meter {
        meter.record_batch(stage_start.elapsed().as_secs_f64(), workers, &per_worker);
        record_fault_counts(meter, &results, retries);
    }
    (results, states)
}

fn record_fault_counts<R, E>(
    meter: &ExecMeter,
    slots: &[Result<R, RawTaskError<E>>],
    retries: u64,
) {
    let panics =
        slots.iter().filter(|s| matches!(s, Err(RawTaskError::Panic(_)))).count() as u64;
    let failures =
        slots.iter().filter(|s| matches!(s, Err(RawTaskError::Failed { .. }))).count() as u64;
    meter.record_faults(panics, failures, retries);
}

fn par_map_core<T, R, S, I, F>(
    items: &[T],
    init: I,
    f: F,
    meter: Option<&ExecMeter>,
) -> (Vec<R>, Vec<S>)
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let (slots, states) = par_try_core(
        items,
        init,
        |state, item| Ok::<R, std::convert::Infallible>(f(state, item)),
        1,
        meter,
    );
    let mut results = Vec::with_capacity(slots.len());
    let mut first_panic: Option<Box<dyn Any + Send>> = None;
    for slot in slots {
        match slot {
            Ok(value) => results.push(value),
            Err(RawTaskError::Panic(payload)) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
            Err(RawTaskError::Failed { error, .. }) => match error {},
        }
    }
    if let Some(payload) = first_panic {
        // The infallible API has no error channel: re-raise the original
        // payload — but only now, after every sibling task has completed,
        // and always the failure with the smallest input index.
        std::panic::resume_unwind(payload);
    }
    (results, states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed); // sync(counter): merged by join
            x
        });
        // sync(counter): par_map joined every worker, so the count is exact.
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn matches_sequential_map_under_skewed_costs() {
        // Item cost grows with value; static chunking would leave the
        // last worker with most of the work. Results must still be in
        // input order.
        let items: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = items.iter().map(|&x| (0..x % 37).sum::<u64>() + x).collect();
        let got = par_map(&items, |&x| (0..x % 37).sum::<u64>() + x);
        assert_eq!(got, expect);
    }

    #[test]
    fn worker_states_cover_all_items() {
        let items: Vec<usize> = (0..500).collect();
        let (results, states) = par_map_init(
            &items,
            || 0usize,
            |processed, &x| {
                *processed += 1;
                x + 1
            },
        );
        assert_eq!(results.len(), items.len());
        assert_eq!(states.iter().sum::<usize>(), items.len());
        assert_eq!(results[499], 500);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(10_000) >= 1);
    }

    #[test]
    fn metered_map_counts_every_task() {
        let registry = Registry::new();
        let meter = ExecMeter::new(&registry);
        let items: Vec<usize> = (0..777).collect();
        let out = par_map_metered(&items, |&x| x + 1, &meter);
        assert_eq!(out.len(), items.len());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("exec.tasks"), Some(777));
        assert_eq!(snap.counter("exec.batches"), Some(1));
        assert!(snap.gauge("exec.workers").is_some_and(|w| w >= 1.0));
        // Per-worker task counts land in the histogram and sum to the
        // task total.
        let hist = snap.histograms.iter().find(|h| h.name == "exec.worker_tasks");
        assert!(hist.is_some_and(|h| (h.sum - 777.0).abs() < 1e-9));
    }

    #[test]
    fn registry_counters_exact_under_par_map() {
        // Many workers hammering shared counter handles through the
        // work-stealing map must lose no increments.
        let registry = Registry::new();
        let meter = ExecMeter::new(&registry);
        let hits = registry.counter("test.hits");
        let weighted = registry.counter("test.weighted");
        let items: Vec<u64> = (0..5000).collect();
        let out = par_map_metered(
            &items,
            |&x| {
                hits.inc();
                weighted.add(x % 7);
                x
            },
            &meter,
        );
        assert_eq!(out, items);
        let expect_weighted: u64 = items.iter().map(|x| x % 7).sum();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("test.hits"), Some(5000));
        assert_eq!(snap.counter("test.weighted"), Some(expect_weighted));
        assert_eq!(snap.counter("exec.tasks"), Some(5000));
    }

    #[test]
    fn metered_results_equal_unmetered() {
        let registry = Registry::new();
        let meter = ExecMeter::new(&registry);
        let items: Vec<u64> = (0..300).collect();
        let plain = par_map(&items, |&x| x * x);
        let metered = par_map_metered(&items, |&x| x * x, &meter);
        assert_eq!(plain, metered);
    }

    #[test]
    fn panicking_task_is_isolated_into_its_slot() {
        let items: Vec<u32> = (0..100).collect();
        let slots = try_par_map(
            &items,
            |&x| {
                if x == 37 {
                    panic!("poison item {x}");
                }
                Ok::<u32, String>(x * 2)
            },
            TaskPolicy { failure: FailurePolicy::Collect { max_failures: 1 }, max_attempts: 1 },
        )
        .unwrap();
        // Every sibling completed; only the poison slot is empty.
        for (i, slot) in slots.iter().enumerate() {
            if i == 37 {
                assert_eq!(
                    slot,
                    &Err(TaskError::Panicked { message: "poison item 37".into() })
                );
            } else {
                assert_eq!(slot, &Ok(i as u32 * 2));
            }
        }
    }

    #[test]
    fn fail_fast_reports_first_failure_by_input_index() {
        let items: Vec<u32> = (0..256).collect();
        let err = try_par_map(
            &items,
            |&x| if x % 50 == 49 { Err(format!("bad {x}")) } else { Ok(x) },
            TaskPolicy { failure: FailurePolicy::FailFast, max_attempts: 1 },
        )
        .unwrap_err();
        assert_eq!(err.index, 49);
        assert_eq!(err.failures, 5);
        assert_eq!(err.error, TaskError::Failed { error: "bad 49".into(), attempts: 1 });
    }

    #[test]
    fn collect_policy_bounds_failures() {
        let items: Vec<u32> = (0..64).collect();
        let run = |max_failures| {
            try_par_map(
                &items,
                |&x| if x < 4 { Err(x) } else { Ok(x) },
                TaskPolicy { failure: FailurePolicy::Collect { max_failures }, max_attempts: 1 },
            )
        };
        assert!(run(4).is_ok());
        let err = run(3).unwrap_err();
        assert_eq!(err.failures, 4);
        assert_eq!(err.index, 0);
    }

    #[test]
    fn bounded_retry_is_deterministic_and_counted() {
        // Each item fails (attempts_needed - 1) times before succeeding;
        // retry happens on the same worker so attempt counts are exact.
        let registry = Registry::new();
        let meter = ExecMeter::new(&registry);
        let items: Vec<u32> = (0..40).collect();
        let (slots, states) = try_par_map_init_metered(
            &items,
            std::collections::BTreeMap::<u32, u32>::new,
            |tries, &x| {
                let t = tries.entry(x).or_insert(0);
                *t += 1;
                let needed = x % 3 + 1; // 1..=3 attempts
                if *t >= needed {
                    Ok(x)
                } else {
                    Err(format!("transient {x}"))
                }
            },
            TaskPolicy { failure: FailurePolicy::FailFast, max_attempts: 3 },
            &meter,
        )
        .unwrap();
        assert!(slots.iter().all(|s| s.is_ok()));
        let total_tries: u32 = states.iter().flat_map(|m| m.values()).sum();
        let expect_tries: u32 = items.iter().map(|x| x % 3 + 1).sum();
        assert_eq!(total_tries, expect_tries);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("exec.task_retries"),
            Some(u64::from(expect_tries - items.len() as u32))
        );
        assert_eq!(snap.counter("exec.task_failures"), Some(0));
        assert_eq!(snap.counter("exec.task_panics"), Some(0));
    }

    #[test]
    fn retry_exhaustion_reports_attempt_count() {
        let items = [1u32];
        let err = try_par_map(
            &items,
            |_| Err::<u32, _>("always"),
            TaskPolicy { failure: FailurePolicy::FailFast, max_attempts: 3 },
        )
        .unwrap_err();
        assert_eq!(err.error, TaskError::Failed { error: "always", attempts: 3 });
    }

    #[test]
    fn panics_are_never_retried() {
        let attempts = AtomicUsize::new(0);
        let items = [0u8];
        let slots = try_par_map(
            &items,
            |_| -> Result<u8, String> {
                attempts.fetch_add(1, Ordering::Relaxed); // sync(attempts): merged by join
                panic!("boom");
            },
            TaskPolicy { failure: FailurePolicy::Collect { max_failures: 1 }, max_attempts: 5 },
        )
        .unwrap();
        // sync(attempts): try_par_map joined every worker.
        assert_eq!(attempts.load(Ordering::Relaxed), 1);
        assert!(matches!(slots[0], Err(TaskError::Panicked { .. })));
    }

    #[test]
    fn infallible_map_reraises_lowest_index_panic_after_siblings_finish() {
        let completed = AtomicUsize::new(0);
        let items: Vec<u32> = (0..300).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                if x == 123 || x == 222 {
                    panic!("die {x}");
                }
                completed.fetch_add(1, Ordering::Relaxed); // sync(completed): merged by join
                x
            })
        }));
        let payload = caught.unwrap_err();
        assert_eq!(panic_message(payload.as_ref()), "die 123");
        // All non-panicking siblings ran to completion despite the panic.
        // sync(completed): all workers joined before the panic re-raise.
        assert_eq!(completed.load(Ordering::Relaxed), items.len() - 2);
    }

    #[test]
    fn metered_fault_counters_cover_panics_and_failures() {
        let registry = Registry::new();
        let meter = ExecMeter::new(&registry);
        let items: Vec<u32> = (0..30).collect();
        let slots = try_par_map_init_metered(
            &items,
            || (),
            |(), &x| -> Result<u32, String> {
                if x == 3 {
                    panic!("p");
                }
                if x == 7 {
                    return Err("f".into());
                }
                Ok(x)
            },
            TaskPolicy { failure: FailurePolicy::Collect { max_failures: 2 }, max_attempts: 1 },
            &meter,
        )
        .unwrap()
        .0;
        assert_eq!(slots.iter().filter(|s| s.is_err()).count(), 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("exec.task_panics"), Some(1));
        assert_eq!(snap.counter("exec.task_failures"), Some(1));
    }

    #[test]
    fn max_workers_override_controls_worker_count() {
        // Serialised within one test: the override is process-global.
        assert_eq!(max_workers(), 0);
        set_max_workers(3);
        assert_eq!(max_workers(), 3);
        // Taken literally even above available_parallelism, capped by len.
        assert_eq!(worker_count(100), 3);
        assert_eq!(worker_count(2), 2);
        assert_eq!(worker_count(0), 1);
        // Results are identical to the sequential map under any override.
        let items: Vec<u64> = (0..200).collect();
        let (forced, _) = par_map_init(&items, || (), |(), &x| x * x);
        set_max_workers(1);
        let (seq, _) = par_map_init(&items, || (), |(), &x| x * x);
        set_max_workers(0);
        assert_eq!(forced, seq);
        assert_eq!(worker_count(1), 1);
    }
}
