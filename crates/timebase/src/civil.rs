use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Timestamp;

/// Error constructing a civil date or time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DateError {
    /// Month outside 1..=12.
    BadMonth(u8),
    /// Day outside the valid range for the given month/year.
    BadDay { year: i32, month: u8, day: u8 },
    /// Hour/minute/second out of range.
    BadTime { hour: u8, minute: u8, second: u8 },
}

impl fmt::Display for DateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DateError::BadMonth(m) => write!(f, "month {m} out of range 1..=12"),
            DateError::BadDay { year, month, day } => {
                write!(f, "day {day} invalid for {year}-{month:02}")
            }
            DateError::BadTime { hour, minute, second } => {
                write!(f, "time {hour:02}:{minute:02}:{second:02} out of range")
            }
        }
    }
}

impl std::error::Error for DateError {}

/// Calendar month.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Month {
    January = 1,
    February,
    March,
    April,
    May,
    June,
    July,
    August,
    September,
    October,
    November,
    December,
}

impl Month {
    /// Month from its 1-based number.
    pub fn from_number(n: u8) -> Result<Self, DateError> {
        use Month::*;
        Ok(match n {
            1 => January,
            2 => February,
            3 => March,
            4 => April,
            5 => May,
            6 => June,
            7 => July,
            8 => August,
            9 => September,
            10 => October,
            11 => November,
            12 => December,
            _ => return Err(DateError::BadMonth(n)),
        })
    }

    /// 1-based month number.
    #[inline]
    pub fn number(self) -> u8 {
        self as u8
    }
}

/// A proleptic-Gregorian calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDate {
    year: i32,
    month: u8,
    day: u8,
}

/// Whether `year` is a Gregorian leap year.
fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in a month.
fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        // February — and, defensively, any out-of-range month the public
        // constructors have already rejected.
        _ => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
    }
}

impl CivilDate {
    /// Constructs a validated date.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, DateError> {
        if !(1..=12).contains(&month) {
            return Err(DateError::BadMonth(month));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(DateError::BadDay { year, month, day });
        }
        Ok(Self { year, month, day })
    }

    #[inline]
    pub fn year(&self) -> i32 {
        self.year
    }

    #[inline]
    pub fn month(&self) -> Month {
        // `new` validates 1..=12, so the fallback is unreachable; it keeps
        // the accessor panic-free without widening the return type.
        Month::from_number(self.month).unwrap_or(Month::January)
    }

    #[inline]
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Days since 1970-01-01 (Hinnant's `days_from_civil`).
    pub fn days_from_epoch(&self) -> i64 {
        let y = if self.month <= 2 { self.year - 1 } else { self.year } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`Self::days_from_epoch`] (Hinnant's `civil_from_days`).
    pub fn from_days_from_epoch(z: i64) -> Self {
        let z = z + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8; // [1, 12]
        let year = (if m <= 2 { y + 1 } else { y }) as i32;
        Self { year, month: m, day: d }
    }

    /// ISO weekday, 1 = Monday … 7 = Sunday.
    pub fn weekday(&self) -> u8 {
        // 1970-01-01 was a Thursday (ISO 4).
        let z = self.days_from_epoch();
        (((z % 7 + 10) % 7) + 1) as u8
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Date plus time of day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDateTime {
    pub date: CivilDate,
    pub hour: u8,
    pub minute: u8,
    pub second: u8,
}

impl CivilDateTime {
    /// Constructs a validated date-time.
    pub fn new(date: CivilDate, hour: u8, minute: u8, second: u8) -> Result<Self, DateError> {
        if hour > 23 || minute > 59 || second > 59 {
            return Err(DateError::BadTime { hour, minute, second });
        }
        Ok(Self { date, hour, minute, second })
    }

    /// Conversion to Unix seconds (UTC-naive: the study uses a single local
    /// clock; DST shifts are irrelevant to the analyses reproduced).
    pub fn to_timestamp(&self) -> Timestamp {
        Timestamp::from_secs(
            self.date.days_from_epoch() * 86_400
                + self.hour as i64 * 3600
                + self.minute as i64 * 60
                + self.second as i64,
        )
    }

    /// Conversion from Unix seconds.
    pub fn from_timestamp(ts: Timestamp) -> Self {
        let secs = ts.secs();
        let days = secs.div_euclid(86_400);
        let sod = secs.rem_euclid(86_400);
        Self {
            date: CivilDate::from_days_from_epoch(days),
            hour: (sod / 3600) as u8,
            minute: (sod % 3600 / 60) as u8,
            second: (sod % 60) as u8,
        }
    }
}

impl fmt::Display for CivilDateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:02}:{:02}:{:02}",
            self.date, self.hour, self.minute, self.second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(CivilDate::new(1970, 1, 1).unwrap().days_from_epoch(), 0);
    }

    #[test]
    fn known_days() {
        // 2012-10-01 is 15614 days after the epoch.
        assert_eq!(CivilDate::new(2012, 10, 1).unwrap().days_from_epoch(), 15_614);
        assert_eq!(CivilDate::from_days_from_epoch(15_614), CivilDate::new(2012, 10, 1).unwrap());
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2012));
        assert!(!is_leap(2013));
        assert!(!is_leap(1900));
        assert!(is_leap(2000));
        assert!(CivilDate::new(2012, 2, 29).is_ok());
        assert!(CivilDate::new(2013, 2, 29).is_err());
    }

    #[test]
    fn rejects_paper_typo_date() {
        // The paper's "31.9.2013" does not exist.
        assert!(matches!(
            CivilDate::new(2013, 9, 31),
            Err(DateError::BadDay { .. })
        ));
    }

    #[test]
    fn weekday_known_values() {
        assert_eq!(CivilDate::new(1970, 1, 1).unwrap().weekday(), 4); // Thursday
        assert_eq!(CivilDate::new(2012, 10, 1).unwrap().weekday(), 1); // Monday
        assert_eq!(CivilDate::new(2013, 9, 30).unwrap().weekday(), 1); // Monday
    }

    #[test]
    fn datetime_round_trip() {
        let dt = CivilDateTime::new(CivilDate::new(2013, 3, 17).unwrap(), 13, 45, 9).unwrap();
        assert_eq!(CivilDateTime::from_timestamp(dt.to_timestamp()), dt);
    }

    #[test]
    fn negative_timestamps() {
        let dt = CivilDateTime::new(CivilDate::new(1969, 12, 31).unwrap(), 23, 59, 59).unwrap();
        assert_eq!(dt.to_timestamp().secs(), -1);
        assert_eq!(CivilDateTime::from_timestamp(Timestamp::from_secs(-1)), dt);
    }

    #[test]
    fn display_formats() {
        let dt = CivilDateTime::new(CivilDate::new(2012, 10, 1).unwrap(), 8, 5, 0).unwrap();
        assert_eq!(dt.to_string(), "2012-10-01 08:05:00");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Civil date ↔ day count round-trips over ±200 years.
        #[test]
        fn date_round_trip(z in -73_000i64..73_000) {
            let d = CivilDate::from_days_from_epoch(z);
            prop_assert_eq!(d.days_from_epoch(), z);
        }

        /// Timestamp round-trip across the full study period and beyond.
        #[test]
        fn datetime_round_trip(secs in -4_000_000_000i64..4_000_000_000) {
            let ts = Timestamp::from_secs(secs);
            let dt = CivilDateTime::from_timestamp(ts);
            prop_assert_eq!(dt.to_timestamp(), ts);
        }

        /// Consecutive days have consecutive weekdays.
        #[test]
        fn weekday_cycles(z in -73_000i64..73_000) {
            let today = CivilDate::from_days_from_epoch(z).weekday();
            let tomorrow = CivilDate::from_days_from_epoch(z + 1).weekday();
            prop_assert_eq!(tomorrow, today % 7 + 1);
        }
    }
}
