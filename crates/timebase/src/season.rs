use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{CivilDate, Month, Timestamp};

/// Meteorological season at 65 °N, as used for the paper's seasonal
/// categorisation of Fig. 5 ("especially in northern countries, there exist
/// clearly separate seasons").
///
/// We use the meteorological convention: winter = Dec–Feb, spring = Mar–May,
/// summer = Jun–Aug, autumn = Sep–Nov. The paper does not state its exact
/// boundaries; the qualitative claims (winter slowest, autumn the largest
/// positive delta) are insensitive to a one-month shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Season {
    Winter,
    Spring,
    Summer,
    Autumn,
}

impl Season {
    /// All seasons in calendar order starting from winter.
    pub const ALL: [Season; 4] = [Season::Winter, Season::Spring, Season::Summer, Season::Autumn];

    /// The season containing a calendar month.
    pub fn of_month(month: Month) -> Self {
        use Month::*;
        match month {
            December | January | February => Season::Winter,
            March | April | May => Season::Spring,
            June | July | August => Season::Summer,
            September | October | November => Season::Autumn,
        }
    }

    /// The season of a calendar date.
    #[inline]
    pub fn of_date(date: CivilDate) -> Self {
        Self::of_month(date.month())
    }

    /// The season of a timestamp.
    #[inline]
    pub fn of_timestamp(ts: Timestamp) -> Self {
        Self::of_date(ts.civil().date)
    }

    /// Short English label, as used in result tables.
    pub fn label(self) -> &'static str {
        match self {
            Season::Winter => "winter",
            Season::Spring => "spring",
            Season::Summer => "summer",
            Season::Autumn => "autumn",
        }
    }
}

impl fmt::Display for Season {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_mapping() {
        assert_eq!(Season::of_month(Month::January), Season::Winter);
        assert_eq!(Season::of_month(Month::December), Season::Winter);
        assert_eq!(Season::of_month(Month::March), Season::Spring);
        assert_eq!(Season::of_month(Month::July), Season::Summer);
        assert_eq!(Season::of_month(Month::October), Season::Autumn);
    }

    #[test]
    fn study_period_covers_all_seasons() {
        use std::collections::BTreeSet;
        let start = crate::study_period_start();
        let end = crate::study_period_end();
        let mut seen = BTreeSet::new();
        let mut t = start;
        while t < end {
            seen.insert(Season::of_timestamp(t));
            t += crate::Duration::from_days(10);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn labels() {
        assert_eq!(Season::Autumn.to_string(), "autumn");
    }
}
