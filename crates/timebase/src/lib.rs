//! Civil-time substrate for the `taxi-traces` workspace.
//!
//! The paper's study period is 1.10.2012–30.9.2013 and several analyses are
//! keyed on calendar structure: seasonal speed comparison (Fig. 5), seasonal
//! mean deltas, and the temperature-class analysis of Fig. 10. This crate
//! provides Unix-second timestamps, civil date/time conversion (Howard
//! Hinnant's `days_from_civil` algorithms), durations, Finnish seasons, and
//! formatting — without pulling in a calendar dependency, because the date
//! logic is part of the system under reproduction.

mod civil;
mod season;
mod timestamp;

pub use civil::{CivilDate, CivilDateTime, DateError, Month};
pub use season::Season;
pub use timestamp::{Duration, Timestamp};

/// The paper's study period start: 1 October 2012, 00:00:00 (UTC-naive).
pub fn study_period_start() -> Timestamp {
    CivilDateTime::new(CivilDate::new(2012, 10, 1).expect("valid date"), 0, 0, 0)
        .expect("valid time")
        .to_timestamp()
}

/// The paper's study period end (exclusive): 1 October 2013, 00:00:00.
///
/// The paper writes "31.9.2013", which does not exist; we read it as the end
/// of September, i.e. a full year of data.
pub fn study_period_end() -> Timestamp {
    CivilDateTime::new(CivilDate::new(2013, 10, 1).expect("valid date"), 0, 0, 0)
        .expect("valid time")
        .to_timestamp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_period_is_one_year() {
        let days = (study_period_end().secs() - study_period_start().secs()) / 86_400;
        assert_eq!(days, 365);
    }
}
