//! Civil-time substrate for the `taxi-traces` workspace.
//!
//! The paper's study period is 1.10.2012–30.9.2013 and several analyses are
//! keyed on calendar structure: seasonal speed comparison (Fig. 5), seasonal
//! mean deltas, and the temperature-class analysis of Fig. 10. This crate
//! provides Unix-second timestamps, civil date/time conversion (Howard
//! Hinnant's `days_from_civil` algorithms), durations, Finnish seasons, and
//! formatting — without pulling in a calendar dependency, because the date
//! logic is part of the system under reproduction.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod civil;
mod season;
mod timestamp;

pub use civil::{CivilDate, CivilDateTime, DateError, Month};
pub use season::Season;
pub use timestamp::{Duration, Timestamp};

/// The paper's study period start: 1 October 2012, 00:00:00 (UTC-naive).
///
/// Stored as the precomputed Unix second so the accessor is infallible; a
/// test cross-checks it against the civil-date construction.
pub fn study_period_start() -> Timestamp {
    Timestamp::from_secs(STUDY_START_SECS)
}

const STUDY_START_SECS: i64 = 1_349_049_600; // 2012-10-01T00:00:00
const STUDY_END_SECS: i64 = 1_380_585_600; // 2013-10-01T00:00:00

/// The paper's study period end (exclusive): 1 October 2013, 00:00:00.
///
/// The paper writes "31.9.2013", which does not exist; we read it as the end
/// of September, i.e. a full year of data.
pub fn study_period_end() -> Timestamp {
    Timestamp::from_secs(STUDY_END_SECS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_period_matches_civil_dates() {
        for (ts, (y, m, d)) in
            [(study_period_start(), (2012, 10, 1)), (study_period_end(), (2013, 10, 1))]
        {
            let civil = CivilDateTime::new(CivilDate::new(y, m, d).expect("valid date"), 0, 0, 0)
                .expect("valid time");
            assert_eq!(ts, civil.to_timestamp());
        }
    }

    #[test]
    fn study_period_is_one_year() {
        let days = (study_period_end().secs() - study_period_start().secs()) / 86_400;
        assert_eq!(days, 365);
    }
}
