use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

use crate::CivilDateTime;

/// A span of time in whole seconds (may be negative).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(i64);

impl Duration {
    pub const ZERO: Duration = Duration(0);

    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        Self(secs)
    }

    #[inline]
    pub const fn from_minutes(min: i64) -> Self {
        Self(min * 60)
    }

    #[inline]
    pub const fn from_hours(h: i64) -> Self {
        Self(h * 3600)
    }

    #[inline]
    pub const fn from_days(d: i64) -> Self {
        Self(d * 86_400)
    }

    #[inline]
    pub const fn secs(self) -> i64 {
        self.0
    }

    /// Duration as fractional hours (the unit of Table 4's "route time").
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Duration as fractional minutes.
    #[inline]
    pub fn as_minutes_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0.unsigned_abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        write!(f, "{sign}{:02}:{:02}:{:02}", s / 3600, s % 3600 / 60, s % 60)
    }
}

/// A point in time as Unix seconds (UTC-naive local clock, matching the
/// single-timezone study setting).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(i64);

impl Timestamp {
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        Self(secs)
    }

    #[inline]
    pub const fn secs(self) -> i64 {
        self.0
    }

    /// The civil date-time this timestamp denotes.
    #[inline]
    pub fn civil(self) -> CivilDateTime {
        CivilDateTime::from_timestamp(self)
    }

    /// Seconds elapsed from `earlier` to `self` (negative if `self` is
    /// earlier).
    #[inline]
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0 - earlier.0)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.secs())
    }
}

impl AddAssign<Duration> for Timestamp {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.secs();
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0 - d.secs())
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    #[inline]
    fn sub(self, other: Timestamp) -> Duration {
        Duration(self.0 - other.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, d: Duration) -> Duration {
        Duration(self.0 + d.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.civil())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(1000);
        assert_eq!((t + Duration::from_minutes(2)).secs(), 1120);
        assert_eq!((t - Duration::from_secs(500)).secs(), 500);
        assert_eq!((t - Timestamp::from_secs(400)).secs(), 600);
        assert_eq!(t.since(Timestamp::from_secs(1600)).secs(), -600);
    }

    #[test]
    fn duration_units() {
        assert_eq!(Duration::from_hours(2).secs(), 7200);
        assert_eq!(Duration::from_days(1).secs(), 86_400);
        assert_eq!(Duration::from_secs(5400).as_hours_f64(), 1.5);
        assert_eq!(Duration::from_secs(90).as_minutes_f64(), 1.5);
    }

    #[test]
    fn display() {
        assert_eq!(Duration::from_secs(3_725).to_string(), "01:02:05");
        assert_eq!(Duration::from_secs(-61).to_string(), "-00:01:01");
    }
}
