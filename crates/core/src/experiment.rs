//! The staged study pipeline.
//!
//! [`Study::run`] executes the paper's four stages back to back, but each
//! stage is also a first-class API step with a typed output:
//!
//! ```text
//! Study ─simulate()→ Simulated ─clean()→ Cleaned ─analyze_od()→ OdSelected
//!                                                        │
//!                                         match_fuse() ──┴─→ StudyOutput
//! ```
//!
//! Every stage output carries a [`MetricsSnapshot`] of the observability
//! registry at that point, so callers can inspect counters and spans after
//! any prefix of the pipeline without running the rest.

use std::collections::BTreeMap;
use std::path::Path;

use serde::{Deserialize, Serialize};
use taxitrace_cleaning::{
    clean_session, session_anomaly, AnomalyKind, CleanedSession, CleaningTotals, TripSegment,
};
use taxitrace_exec::{ExecMeter, FailurePolicy, TaskError, TaskPolicy};
use taxitrace_matching::{incremental, CandidateIndex, MatchConfig, MatchScratch};
use taxitrace_obs::{MetricsSnapshot, Registry};
use taxitrace_od::{FunnelRow, OdAnalyzer, Transition};
use taxitrace_roadnet::synth::SyntheticCity;
use taxitrace_store::TripStore;
use taxitrace_traces::RawTrip;
use taxitrace_weather::WeatherModel;

use crate::config::StudyConfig;
use crate::error::Error;
use crate::quarantine::{check_budget, Quarantine, QuarantineEntry, QuarantineReason};
use crate::transitions::TransitionRecord;

/// Wall-clock seconds of each pipeline stage, as a view over the study's
/// recorded spans (see [`StageTimings::from_metrics`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Fleet simulation plus persisting sessions into the store.
    pub simulate_s: f64,
    /// Session cleaning (order repair, segmentation, filters).
    pub clean_s: f64,
    /// O-D funnel and corridor-transition extraction.
    pub od_s: f64,
    /// Map-matching and attribute fusion of post-filtered transitions.
    pub match_fuse_s: f64,
}

impl StageTimings {
    /// Reads the four stage walls out of a metrics snapshot's spans.
    pub fn from_metrics(snapshot: &MetricsSnapshot) -> Self {
        Self {
            simulate_s: snapshot.span_wall_s("study/simulate"),
            clean_s: snapshot.span_wall_s("study/clean"),
            od_s: snapshot.span_wall_s("study/od"),
            match_fuse_s: snapshot.span_wall_s("study/match_fuse"),
        }
    }
}

/// The observability context threaded through the stages: one registry for
/// the whole run plus the executor's meter registered on it.
#[derive(Debug)]
pub(crate) struct Obs {
    pub(crate) registry: Registry,
    pub(crate) meter: ExecMeter,
}

impl Obs {
    pub(crate) fn new() -> Self {
        let registry = Registry::new();
        let meter = ExecMeter::new(&registry);
        Self { registry, meter }
    }
}

/// The weather model is a pure function of the study seed; regenerated on
/// resume rather than checkpointed. Public so the streaming ingest can
/// rebuild the identical model for its per-closed-trip fuse.
pub fn weather_for(config: &StudyConfig) -> WeatherModel {
    WeatherModel::new(config.seed ^ 0x57EA_7E7A)
}

/// Applies the chaos plan's trace-level faults to the simulated sessions
/// (no-op without a plan). Deterministic: each session's faults are a pure
/// function of the plan seed and the trip id.
fn apply_chaos_trace_faults(
    config: &StudyConfig,
    sessions: &mut [RawTrip],
    registry: &Registry,
) {
    let Some(plan) = config.chaos.as_ref().filter(|p| p.has_trace_faults()) else {
        return;
    };
    let mut faulted = 0u64;
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    for session in sessions.iter_mut() {
        if let Some(fault) = plan.apply_session(session.id.0, &mut session.points) {
            faulted += 1;
            *by_kind.entry(fault.label()).or_insert(0) += 1;
            // Resync the device trip summary with the mutated points.
            if let Some(last_ts) = session.points.iter().map(|p| p.timestamp).max() {
                session.end_time = last_ts;
                session.total_time = last_ts - session.start_time;
            }
        }
    }
    registry.counter("chaos.sessions_faulted").add(faulted);
    for (label, n) in by_kind {
        registry.counter(&format!("chaos.faults.{label}")).add(n);
    }
}

/// The stage fault policy resolved from the config (chaos overrides win):
/// `(error_budget, max_task_attempts)`. Public so the streaming ingest
/// enforces the same budget and reproduces the batch retry accounting.
pub fn resolved_fault_policy(config: &StudyConfig) -> (f64, u32) {
    let chaos = config.chaos.as_ref();
    let budget = chaos
        .and_then(|p| p.error_budget)
        .unwrap_or(config.fault.error_budget);
    let attempts = chaos
        .and_then(|p| p.max_task_attempts)
        .unwrap_or(config.fault.max_task_attempts);
    (budget, attempts)
}

/// A configured study, ready to run (whole or stage by stage).
#[derive(Debug, Clone)]
pub struct Study {
    pub(crate) config: StudyConfig,
}

/// Stage 1 output: the simulated world, persisted into the trip store.
#[derive(Debug)]
pub struct Simulated {
    pub config: StudyConfig,
    pub city: SyntheticCity,
    pub weather: WeatherModel,
    pub store: TripStore,
    /// Dead-letter ledger seeded by this stage. Empty for a live
    /// simulation; [`Study::simulate_from_store`] fills it with one entry
    /// per on-disk record lost to corruption.
    pub quarantine: Quarantine,
    /// Registry snapshot taken at the end of this stage.
    pub metrics: MetricsSnapshot,
    pub(crate) obs: Obs,
}

/// Stage 2 output: cleaned trip segments plus cleaning totals.
#[derive(Debug)]
pub struct Cleaned {
    pub config: StudyConfig,
    pub city: SyntheticCity,
    pub weather: WeatherModel,
    pub store: TripStore,
    /// All cleaned trip segments (Table 3's population).
    pub segments: Vec<TripSegment>,
    pub cleaning: CleaningTotals,
    /// Dead-letter ledger of records rejected so far.
    pub quarantine: Quarantine,
    /// Registry snapshot taken at the end of this stage.
    pub metrics: MetricsSnapshot,
    pub(crate) obs: Obs,
}

/// Stage 3 output: the Table 3 funnel and the corridor transitions.
#[derive(Debug)]
pub struct OdSelected {
    pub config: StudyConfig,
    pub city: SyntheticCity,
    pub weather: WeatherModel,
    pub store: TripStore,
    pub segments: Vec<TripSegment>,
    pub cleaning: CleaningTotals,
    /// Table 3 funnel rows, one per taxi.
    pub funnel_rows: Vec<FunnelRow>,
    /// All extracted transitions (pre- and post-filtered alike).
    pub raw_transitions: Vec<Transition>,
    /// Dead-letter ledger of records rejected so far.
    pub quarantine: Quarantine,
    /// Registry snapshot taken at the end of this stage.
    pub metrics: MetricsSnapshot,
    pub(crate) obs: Obs,
}

/// Everything a study produces; the inputs of every table/figure analysis.
#[derive(Debug)]
pub struct StudyOutput {
    pub config: StudyConfig,
    pub city: SyntheticCity,
    pub weather: WeatherModel,
    pub store: TripStore,
    /// All cleaned trip segments (Table 3's population).
    pub segments: Vec<TripSegment>,
    /// Table 3 funnel rows, one per taxi.
    pub funnel_rows: Vec<FunnelRow>,
    /// Post-filtered, map-matched, attribute-fused transitions.
    pub transitions: Vec<TransitionRecord>,
    pub cleaning: CleaningTotals,
    /// Dead-letter ledger of every record the run quarantined (empty for
    /// a healthy run; inspect it to understand degraded ones).
    pub quarantine: Quarantine,
    /// Per-stage wall-clock of this run (a view over `metrics` spans).
    pub timings: StageTimings,
    /// Gap-fill path-cache `(hits, misses)` summed over matcher workers.
    pub cache_stats: (u64, u64),
    /// Full metrics of the run: counters, gauges, histograms and spans
    /// from every stage, the executor and the matcher caches.
    pub metrics: MetricsSnapshot,
}

impl Study {
    /// Creates a study from a configuration.
    pub fn new(config: StudyConfig) -> Self {
        Self { config }
    }

    /// Stage 1: validate the config, generate the city and weather,
    /// simulate the fleet and persist every session into the store.
    pub fn simulate(&self) -> Result<Simulated, Error> {
        let config = self.config.clone();
        config.validate()?;
        let obs = Obs::new();

        let mut span = obs.registry.span("study/simulate");
        let city = {
            let _s = obs.registry.span("study/simulate/city");
            taxitrace_roadnet::synth::generate(&config.city)
        };
        let weather = weather_for(&config);
        let fleet = {
            let _s = obs.registry.span("study/simulate/fleet");
            taxitrace_traces::simulate_fleet(&city, &weather, &config.fleet)
        };
        obs.registry.counter("exec.shard_units").add(fleet.shard_count as u64);
        let mut sessions = fleet.sessions;
        apply_chaos_trace_faults(&config, &mut sessions, &obs.registry);
        obs.registry.counter("sim.sessions").add(sessions.len() as u64);
        let raw_points: usize = sessions.iter().map(|s| s.points.len()).sum();
        obs.registry.counter("sim.raw_points").add(raw_points as u64);

        let mut store = TripStore::new();
        {
            let _s = obs.registry.span("study/simulate/persist");
            store.insert_all(sessions)?;
        }
        span.set_items(store.sessions().len() as u64);
        span.finish();

        let metrics = obs.registry.snapshot();
        Ok(Simulated {
            config,
            city,
            weather,
            store,
            quarantine: Quarantine::default(),
            metrics,
            obs,
        })
    }

    /// Stage 1, replay variant: load the fleet's sessions from a trip
    /// store file instead of simulating them.
    ///
    /// The file is read through the salvage path: every verifiable record
    /// survives, while damaged ones (CRC failures, a torn tail, a header
    /// that disagrees with the body, duplicated records) are quarantined
    /// at the `store` stage with typed reasons and counted against
    /// [`crate::FaultConfig::store_error_budget`]. A store written under a
    /// different config fingerprint is refused outright — replaying it
    /// would silently produce results the config cannot explain.
    pub fn simulate_from_store(&self, path: &Path) -> Result<Simulated, Error> {
        let config = self.config.clone();
        config.validate()?;
        let obs = Obs::new();

        let mut span = obs.registry.span("study/simulate");
        let city = {
            let _s = obs.registry.span("study/simulate/city");
            taxitrace_roadnet::synth::generate(&config.city)
        };
        let weather = weather_for(&config);
        let loaded = {
            let _s = obs.registry.span("study/simulate/load_store");
            taxitrace_store::codec::load(path, &taxitrace_store::LoadOptions::salvage())?
        };
        if loaded.indexed {
            obs.registry.counter("store.indexed_reads").add(1);
        }
        let report = loaded.report;
        let expected = crate::checkpoint::config_fingerprint(&config);
        if report.fingerprint != 0 && report.fingerprint != expected {
            return Err(Error::Store(taxitrace_store::StoreError::BadFormat(format!(
                "store {} was written under config fingerprint {:#018x}, expected {:#018x}",
                path.display(),
                report.fingerprint,
                expected
            ))));
        }

        let mut quarantine = Quarantine::default();
        for damage in &report.damage {
            quarantine.push(QuarantineEntry {
                stage: "store".into(),
                record: damage.index,
                reason: damage.kind.into(),
                detail: damage.detail.clone(),
            });
        }

        let mut store = TripStore::new();
        {
            let _s = obs.registry.span("study/simulate/persist");
            let mut seen = std::collections::BTreeSet::new();
            for session in loaded.sessions {
                if !seen.insert(session.id.0) {
                    // A duplicated on-disk frame decodes fine but would
                    // poison the store; quarantine the extra occurrence.
                    quarantine.push(QuarantineEntry {
                        stage: "store".into(),
                        record: session.id.0,
                        reason: QuarantineReason::CorruptRecord,
                        detail: format!(
                            "duplicate on-disk record for trip {}",
                            session.id.0
                        ),
                    });
                    continue;
                }
                store.insert(session)?;
            }
        }

        let total = report.records_valid as usize + report.damage.len();
        obs.registry.counter("store.records_total").add(total as u64);
        obs.registry
            .counter("store.records_valid")
            .add(store.sessions().len() as u64);
        if !quarantine.is_empty() {
            obs.registry
                .counter("store.corrupt_records")
                .add(quarantine.len() as u64);
            let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
            for entry in quarantine.entries() {
                *by_kind.entry(entry.reason.label()).or_insert(0) += 1;
            }
            for (label, n) in by_kind {
                obs.registry.counter(&format!("store.damaged.{label}")).add(n);
            }
        }
        obs.registry.counter("sim.sessions").add(store.sessions().len() as u64);
        let raw_points: usize =
            store.sessions().iter().map(|s| s.points.len()).sum();
        obs.registry.counter("sim.raw_points").add(raw_points as u64);

        quarantine.record_stage_metrics(&obs.registry, "store", total);
        let store_budget = config
            .chaos
            .as_ref()
            .and_then(|p| p.error_budget)
            .unwrap_or(config.fault.store_error_budget);
        check_budget("store", quarantine.len(), total, store_budget)?;
        span.set_items(store.sessions().len() as u64);
        span.finish();

        let metrics = obs.registry.snapshot();
        Ok(Simulated { config, city, weather, store, quarantine, metrics, obs })
    }

    /// Stage 1, untrusted-input variant: ingest the fleet's sessions from
    /// an external trace file (and optionally the city from an external
    /// map file) instead of simulating them.
    ///
    /// The files cross the pipeline's trust boundary: they may contain
    /// arbitrary bytes. Parsing is record-framed and panic-free — every
    /// malformed line, out-of-domain field, duplicate trip claim, or
    /// dangling map reference is quarantined at the `ingest` stage with a
    /// typed reason and counted against
    /// [`crate::FaultConfig::ingest_error_budget`], so a damaged file
    /// degrades record-by-record exactly like a damaged store file in the
    /// salvage path. Only file-level failures (unreadable header, a map
    /// with no usable ways) are fatal, as [`Error::Ingest`].
    ///
    /// Without `map_path`, the synthetic city of the config is used — so
    /// an export → ingest round trip of the traces alone reproduces the
    /// batch study byte-for-byte.
    pub fn simulate_from_external(
        &self,
        trace_path: &Path,
        map_path: Option<&Path>,
    ) -> Result<Simulated, Error> {
        let config = self.config.clone();
        config.validate()?;
        let obs = Obs::new();

        let read = |path: &Path| -> Result<Vec<u8>, Error> {
            std::fs::read(path).map_err(|source| {
                Error::Ingest(taxitrace_ingest::IngestError::Io {
                    path: path.display().to_string(),
                    source,
                })
            })
        };

        let mut span = obs.registry.span("study/simulate");
        let mut quarantine = Quarantine::default();
        let mut total = 0usize;

        let city = match map_path {
            None => {
                let _s = obs.registry.span("study/simulate/city");
                taxitrace_roadnet::synth::generate(&config.city)
            }
            Some(path) => {
                let _s = obs.registry.span("study/simulate/ingest_map");
                let bytes = read(path)?;
                let parsed = taxitrace_ingest::parse_osmx(&bytes)?;
                obs.registry
                    .counter("ingest.map.records_total")
                    .add(parsed.records_total as u64);
                total += parsed.records_total;
                for issue in parsed.issues {
                    quarantine.push(QuarantineEntry {
                        stage: "ingest".into(),
                        record: issue.record,
                        reason: issue.reason.into(),
                        detail: format!("{}: {}", path.display(), issue.detail),
                    });
                }
                parsed.city
            }
        };
        let weather = weather_for(&config);

        let traces = {
            let _s = obs.registry.span("study/simulate/ingest_traces");
            let bytes = read(trace_path)?;
            taxitrace_ingest::parse_trace_csv(&bytes)
        };
        total += traces.records_total;
        for issue in traces.issues {
            quarantine.push(QuarantineEntry {
                stage: "ingest".into(),
                record: issue.record,
                reason: issue.reason.into(),
                detail: format!("{}: {}", trace_path.display(), issue.detail),
            });
        }

        let mut store = TripStore::new();
        {
            let _s = obs.registry.span("study/simulate/persist");
            store.insert_all(traces.sessions)?;
        }

        obs.registry.counter("ingest.records_total").add(total as u64);
        obs.registry
            .counter("ingest.records_valid")
            .add((total - quarantine.len()) as u64);
        obs.registry
            .counter("ingest.quarantined_total")
            .add(quarantine.len() as u64);
        if !quarantine.is_empty() {
            let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
            for entry in quarantine.entries() {
                *by_kind.entry(entry.reason.label()).or_insert(0) += 1;
            }
            for (label, n) in by_kind {
                obs.registry.counter(&format!("ingest.damaged.{label}")).add(n);
            }
        }
        obs.registry.counter("ingest.sessions").add(store.sessions().len() as u64);
        obs.registry.counter("sim.sessions").add(store.sessions().len() as u64);
        let raw_points: usize =
            store.sessions().iter().map(|s| s.points.len()).sum();
        obs.registry.counter("sim.raw_points").add(raw_points as u64);

        quarantine.record_stage_metrics(&obs.registry, "ingest", total);
        let ingest_budget = config
            .chaos
            .as_ref()
            .and_then(|p| p.error_budget)
            .unwrap_or(config.fault.ingest_error_budget);
        check_budget("ingest", quarantine.len(), total, ingest_budget)?;
        span.set_items(store.sessions().len() as u64);
        span.finish();

        let metrics = obs.registry.snapshot();
        Ok(Simulated { config, city, weather, store, quarantine, metrics, obs })
    }

    /// Runs the full pipeline: simulate → store → clean → O-D select →
    /// match → fuse. Equivalent to chaining the four stages; kept as the
    /// one-call entry point.
    pub fn run(&self) -> Result<StudyOutput, Error> {
        self.simulate()?.clean()?.analyze_od()?.match_fuse()
    }

    /// Runs the full pipeline over sessions ingested from external files
    /// (see [`Study::simulate_from_external`] for the trust-boundary and
    /// quarantine semantics).
    pub fn run_from_external(
        &self,
        trace_path: &Path,
        map_path: Option<&Path>,
    ) -> Result<StudyOutput, Error> {
        self.simulate_from_external(trace_path, map_path)?
            .clean()?
            .analyze_od()?
            .match_fuse()
    }

    /// Runs the full pipeline over sessions replayed from a store file
    /// (see [`Study::simulate_from_store`] for the salvage semantics).
    pub fn run_from_store(&self, path: &Path) -> Result<StudyOutput, Error> {
        self.simulate_from_store(path)?.clean()?.analyze_od()?.match_fuse()
    }
}

impl Simulated {
    /// Persists this stage's sessions as a v3 store file (atomic write,
    /// per-record CRCs, offset index), tagged with the config fingerprint so
    /// [`Study::simulate_from_store`] can refuse a mismatched replay.
    pub fn save_store(&self, path: &Path) -> Result<(), Error> {
        let fingerprint = crate::checkpoint::config_fingerprint(&self.config);
        taxitrace_store::codec::save_sessions_tagged(
            path,
            self.store.sessions(),
            fingerprint,
        )?;
        Ok(())
    }

    /// The run's metrics registry. The streaming ingest emits its
    /// `stream.*` counters and gauges here so they land in the same
    /// snapshot (and JSON schema) as the stage metrics.
    pub fn registry(&self) -> &Registry {
        &self.obs.registry
    }

    /// Streaming support: assembles the stage-2 output from per-session
    /// cleaning results produced out of band (the watermark-closed trips
    /// of `taxitrace-stream`), running the same metric emission and
    /// budget accounting as [`Simulated::clean`]. `stage_quarantine` is
    /// appended to the carried ledger in the order given; only its
    /// `clean`-stage entries count against the clean error budget (the
    /// stream stage enforces its own budget before calling).
    pub fn assemble_cleaned(
        self,
        segments: Vec<TripSegment>,
        cleaning: CleaningTotals,
        stage_quarantine: Vec<QuarantineEntry>,
    ) -> Result<Cleaned, Error> {
        let Simulated { config, city, weather, store, mut quarantine, obs, .. } = self;

        let mut span = obs.registry.span("study/clean");
        let (error_budget, _) = resolved_fault_policy(&config);
        let total = store.sessions().len();
        let clean_added =
            stage_quarantine.iter().filter(|e| e.stage == "clean").count();
        for entry in stage_quarantine {
            quarantine.push(entry);
        }
        cleaning.record_metrics(&obs.registry);
        quarantine.record_stage_metrics(&obs.registry, "clean", total);
        check_budget("clean", clean_added, total, error_budget)?;
        span.set_items(segments.len() as u64);
        span.finish();

        let metrics = obs.registry.snapshot();
        Ok(Cleaned {
            config,
            city,
            weather,
            store,
            segments,
            cleaning,
            quarantine,
            metrics,
            obs,
        })
    }

    /// Stage 2: clean every session (parallel per session; deterministic
    /// because results are folded in input order).
    ///
    /// Every session runs as an isolated, fallible task: a panicking task
    /// or a session whose cleaned output violates the post-cleaning
    /// invariants ([`session_anomaly`]) lands in the [`Quarantine`] ledger
    /// instead of aborting the run — up to the configured error budget.
    /// The ledger carried in from stage 1 (store salvage damage) is kept;
    /// this stage's budget is judged only on its own additions.
    pub fn clean(self) -> Result<Cleaned, Error> {
        let Simulated { config, city, weather, store, mut quarantine, obs, .. } = self;

        let mut span = obs.registry.span("study/clean");
        let (error_budget, max_attempts) = resolved_fault_policy(&config);
        let panic_one_in =
            config.chaos.as_ref().map(|p| p.task_panic_one_in).unwrap_or(0);
        let policy = TaskPolicy {
            failure: FailurePolicy::Collect { max_failures: usize::MAX },
            max_attempts,
        };
        let cleaning_config = &config.cleaning;
        let anomaly_config = &config.fault.anomaly;
        let task = |_: &mut (), session: &RawTrip| -> Result<CleanedSession, (AnomalyKind, String)> {
            if panic_one_in > 0 && session.id.0.is_multiple_of(panic_one_in) {
                // lint:allow(panic-free-library): chaos-injected fault, isolated by the executor
                panic!("chaos: injected clean-task panic (trip {})", session.id.0);
            }
            let cleaned = clean_session(session, cleaning_config);
            match session_anomaly(&cleaned, anomaly_config) {
                Some((kind, detail)) => Err((kind, detail)),
                None => Ok(cleaned),
            }
        };
        // `Collect { usize::MAX }` never rejects the batch, so the error
        // arm is structurally unreachable; budget enforcement happens
        // below, against the quarantined fraction.
        let slots = match taxitrace_exec::try_par_map_init_metered(
            store.sessions(),
            || (),
            task,
            policy,
            &obs.meter,
        ) {
            Ok((slots, _)) => slots,
            Err(batch) => {
                return Err(Error::Pipeline(format!(
                    "clean batch rejected: {} failures, first at index {}",
                    batch.failures, batch.index
                )))
            }
        };

        let total = slots.len();
        let before = quarantine.len();
        let mut cleaning = CleaningTotals::default();
        let mut segments: Vec<TripSegment> = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Ok(cleaned) => {
                    cleaning.absorb(&cleaned.stats);
                    segments.extend(cleaned.segments);
                }
                Err(error) => {
                    let record = store.sessions()[i].id.0;
                    let (reason, detail) = match error {
                        TaskError::Panicked { message } => {
                            (QuarantineReason::TaskPanic, message)
                        }
                        TaskError::Failed { error: (kind, detail), attempts } => (
                            kind.into(),
                            if attempts > 1 {
                                format!("{detail} (after {attempts} attempts)")
                            } else {
                                detail
                            },
                        ),
                    };
                    quarantine.push(QuarantineEntry {
                        stage: "clean".into(),
                        record,
                        reason,
                        detail,
                    });
                }
            }
        }
        cleaning.record_metrics(&obs.registry);
        quarantine.record_stage_metrics(&obs.registry, "clean", total);
        check_budget("clean", quarantine.len() - before, total, error_budget)?;
        span.set_items(segments.len() as u64);
        span.finish();

        let metrics = obs.registry.snapshot();
        Ok(Cleaned {
            config,
            city,
            weather,
            store,
            segments,
            cleaning,
            quarantine,
            metrics,
            obs,
        })
    }
}

impl Cleaned {
    /// Stage 3: the O-D funnel (Table 3) and corridor-transition
    /// extraction over the cleaned segments.
    ///
    /// Transitions violating temporal/spatial sanity (non-positive span
    /// duration, non-finite coordinates) are quarantined instead of being
    /// handed to the matcher, up to the error budget.
    pub fn analyze_od(self) -> Result<OdSelected, Error> {
        let Cleaned {
            config,
            city,
            weather,
            store,
            segments,
            cleaning,
            mut quarantine,
            obs,
            ..
        } = self;

        let mut span = obs.registry.span("study/od");
        let (error_budget, _) = resolved_fault_policy(&config);
        let analyzer = OdAnalyzer::from_city(&city);
        let funnel_rows = {
            let _s = obs.registry.span("study/od/funnel");
            analyzer.funnel(&segments)
        };
        let extracted = {
            let _s = obs.registry.span("study/od/transitions");
            analyzer.transitions(&segments)
        };
        let total = extracted.len();
        let before = quarantine.len();
        let mut raw_transitions = Vec::with_capacity(total);
        for t in extracted {
            match transition_anomaly(&segments[t.segment_index], &t) {
                None => raw_transitions.push(t),
                Some((reason, detail)) => quarantine.push(QuarantineEntry {
                    stage: "od".into(),
                    record: segments[t.segment_index].trip_id.0,
                    reason,
                    detail,
                }),
            }
        }
        taxitrace_od::record_funnel_metrics(&funnel_rows, &obs.registry);
        quarantine.record_stage_metrics(&obs.registry, "od", total);
        check_budget("od", quarantine.len() - before, total, error_budget)?;
        span.set_items(raw_transitions.len() as u64);
        span.finish();

        let metrics = obs.registry.snapshot();
        Ok(OdSelected {
            config,
            city,
            weather,
            store,
            segments,
            cleaning,
            funnel_rows,
            raw_transitions,
            quarantine,
            metrics,
            obs,
        })
    }
}

/// O-D-stage record invariants: a transition slice must span positive time
/// on finite coordinates. Impossible for healthy cleaned data (timestamps
/// are clamped non-decreasing over spans of many points); reachable only
/// for trace damage that slipped below the per-session anomaly thresholds.
/// `seg` is the transition's parent segment (the streaming path checks
/// against trip-local segments, the batch path against the global list).
pub fn transition_anomaly(
    seg: &TripSegment,
    t: &Transition,
) -> Option<(QuarantineReason, String)> {
    let dest = (t.destination_point + 1).min(seg.points.len() - 1);
    let span = &seg.points[t.origin_point..=dest];
    for p in span {
        if !p.pos.x.is_finite() || !p.pos.y.is_finite() {
            return Some((
                QuarantineReason::PositionJump,
                format!("non-finite coordinate at point {}", p.point_id),
            ));
        }
    }
    let duration = span[span.len() - 1].timestamp - span[0].timestamp;
    if duration.secs() <= 0 {
        return Some((
            QuarantineReason::ClockSkew,
            format!("transition spans {} s over {} points", duration.secs(), span.len()),
        ));
    }
    None
}

/// Matches and fuses one corridor transition over its parent segment.
/// Shared by the batch stage-4 fuse and the streaming per-closed-trip
/// path, so the two produce identical records by construction. The
/// boolean reports whether the gap-fill search blew its expansion budget
/// somewhere in this slice (the record is then quarantined as an
/// unmatched gap).
#[allow(clippy::too_many_arguments)] // the stage-4 working set, spelled out
pub fn fuse_transition(
    city: &SyntheticCity,
    weather: &WeatherModel,
    config: &StudyConfig,
    matching_config: &MatchConfig,
    index: &CandidateIndex,
    scratch: &mut MatchScratch,
    seg: &TripSegment,
    t: &Transition,
) -> (TransitionRecord, bool) {
    let budget_exhausted_before = scratch.gaps_budget_exhausted;
    // Work on the transition slice (origin..=destination). The crossing
    // indices mark the points *before* the corridor-entry steps, so
    // include one more point at the destination side to cover the
    // arrival.
    let dest = (t.destination_point + 1).min(seg.points.len() - 1);
    let slice = TripSegment {
        trip_id: seg.trip_id,
        taxi: seg.taxi,
        start_time: seg.points[t.origin_point].timestamp,
        points: seg.points[t.origin_point..=dest].to_vec(),
    };
    let matched = incremental::match_trace_with(
        scratch,
        &city.graph,
        index,
        &slice.points,
        matching_config,
    );
    let temp_class = weather.at(slice.start_time).class();
    let record = TransitionRecord::fuse(
        city,
        &slice,
        t.pair_label(),
        0,
        slice.points.len() - 1,
        &matched,
        temp_class,
        config.low_speed_kmh,
        config.normal_speed_frac,
    );
    (record, scratch.gaps_budget_exhausted > budget_exhausted_before)
}

/// The matching configuration stage 4 actually runs with: the study's,
/// with the chaos plan's gap-fill budget override applied. Shared with
/// the streaming path so both fuse under identical budgets.
pub fn resolved_matching_config(config: &StudyConfig) -> MatchConfig {
    let mut matching_config = config.matching;
    if let Some(budget) =
        config.chaos.as_ref().and_then(|p| p.gap_fill_max_expansions)
    {
        matching_config.gap_fill_max_expansions = budget;
    }
    matching_config
}

impl OdSelected {
    /// Stage 4: map-match and fuse the post-filtered transitions
    /// ("Only cleared and filtered transitions going through the city
    /// centre are map-matched" — §IV-E).
    pub fn match_fuse(self) -> Result<StudyOutput, Error> {
        let OdSelected {
            config,
            city,
            weather,
            store,
            segments,
            cleaning,
            funnel_rows,
            raw_transitions,
            mut quarantine,
            obs,
            ..
        } = self;

        let mut span = obs.registry.span("study/match_fuse");
        let (error_budget, _) = resolved_fault_policy(&config);
        // The gap-fill search budget; a chaos plan can shrink it to force
        // the fallback path on a normal-sized run.
        let matching_config = resolved_matching_config(&config);
        let index = {
            let _s = obs.registry.span("study/match_fuse/index");
            CandidateIndex::new(&city.graph, &city.elements)
        };
        let post: Vec<&Transition> =
            raw_transitions.iter().filter(|t| t.post_filtered).collect();
        let fuse_one =
            |scratch: &mut MatchScratch, t: &Transition| -> (TransitionRecord, bool) {
                fuse_transition(
                    &city,
                    &weather,
                    &config,
                    &matching_config,
                    &index,
                    scratch,
                    &segments[t.segment_index],
                    t,
                )
            };
        // Match and fuse in parallel, preserving order; each worker keeps
        // one scratch (search arrays + gap-fill cache) across its share.
        let (fused, scratches): (Vec<(TransitionRecord, bool)>, Vec<MatchScratch>) = {
            let _s = obs.registry.span("study/match_fuse/match");
            taxitrace_exec::par_map_init_metered(
                &post,
                MatchScratch::new,
                |scratch, t| fuse_one(scratch, t),
                &obs.meter,
            )
        };
        let total = fused.len();
        let before = quarantine.len();
        let mut transitions = Vec::with_capacity(total);
        for ((record, budget_exhausted), t) in fused.into_iter().zip(&post) {
            if budget_exhausted {
                quarantine.push(QuarantineEntry {
                    stage: "match_fuse".into(),
                    record: segments[t.segment_index].trip_id.0,
                    reason: QuarantineReason::UnmatchedGap,
                    detail: format!(
                        "gap-fill budget ({} expansions) exhausted on pair {}",
                        matching_config.gap_fill_max_expansions,
                        t.pair_label()
                    ),
                });
            } else {
                transitions.push(record);
            }
        }
        let cache_stats = scratches.iter().fold((0, 0), |(h, m), s| {
            let (sh, sm) = s.cache_stats();
            (h + sh, m + sm)
        });
        taxitrace_matching::record_scratch_metrics(&scratches, &obs.registry);
        quarantine.record_stage_metrics(&obs.registry, "match_fuse", total);
        check_budget("match_fuse", quarantine.len() - before, total, error_budget)?;
        span.set_items(transitions.len() as u64);
        span.finish();

        let metrics = obs.registry.snapshot();
        let timings = StageTimings::from_metrics(&metrics);
        Ok(StudyOutput {
            config,
            city,
            weather,
            store,
            segments,
            funnel_rows,
            transitions,
            cleaning,
            quarantine,
            timings,
            cache_stats,
            metrics,
        })
    }
}

impl StudyOutput {
    /// Table 3 rows.
    pub fn funnel(&self) -> &[FunnelRow] {
        &self.funnel_rows
    }

    /// Transitions of one direction pair ("T-S" etc.).
    pub fn transitions_of_pair<'a>(
        &'a self,
        pair: &'a str,
    ) -> impl Iterator<Item = &'a TransitionRecord> + 'a {
        self.transitions.iter().filter(move |t| t.pair == pair)
    }

    /// The studied pair labels present in the output, sorted.
    pub fn pairs(&self) -> Vec<String> {
        let unique: std::collections::BTreeSet<&str> =
            self.transitions.iter().map(|t| t.pair.as_str()).collect();
        unique.into_iter().map(str::to_owned).collect()
    }

    /// Total measured point speeds across all fused transitions (the
    /// paper reports 30 469 at full scale).
    pub fn total_transition_points(&self) -> usize {
        self.transitions.iter().map(|t| t.points.len()).sum()
    }
}

/// Shared test fixture: one moderately sized study reused by every test in
/// this crate (running the pipeline per test would dominate test time).
#[cfg(test)]
pub(crate) fn test_output() -> &'static StudyOutput {
    use std::sync::OnceLock;
    static OUT: OnceLock<StudyOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        Study::new(StudyConfig::scaled(7, 0.15)).run().expect("study pipeline")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StudyConfig;

    fn output() -> &'static StudyOutput {
        super::test_output()
    }

    #[test]
    fn pipeline_produces_transitions() {
        let out = output();
        assert!(out.cleaning.sessions > 50, "sessions {}", out.cleaning.sessions);
        assert!(!out.segments.is_empty());
        assert!(!out.funnel_rows.is_empty());
        assert!(
            !out.transitions.is_empty(),
            "no transitions survived the funnel (segments: {})",
            out.segments.len()
        );
        assert!(out.total_transition_points() > 100);
    }

    #[test]
    fn funnel_rows_monotonic() {
        let out = output();
        for row in out.funnel() {
            assert!(row.filtered_cleaned <= row.segments_total);
            assert!(row.within_center <= row.transitions_total);
            assert!(row.post_filtered <= row.within_center);
        }
        // Post-filtered totals match the fused transition count.
        let funnel_total: usize = out.funnel().iter().map(|r| r.post_filtered).sum();
        assert_eq!(funnel_total, out.transitions.len());
    }

    #[test]
    fn transitions_have_fused_attributes() {
        let out = output();
        for t in &out.transitions {
            assert!(t.points.len() >= 2);
            assert!(!t.elements.is_empty(), "matched element path");
            assert!(t.dist_km > 0.5 && t.dist_km < 10.0, "distance {}", t.dist_km);
            assert!(t.time_h > 0.01 && t.time_h < 1.0, "time {}", t.time_h);
            assert!((0.0..=100.0).contains(&t.low_speed_pct));
            assert!((0.0..=100.0).contains(&t.normal_speed_pct));
            assert!(t.fuel_ml >= 0.0);
            assert!(t.junctions >= 1, "junctions {}", t.junctions);
        }
        // At least some transitions pass traffic lights.
        let with_lights = out.transitions.iter().filter(|t| t.traffic_lights > 0).count();
        assert!(with_lights * 2 > out.transitions.len());
    }

    #[test]
    fn only_studied_pairs_present() {
        let out = output();
        for p in out.pairs() {
            assert!(
                ["T-S", "S-T", "T-L", "L-T"].contains(&p.as_str()),
                "unexpected pair {p}"
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Study::new(StudyConfig::quick(7)).run().expect("study");
        let b = Study::new(StudyConfig::quick(7)).run().expect("study");
        assert_eq!(a.transitions.len(), b.transitions.len());
        assert_eq!(a.total_transition_points(), b.total_transition_points());
        let c = Study::new(StudyConfig::quick(8)).run().expect("study");
        assert_ne!(
            (a.transitions.len(), a.total_transition_points()),
            (c.transitions.len(), c.total_transition_points())
        );
    }

    #[test]
    fn invalid_config_fails_fast() {
        let mut cfg = StudyConfig::quick(7);
        cfg.fleet.legs_per_taxi.clear();
        match Study::new(cfg).simulate() {
            Err(err) => assert!(matches!(err, Error::Config(_)), "got {err}"),
            Ok(_) => panic!("zero taxis must fail"),
        }
    }

    #[test]
    fn stage_metrics_cover_the_pipeline() {
        let out = output();
        let m = &out.metrics;
        // One counter per stage family, plus executor and cache stats.
        assert!(m.counter("sim.sessions").is_some_and(|v| v > 0));
        assert!(m.counter("clean.sessions").is_some_and(|v| v > 0));
        assert!(m.counter("od.transitions_total").is_some_and(|v| v > 0));
        assert!(m.counter("match.traces").is_some_and(|v| v > 0));
        assert!(m.counter("exec.tasks").is_some_and(|v| v > 0));
        let hits = m.counter("match.cache_hits").unwrap_or(0);
        let misses = m.counter("match.cache_misses").unwrap_or(0);
        assert_eq!((hits, misses), out.cache_stats);
        // Spans exist for all four stages and nest under them.
        for path in ["study/simulate", "study/clean", "study/od", "study/match_fuse"] {
            assert!(m.span(path).is_some(), "missing span {path}");
        }
        assert!(m.span("study/match_fuse/match").is_some());
        // Timings are exactly the span walls.
        assert_eq!(out.timings, StageTimings::from_metrics(m));
        // Counters agree with the carried outputs.
        assert_eq!(m.counter("clean.sessions"), Some(out.cleaning.sessions as u64));
        assert_eq!(
            m.counter("match.traces"),
            Some(out.transitions.len() as u64)
        );
    }

    /// The staged API is `run()` expressed stepwise: running the stages by
    /// hand must reproduce `run()`'s output exactly.
    #[test]
    fn staged_api_equals_run() {
        let study = Study::new(StudyConfig::quick(11));
        let whole = study.run().expect("run");
        let staged = study
            .simulate()
            .expect("simulate")
            .clean()
            .expect("clean")
            .analyze_od()
            .expect("analyze_od")
            .match_fuse()
            .expect("match_fuse");
        assert_eq!(staged.segments.len(), whole.segments.len());
        assert_eq!(staged.funnel_rows, whole.funnel_rows);
        assert_eq!(staged.transitions.len(), whole.transitions.len());
        assert_eq!(
            staged.total_transition_points(),
            whole.total_transition_points()
        );
        assert_eq!(staged.cleaning, whole.cleaning);
        assert_eq!(staged.cache_stats, whole.cache_stats);
        // Deterministic metric counters agree too (walls differ, counts not).
        for name in [
            "sim.sessions",
            "clean.segments_kept",
            "od.post_filtered",
            "match.traces",
            "match.astar_expanded",
        ] {
            assert_eq!(
                staged.metrics.counter(name),
                whole.metrics.counter(name),
                "counter {name} diverged between staged and run()"
            );
        }
    }

    /// Intermediate stage outputs carry snapshots of their own stage.
    #[test]
    fn intermediate_snapshots_grow_monotonically() {
        let study = Study::new(StudyConfig::quick(13));
        let sim = study.simulate().expect("simulate");
        assert!(sim.metrics.counter("sim.sessions").is_some_and(|v| v > 0));
        assert!(sim.metrics.counter("clean.sessions").is_none());
        let cleaned = sim.clean().expect("clean");
        assert!(cleaned.metrics.counter("clean.sessions").is_some_and(|v| v > 0));
        assert!(cleaned.metrics.counter("od.taxis").is_none());
        let od = cleaned.analyze_od().expect("analyze_od");
        assert!(od.metrics.counter("od.taxis").is_some_and(|v| v > 0));
        assert!(od.metrics.counter("match.traces").is_none());
        assert!(!od.raw_transitions.is_empty());
    }
}
