use std::time::Instant;

use serde::{Deserialize, Serialize};
use taxitrace_cleaning::{clean_session, CleaningStats, TripSegment};
use taxitrace_matching::{incremental, CandidateIndex, MatchScratch};
use taxitrace_od::{FunnelRow, OdAnalyzer};
use taxitrace_roadnet::synth::SyntheticCity;
use taxitrace_store::TripStore;
use taxitrace_weather::WeatherModel;

use crate::config::StudyConfig;
use crate::transitions::TransitionRecord;

/// Aggregated cleaning statistics across all sessions.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CleaningTotals {
    pub sessions: usize,
    pub raw_points: usize,
    pub sessions_order_repaired: usize,
    pub rule_fires: [usize; 5],
    pub segments_kept: usize,
    pub segments_too_few_points: usize,
    pub segments_too_long: usize,
}

impl CleaningTotals {
    fn absorb(&mut self, stats: &CleaningStats) {
        self.sessions += 1;
        self.raw_points += stats.raw_points;
        if stats.order_repaired {
            self.sessions_order_repaired += 1;
        }
        for (a, b) in self.rule_fires.iter_mut().zip(stats.segmentation.rule_fires) {
            *a += b;
        }
        self.segments_kept += stats.filters.kept;
        self.segments_too_few_points += stats.filters.too_few_points;
        self.segments_too_long += stats.filters.too_long;
    }
}

/// Wall-clock seconds of each pipeline stage of [`Study::run`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Fleet simulation plus persisting sessions into the store.
    pub simulate_s: f64,
    /// Session cleaning (order repair, segmentation, filters).
    pub clean_s: f64,
    /// O-D funnel and corridor-transition extraction.
    pub od_s: f64,
    /// Map-matching and attribute fusion of post-filtered transitions.
    pub match_fuse_s: f64,
}

/// A configured study, ready to run.
#[derive(Debug, Clone)]
pub struct Study {
    config: StudyConfig,
}

/// Everything a study produces; the inputs of every table/figure analysis.
pub struct StudyOutput {
    pub config: StudyConfig,
    pub city: SyntheticCity,
    pub weather: WeatherModel,
    pub store: TripStore,
    /// All cleaned trip segments (Table 3's population).
    pub segments: Vec<TripSegment>,
    /// Table 3 funnel rows, one per taxi.
    pub funnel_rows: Vec<FunnelRow>,
    /// Post-filtered, map-matched, attribute-fused transitions.
    pub transitions: Vec<TransitionRecord>,
    pub cleaning: CleaningTotals,
    /// Per-stage wall-clock of this run.
    pub timings: StageTimings,
    /// Gap-fill path-cache `(hits, misses)` summed over matcher workers.
    pub cache_stats: (u64, u64),
}

impl Study {
    /// Creates a study from a configuration.
    pub fn new(config: StudyConfig) -> Self {
        Self { config }
    }

    /// Runs the full pipeline: simulate → store → clean → O-D select →
    /// match → fuse.
    pub fn run(&self) -> StudyOutput {
        let config = self.config.clone();
        let city = taxitrace_roadnet::synth::generate(&config.city);
        let weather = WeatherModel::new(config.seed ^ 0x57EA_7E7A);
        let mut timings = StageTimings::default();

        // Simulate and persist into the store.
        let stage = Instant::now();
        let fleet = taxitrace_traces::simulate_fleet(&city, &weather, &config.fleet);
        let mut store = TripStore::new();
        store
            .insert_all(fleet.sessions)
            .expect("simulator produces unique trip ids");
        timings.simulate_s = stage.elapsed().as_secs_f64();

        // Clean every session (parallel per session; deterministic
        // because results are folded in input order).
        let stage = Instant::now();
        let mut cleaning = CleaningTotals::default();
        let mut segments: Vec<TripSegment> = Vec::new();
        {
            let cleaning_config = &config.cleaning;
            let cleaned_sessions = taxitrace_exec::par_map(store.sessions(), |session| {
                clean_session(session, cleaning_config)
            });
            for cleaned in cleaned_sessions {
                cleaning.absorb(&cleaned.stats);
                segments.extend(cleaned.segments);
            }
        }
        timings.clean_s = stage.elapsed().as_secs_f64();

        // O-D funnel and transitions.
        let stage = Instant::now();
        let analyzer = OdAnalyzer::from_city(&city);
        let funnel_rows = analyzer.funnel(&segments);
        let raw_transitions = analyzer.transitions(&segments);
        timings.od_s = stage.elapsed().as_secs_f64();

        // Map-match and fuse the post-filtered transitions
        // ("Only cleared and filtered transitions going through the city
        // centre are map-matched" — §IV-E).
        let stage = Instant::now();
        let index = CandidateIndex::new(&city.graph, &city.elements);
        let post: Vec<&taxitrace_od::Transition> =
            raw_transitions.iter().filter(|t| t.post_filtered).collect();
        let fuse_one = |scratch: &mut MatchScratch,
                        t: &taxitrace_od::Transition|
         -> TransitionRecord {
            let seg = &segments[t.segment_index];
            // Work on the transition slice (origin..=destination). The
            // crossing indices mark the points *before* the corridor-entry
            // steps, so include one more point at the destination side to
            // cover the arrival.
            let dest = (t.destination_point + 1).min(seg.points.len() - 1);
            let slice = TripSegment {
                trip_id: seg.trip_id,
                taxi: seg.taxi,
                start_time: seg.points[t.origin_point].timestamp,
                points: seg.points[t.origin_point..=dest].to_vec(),
            };
            let matched = incremental::match_trace_with(
                scratch,
                &city.graph,
                &index,
                &slice.points,
                &config.matching,
            );
            let temp_class = weather.at(slice.start_time).class();
            TransitionRecord::fuse(
                &city,
                &slice,
                t.pair_label(),
                0,
                slice.points.len() - 1,
                &matched,
                temp_class,
                config.low_speed_kmh,
                config.normal_speed_frac,
            )
        };
        // Match and fuse in parallel, preserving order; each worker keeps
        // one scratch (search arrays + gap-fill cache) across its share.
        let (transitions, scratches): (Vec<TransitionRecord>, Vec<MatchScratch>) =
            taxitrace_exec::par_map_init(&post, MatchScratch::new, |scratch, t| {
                fuse_one(scratch, t)
            });
        timings.match_fuse_s = stage.elapsed().as_secs_f64();
        let cache_stats = scratches.iter().fold((0, 0), |(h, m), s| {
            let (sh, sm) = s.cache_stats();
            (h + sh, m + sm)
        });

        StudyOutput {
            config,
            city,
            weather,
            store,
            segments,
            funnel_rows,
            transitions,
            cleaning,
            timings,
            cache_stats,
        }
    }
}

impl StudyOutput {
    /// Table 3 rows.
    pub fn funnel(&self) -> &[FunnelRow] {
        &self.funnel_rows
    }

    /// Transitions of one direction pair ("T-S" etc.).
    pub fn transitions_of_pair<'a>(
        &'a self,
        pair: &'a str,
    ) -> impl Iterator<Item = &'a TransitionRecord> + 'a {
        self.transitions.iter().filter(move |t| t.pair == pair)
    }

    /// The studied pair labels present in the output, sorted.
    pub fn pairs(&self) -> Vec<String> {
        let unique: std::collections::BTreeSet<&str> =
            self.transitions.iter().map(|t| t.pair.as_str()).collect();
        unique.into_iter().map(str::to_owned).collect()
    }

    /// Total measured point speeds across all fused transitions (the
    /// paper reports 30 469 at full scale).
    pub fn total_transition_points(&self) -> usize {
        self.transitions.iter().map(|t| t.points.len()).sum()
    }
}

/// Shared test fixture: one moderately sized study reused by every test in
/// this crate (running the pipeline per test would dominate test time).
#[cfg(test)]
pub(crate) fn test_output() -> &'static StudyOutput {
    use std::sync::OnceLock;
    static OUT: OnceLock<StudyOutput> = OnceLock::new();
    OUT.get_or_init(|| Study::new(StudyConfig::scaled(7, 0.15)).run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StudyConfig;

    fn output() -> &'static StudyOutput {
        super::test_output()
    }

    #[test]
    fn pipeline_produces_transitions() {
        let out = output();
        assert!(out.cleaning.sessions > 50, "sessions {}", out.cleaning.sessions);
        assert!(!out.segments.is_empty());
        assert!(!out.funnel_rows.is_empty());
        assert!(
            !out.transitions.is_empty(),
            "no transitions survived the funnel (segments: {})",
            out.segments.len()
        );
        assert!(out.total_transition_points() > 100);
    }

    #[test]
    fn funnel_rows_monotonic() {
        let out = output();
        for row in out.funnel() {
            assert!(row.filtered_cleaned <= row.segments_total);
            assert!(row.within_center <= row.transitions_total);
            assert!(row.post_filtered <= row.within_center);
        }
        // Post-filtered totals match the fused transition count.
        let funnel_total: usize = out.funnel().iter().map(|r| r.post_filtered).sum();
        assert_eq!(funnel_total, out.transitions.len());
    }

    #[test]
    fn transitions_have_fused_attributes() {
        let out = output();
        for t in &out.transitions {
            assert!(t.points.len() >= 2);
            assert!(!t.elements.is_empty(), "matched element path");
            assert!(t.dist_km > 0.5 && t.dist_km < 10.0, "distance {}", t.dist_km);
            assert!(t.time_h > 0.01 && t.time_h < 1.0, "time {}", t.time_h);
            assert!((0.0..=100.0).contains(&t.low_speed_pct));
            assert!((0.0..=100.0).contains(&t.normal_speed_pct));
            assert!(t.fuel_ml >= 0.0);
            assert!(t.junctions >= 1, "junctions {}", t.junctions);
        }
        // At least some transitions pass traffic lights.
        let with_lights = out.transitions.iter().filter(|t| t.traffic_lights > 0).count();
        assert!(with_lights * 2 > out.transitions.len());
    }

    #[test]
    fn only_studied_pairs_present() {
        let out = output();
        for p in out.pairs() {
            assert!(
                ["T-S", "S-T", "T-L", "L-T"].contains(&p.as_str()),
                "unexpected pair {p}"
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Study::new(StudyConfig::quick(7)).run();
        let b = Study::new(StudyConfig::quick(7)).run();
        assert_eq!(a.transitions.len(), b.transitions.len());
        assert_eq!(a.total_transition_points(), b.total_transition_points());
        let c = Study::new(StudyConfig::quick(8)).run();
        assert_ne!(
            (a.transitions.len(), a.total_transition_points()),
            (c.transitions.len(), c.total_transition_points())
        );
    }
}
