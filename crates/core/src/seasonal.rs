use serde::{Deserialize, Serialize};
use taxitrace_geo::Point;
use taxitrace_timebase::Season;
use taxitrace_weather::TemperatureClass;

use crate::experiment::StudyOutput;

/// Point speeds of one direction pair (Fig. 4's categorisation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectionalSplit {
    pub pair: String,
    /// `(position, speed km/h)` scatter data.
    pub points: Vec<(Point, f64)>,
    pub mean_speed: f64,
}

/// Per-season mean delta against the annual mean (the Fig. 5 commentary:
/// winter −0.07, spring +0.46, summer +0.70, autumn +1.38 km/h in the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeasonalDelta {
    pub season: Season,
    pub n: usize,
    pub mean_speed: f64,
    pub delta_kmh: f64,
}

/// One bar of Fig. 10: mean low-speed share for a temperature class and a
/// traffic-light group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig10Cell {
    pub class: TemperatureClass,
    /// `true` = routes with ≥ threshold traffic lights (the grey bars).
    pub many_lights: bool,
    pub n: usize,
    pub mean_low_speed_pct: f64,
}

/// Fig. 4: point speeds categorised by direction, optionally restricted to
/// one taxi (the paper shows taxi 1).
pub fn directional_speeds(
    output: &StudyOutput,
    taxi: Option<taxitrace_traces::TaxiId>,
) -> Vec<DirectionalSplit> {
    let mut splits: Vec<DirectionalSplit> = Vec::new();
    for pair in output.pairs() {
        let mut points = Vec::new();
        for t in output.transitions_of_pair(&pair) {
            if let Some(taxi) = taxi {
                if t.taxi != taxi {
                    continue;
                }
            }
            points.extend(t.points.iter().map(|p| (p.pos, p.speed_kmh)));
        }
        if points.is_empty() {
            continue;
        }
        let mean_speed = points.iter().map(|(_, s)| s).sum::<f64>() / points.len() as f64;
        splits.push(DirectionalSplit { pair, points, mean_speed });
    }
    splits
}

/// Fig. 5: point speeds categorised by season for one taxi (or all).
pub fn seasonal_speeds(
    output: &StudyOutput,
    taxi: Option<taxitrace_traces::TaxiId>,
) -> Vec<(Season, Vec<(Point, f64)>)> {
    Season::ALL
        .iter()
        .map(|&season| {
            let mut points = Vec::new();
            for t in &output.transitions {
                if t.season != season {
                    continue;
                }
                if let Some(taxi) = taxi {
                    if t.taxi != taxi {
                        continue;
                    }
                }
                points.extend(t.points.iter().map(|p| (p.pos, p.speed_kmh)));
            }
            (season, points)
        })
        .collect()
}

/// Per-season mean speed deltas against the annual mean across all fused
/// transition points.
pub fn seasonal_deltas(output: &StudyOutput) -> Vec<SeasonalDelta> {
    let mut sums: Vec<(usize, f64)> = vec![(0, 0.0); 4];
    let mut total = (0usize, 0.0f64);
    for t in &output.transitions {
        let Some(idx) = Season::ALL.iter().position(|&s| s == t.season) else {
            continue;
        };
        for p in &t.points {
            sums[idx].0 += 1;
            sums[idx].1 += p.speed_kmh;
            total.0 += 1;
            total.1 += p.speed_kmh;
        }
    }
    let annual = if total.0 > 0 { total.1 / total.0 as f64 } else { 0.0 };
    Season::ALL
        .iter()
        .zip(sums)
        .map(|(&season, (n, sum))| {
            let mean = if n > 0 { sum / n as f64 } else { f64::NAN };
            SeasonalDelta { season, n, mean_speed: mean, delta_kmh: mean - annual }
        })
        .collect()
}

/// Fig. 10: low-speed share per temperature class, split by the
/// traffic-light count threshold (paper: 9; "in general there is an
/// increase of low speed [for ≥ 9 lights], also independent of the weather
/// conditions").
pub fn temperature_analysis(output: &StudyOutput) -> Vec<Fig10Cell> {
    let threshold = output.config.fig10_light_threshold;
    let mut cells = Vec::new();
    for &class in &TemperatureClass::ALL {
        for many_lights in [false, true] {
            let shares: Vec<f64> = output
                .transitions
                .iter()
                .filter(|t| {
                    t.temperature_class == class
                        && (t.traffic_lights >= threshold) == many_lights
                })
                .map(|t| t.low_speed_pct)
                .collect();
            let n = shares.len();
            let mean = if n > 0 { shares.iter().sum::<f64>() / n as f64 } else { f64::NAN };
            cells.push(Fig10Cell { class, many_lights, n, mean_low_speed_pct: mean });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    

    fn out() -> &'static StudyOutput {
        crate::experiment::test_output()
    }

    #[test]
    fn directional_split_covers_pairs() {
        let o = out();
        let splits = directional_speeds(o, None);
        assert!(!splits.is_empty());
        for s in &splits {
            assert!(!s.points.is_empty());
            assert!((5.0..60.0).contains(&s.mean_speed), "{}: {}", s.pair, s.mean_speed);
        }
    }

    #[test]
    fn seasonal_data_covers_the_year() {
        let o = out();
        let by_season = seasonal_speeds(o, None);
        assert_eq!(by_season.len(), 4);
        let non_empty = by_season.iter().filter(|(_, pts)| !pts.is_empty()).count();
        assert!(non_empty >= 3, "at least 3 seasons have data, got {non_empty}");
    }

    #[test]
    fn seasonal_deltas_sum_to_zero_weighted() {
        let o = out();
        let deltas = seasonal_deltas(o);
        let weighted: f64 = deltas
            .iter()
            .filter(|d| d.n > 0)
            .map(|d| d.delta_kmh * d.n as f64)
            .sum();
        assert!(weighted.abs() < 1e-6, "weighted deltas {weighted}");
    }

    #[test]
    fn winter_not_faster_than_autumn() {
        // The Fig. 5 ordering claim (winter slowest, autumn fastest) at the
        // seasonal-factor level; sampling noise allows small inversions in
        // the middle seasons, so only the endpoints are asserted.
        let o = out();
        let deltas = seasonal_deltas(o);
        let winter = deltas.iter().find(|d| d.season == Season::Winter).expect("winter");
        let autumn = deltas.iter().find(|d| d.season == Season::Autumn).expect("autumn");
        if winter.n > 200 && autumn.n > 200 {
            assert!(
                winter.mean_speed < autumn.mean_speed + 0.5,
                "winter {} vs autumn {}",
                winter.mean_speed,
                autumn.mean_speed
            );
        }
    }

    #[test]
    fn fig10_has_both_light_groups() {
        let o = out();
        let cells = temperature_analysis(o);
        assert_eq!(cells.len(), 8);
        let populated = cells.iter().filter(|c| c.n > 0).count();
        assert!(populated >= 3, "populated fig10 cells {populated}");
    }
}
