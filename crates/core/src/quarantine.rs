//! Record-level quarantine: the pipeline's dead-letter ledger.
//!
//! A fault-tolerant study does not let one broken session poison a year of
//! data, and it does not silently drop it either. Records that violate a
//! stage's invariants are routed here with a typed reason, the stage keeps
//! going, and the run's health is judged afterwards against an *error
//! budget*: a stage succeeds with degradation metrics while the quarantined
//! fraction stays within budget, and fails with a structured
//! [`crate::Error::BudgetExceeded`] past it.
//!
//! The reason taxonomy extends the §IV-B raw-data error classes (the
//! trace-level [`taxitrace_cleaning::AnomalyKind`]s) with two pipeline-level
//! failure modes — a gap-fill search that ran out of budget
//! ([`QuarantineReason::UnmatchedGap`]) and a worker task that panicked
//! ([`QuarantineReason::TaskPanic`], isolated by `taxitrace-exec`) — and the
//! data-at-rest damage classes salvaged out of a store file
//! ([`QuarantineReason::CorruptRecord`], [`QuarantineReason::TornTail`],
//! [`QuarantineReason::HeaderMismatch`], mirroring
//! [`taxitrace_store::DamageKind`]), and the untrusted-input rejection
//! classes of the external-format ingest ([`QuarantineReason::MalformedLine`]
//! through [`QuarantineReason::DanglingRef`], mirroring
//! [`taxitrace_ingest::IngestReason`]).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use taxitrace_cleaning::AnomalyKind;
use taxitrace_obs::Registry;

/// Why a record was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// Teleporting displacement at an impossible implied speed.
    PositionJump,
    /// Flattened clock: many points on one timestamp while moving.
    ClockSkew,
    /// Long in-segment silence with substantial movement.
    Dropout,
    /// Frozen position with driving-range reported speeds.
    StuckSensor,
    /// Gap-fill search exhausted its expansion budget for this record.
    UnmatchedGap,
    /// The worker task processing this record panicked.
    TaskPanic,
    /// On-disk record failed its CRC (or duplicated an already-loaded
    /// trip) and was salvaged around.
    CorruptRecord,
    /// The store file ended mid-record; everything after the tear is lost.
    TornTail,
    /// The store header disagreed with the body (bad magic, header CRC,
    /// or record-count mismatch).
    HeaderMismatch,
    /// A streamed record arrived for a trip the watermark had already
    /// closed; accepting it would rewrite published results.
    LatePastWatermark,
    /// A streamed record failed structural validation (non-finite
    /// coordinates or speed) before it ever reached a trip buffer.
    MalformedRecord,
    /// An external-format line is not a record at all: invalid UTF-8,
    /// wrong field count, an oversized field, or a field that does not
    /// lex as its type.
    MalformedLine,
    /// An external field lexed but its value is outside the representable
    /// domain (non-finite float, latitude beyond ±90°).
    NumericRange,
    /// An external record contradicts the file's own schema or an earlier
    /// record of the same entity (bad header, conflicting trip summary,
    /// duplicate way id).
    SchemaMismatch,
    /// An external trip id re-appeared under a different taxi; the later
    /// claim was rejected.
    DuplicateTrip,
    /// An external record references an entity that does not exist (a way
    /// naming an unknown node, an object on an unknown way).
    DanglingRef,
}

impl QuarantineReason {
    /// Stable lowercase label (used in metric names and ledgers).
    pub fn label(self) -> &'static str {
        match self {
            QuarantineReason::PositionJump => "position_jump",
            QuarantineReason::ClockSkew => "clock_skew",
            QuarantineReason::Dropout => "dropout",
            QuarantineReason::StuckSensor => "stuck_sensor",
            QuarantineReason::UnmatchedGap => "unmatched_gap",
            QuarantineReason::TaskPanic => "task_panic",
            QuarantineReason::CorruptRecord => "corrupt_record",
            QuarantineReason::TornTail => "torn_tail",
            QuarantineReason::HeaderMismatch => "header_mismatch",
            QuarantineReason::LatePastWatermark => "late_past_watermark",
            QuarantineReason::MalformedRecord => "malformed_record",
            QuarantineReason::MalformedLine => "malformed_line",
            QuarantineReason::NumericRange => "numeric_range",
            QuarantineReason::SchemaMismatch => "schema_mismatch",
            QuarantineReason::DuplicateTrip => "duplicate_trip",
            QuarantineReason::DanglingRef => "dangling_ref",
        }
    }

    /// Checkpoint wire tag (stable across versions; do not reorder).
    /// Public because the stream-cursor checkpoint encodes ledger entries
    /// with the same tags.
    pub fn wire_tag(self) -> u8 {
        match self {
            QuarantineReason::PositionJump => 0,
            QuarantineReason::ClockSkew => 1,
            QuarantineReason::Dropout => 2,
            QuarantineReason::StuckSensor => 3,
            QuarantineReason::UnmatchedGap => 4,
            QuarantineReason::TaskPanic => 5,
            QuarantineReason::CorruptRecord => 6,
            QuarantineReason::TornTail => 7,
            QuarantineReason::HeaderMismatch => 8,
            QuarantineReason::LatePastWatermark => 9,
            QuarantineReason::MalformedRecord => 10,
            QuarantineReason::MalformedLine => 11,
            QuarantineReason::NumericRange => 12,
            QuarantineReason::SchemaMismatch => 13,
            QuarantineReason::DuplicateTrip => 14,
            QuarantineReason::DanglingRef => 15,
        }
    }

    /// Inverse of [`Self::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => QuarantineReason::PositionJump,
            1 => QuarantineReason::ClockSkew,
            2 => QuarantineReason::Dropout,
            3 => QuarantineReason::StuckSensor,
            4 => QuarantineReason::UnmatchedGap,
            5 => QuarantineReason::TaskPanic,
            6 => QuarantineReason::CorruptRecord,
            7 => QuarantineReason::TornTail,
            8 => QuarantineReason::HeaderMismatch,
            9 => QuarantineReason::LatePastWatermark,
            10 => QuarantineReason::MalformedRecord,
            11 => QuarantineReason::MalformedLine,
            12 => QuarantineReason::NumericRange,
            13 => QuarantineReason::SchemaMismatch,
            14 => QuarantineReason::DuplicateTrip,
            15 => QuarantineReason::DanglingRef,
            _ => return None,
        })
    }
}

impl From<AnomalyKind> for QuarantineReason {
    fn from(kind: AnomalyKind) -> Self {
        match kind {
            AnomalyKind::PositionJump => QuarantineReason::PositionJump,
            AnomalyKind::ClockSkew => QuarantineReason::ClockSkew,
            AnomalyKind::Dropout => QuarantineReason::Dropout,
            AnomalyKind::StuckSensor => QuarantineReason::StuckSensor,
        }
    }
}

impl From<taxitrace_ingest::IngestReason> for QuarantineReason {
    fn from(reason: taxitrace_ingest::IngestReason) -> Self {
        match reason {
            taxitrace_ingest::IngestReason::MalformedLine => QuarantineReason::MalformedLine,
            taxitrace_ingest::IngestReason::NumericRange => QuarantineReason::NumericRange,
            taxitrace_ingest::IngestReason::SchemaMismatch => QuarantineReason::SchemaMismatch,
            taxitrace_ingest::IngestReason::DuplicateTrip => QuarantineReason::DuplicateTrip,
            taxitrace_ingest::IngestReason::DanglingRef => QuarantineReason::DanglingRef,
        }
    }
}

impl From<taxitrace_store::DamageKind> for QuarantineReason {
    fn from(kind: taxitrace_store::DamageKind) -> Self {
        match kind {
            taxitrace_store::DamageKind::CorruptRecord => QuarantineReason::CorruptRecord,
            taxitrace_store::DamageKind::TornTail => QuarantineReason::TornTail,
            // A damaged v3 offset index is header-adjacent metadata; the
            // records themselves salvage by scan.
            taxitrace_store::DamageKind::HeaderMismatch
            | taxitrace_store::DamageKind::CorruptIndex => QuarantineReason::HeaderMismatch,
        }
    }
}

/// One quarantined record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// Pipeline stage that rejected the record
    /// (`ingest`/`store`/`clean`/`od`/`match_fuse`/`stream`).
    pub stage: String,
    /// Trip id of the affected session/segment.
    pub record: u64,
    pub reason: QuarantineReason,
    /// Human-readable diagnosis from the detector.
    pub detail: String,
}

/// The run-wide dead-letter ledger, threaded through the stages in record
/// order (deterministic for a given config and chaos plan).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quarantine {
    entries: Vec<QuarantineEntry>,
}

impl Quarantine {
    pub fn push(&mut self, entry: QuarantineEntry) {
        self.entries.push(entry);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in quarantine order.
    pub fn entries(&self) -> &[QuarantineEntry] {
        &self.entries
    }

    /// Entries of one stage.
    pub fn of_stage<'a>(&'a self, stage: &'a str) -> impl Iterator<Item = &'a QuarantineEntry> {
        self.entries.iter().filter(move |e| e.stage == stage)
    }

    /// Counts per reason label, sorted (deterministic iteration order).
    pub fn by_reason(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for e in &self.entries {
            *counts.entry(e.reason.label()).or_insert(0) += 1;
        }
        counts
    }

    /// Counts per stage, sorted.
    pub fn by_stage(&self) -> BTreeMap<&str, usize> {
        let mut counts = BTreeMap::new();
        for e in &self.entries {
            *counts.entry(e.stage.as_str()).or_insert(0) += 1;
        }
        counts
    }

    /// Publishes one stage's quarantine outcome as metrics. Emits nothing
    /// when the stage quarantined no records, so a healthy run's metric
    /// surface is unchanged. Public so the streaming ingest can account
    /// its `stream` stage through the same surface.
    pub fn record_stage_metrics(&self, registry: &Registry, stage: &str, total: usize) {
        let stage_entries: Vec<&QuarantineEntry> = self.of_stage(stage).collect();
        if stage_entries.is_empty() {
            return;
        }
        registry.counter("quarantine.total").add(stage_entries.len() as u64);
        registry
            .counter(&format!("quarantine.stage.{stage}"))
            .add(stage_entries.len() as u64);
        let mut by_reason: BTreeMap<&'static str, u64> = BTreeMap::new();
        for e in &stage_entries {
            *by_reason.entry(e.reason.label()).or_insert(0) += 1;
        }
        for (label, n) in by_reason {
            registry.counter(&format!("quarantine.reason.{label}")).add(n);
        }
        registry
            .gauge(&format!("quarantine.fraction.{stage}"))
            .set(stage_entries.len() as f64 / total.max(1) as f64);
    }
}

/// Enforces a stage's error budget: `Ok` while the quarantined fraction is
/// within `budget`, a structured [`crate::Error::BudgetExceeded`] past it.
/// Public so out-of-crate stages (the streaming ingest) share the exact
/// enforcement semantics.
pub fn check_budget(
    stage: &'static str,
    quarantined: usize,
    total: usize,
    budget: f64,
) -> Result<(), crate::Error> {
    let fraction = quarantined as f64 / total.max(1) as f64;
    if fraction > budget {
        return Err(crate::Error::BudgetExceeded { stage, quarantined, total, budget });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(stage: &str, record: u64, reason: QuarantineReason) -> QuarantineEntry {
        QuarantineEntry { stage: stage.into(), record, reason, detail: "t".into() }
    }

    #[test]
    fn ledger_counts_by_stage_and_reason() {
        let mut q = Quarantine::default();
        q.push(entry("clean", 1, QuarantineReason::PositionJump));
        q.push(entry("clean", 2, QuarantineReason::PositionJump));
        q.push(entry("match_fuse", 3, QuarantineReason::UnmatchedGap));
        assert_eq!(q.len(), 3);
        assert_eq!(q.by_stage().get("clean"), Some(&2));
        assert_eq!(q.by_reason().get("position_jump"), Some(&2));
        assert_eq!(q.of_stage("match_fuse").count(), 1);
    }

    #[test]
    fn reason_wire_tags_round_trip() {
        for reason in [
            QuarantineReason::PositionJump,
            QuarantineReason::ClockSkew,
            QuarantineReason::Dropout,
            QuarantineReason::StuckSensor,
            QuarantineReason::UnmatchedGap,
            QuarantineReason::TaskPanic,
            QuarantineReason::CorruptRecord,
            QuarantineReason::TornTail,
            QuarantineReason::HeaderMismatch,
            QuarantineReason::LatePastWatermark,
            QuarantineReason::MalformedRecord,
            QuarantineReason::MalformedLine,
            QuarantineReason::NumericRange,
            QuarantineReason::SchemaMismatch,
            QuarantineReason::DuplicateTrip,
            QuarantineReason::DanglingRef,
        ] {
            assert_eq!(QuarantineReason::from_wire_tag(reason.wire_tag()), Some(reason));
        }
        assert_eq!(QuarantineReason::from_wire_tag(99), None);
    }

    #[test]
    fn ingest_reasons_map_one_to_one() {
        let mut tags = std::collections::BTreeSet::new();
        for r in taxitrace_ingest::IngestReason::ALL {
            let q: QuarantineReason = r.into();
            assert_eq!(q.label(), r.label(), "labels agree across the crate boundary");
            assert!(tags.insert(q.wire_tag()), "distinct wire tags");
        }
        assert_eq!(tags, (11..=15).collect());
    }

    #[test]
    fn budget_is_a_strict_fraction_bound() {
        assert!(check_budget("clean", 0, 100, 0.0).is_ok());
        assert!(check_budget("clean", 10, 100, 0.1).is_ok());
        let err = check_budget("clean", 11, 100, 0.1).expect_err("over budget");
        match err {
            crate::Error::BudgetExceeded { stage, quarantined, total, budget } => {
                assert_eq!((stage, quarantined, total, budget), ("clean", 11, 100, 0.1));
            }
            other => panic!("wrong error {other}"),
        }
        // An empty stage never exceeds any budget.
        assert!(check_budget("od", 0, 0, 0.0).is_ok());
    }

    #[test]
    fn healthy_stage_emits_no_quarantine_metrics() {
        let registry = Registry::new();
        Quarantine::default().record_stage_metrics(&registry, "clean", 100);
        assert!(registry.snapshot().counter("quarantine.total").is_none());

        let mut q = Quarantine::default();
        q.push(entry("clean", 1, QuarantineReason::Dropout));
        q.record_stage_metrics(&registry, "clean", 10);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("quarantine.total"), Some(1));
        assert_eq!(snap.counter("quarantine.stage.clean"), Some(1));
        assert_eq!(snap.counter("quarantine.reason.dropout"), Some(1));
        assert_eq!(snap.gauge("quarantine.fraction.clean"), Some(0.1));
    }
}
