//! Stage checkpoint/resume for the study pipeline.
//!
//! Each typed stage persists a deterministic snapshot of its data products
//! into a [`taxitrace_store::checkpoint`] container, keyed by a fingerprint
//! of the full [`StudyConfig`]. [`Study::run_with_checkpoints`] skips every
//! stage whose checkpoint exists under the current fingerprint, and
//! [`Study::resume`] is the same operation by its recovery name: a run
//! killed mid-pipeline restarts from the last completed stage boundary and
//! produces byte-identical results — stage payloads are encoded with the
//! same wire primitives whether a stage ran live or was reloaded, and the
//! remaining stages are pure functions of those payloads.
//!
//! What is checkpointed is deliberately minimal: only *data products*
//! (sessions, segments, totals, funnel rows, transitions, the quarantine
//! ledger). The city and the weather model are pure functions of the config
//! and are regenerated on load, so checkpoints stay small and cannot drift
//! from the config that fingerprints them.

use std::fs;
use std::io;
use std::path::Path;

use bytes::{BufMut, Bytes, BytesMut};
use taxitrace_cleaning::{CleaningTotals, TripSegment};
use taxitrace_od::{FunnelRow, Transition};
use taxitrace_store::codec::{
    checked_taxi, decode_point, decode_session, encode_point, encode_session, put_str,
    take_i64, take_str, take_u32, take_u64, take_u8,
};
use taxitrace_store::{
    load_checkpoint, save_checkpoint, CheckpointFile, StoreError, TripStore,
};
use taxitrace_timebase::Timestamp;
use taxitrace_traces::{FaultPlan, RawTrip, TaxiId, TripId};

use crate::config::StudyConfig;
use crate::error::Error;
use crate::experiment::{weather_for, Cleaned, Obs, OdSelected, Simulated, Study};
use crate::quarantine::{Quarantine, QuarantineEntry, QuarantineReason};

/// FNV-1a fingerprint of the full study configuration (including the fault
/// policy and any chaos plan). A checkpoint is only reused when its stored
/// fingerprint matches the current config exactly.
pub fn config_fingerprint(config: &StudyConfig) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{config:?}").bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Study {
    /// Runs the pipeline with stage checkpoints under `dir`: every stage
    /// whose checkpoint exists (under the current config fingerprint) is
    /// loaded instead of recomputed, and every freshly executed stage is
    /// checkpointed before the next one starts.
    pub fn run_with_checkpoints(&self, dir: &Path) -> Result<crate::StudyOutput, Error> {
        run_checkpointed(self, dir)
    }

    /// Resumes a checkpointed run from the last completed stage boundary.
    /// Identical to [`Study::run_with_checkpoints`]; the separate name
    /// marks the recovery path in calling code.
    pub fn resume(&self, dir: &Path) -> Result<crate::StudyOutput, Error> {
        run_checkpointed(self, dir)
    }
}

fn io_error(path: &Path, source: io::Error) -> Error {
    Error::Io { path: path.display().to_string(), source }
}

fn run_checkpointed(study: &Study, dir: &Path) -> Result<crate::StudyOutput, Error> {
    let config = &study.config;
    config.validate()?;
    fs::create_dir_all(dir).map_err(|e| io_error(dir, e))?;
    let fingerprint = config_fingerprint(config);
    let chaos = config.chaos.clone();

    let sim_path = dir.join("simulate.ttck");
    let sim = match try_load(&sim_path, fingerprint)? {
        Some(ck) => load_simulated(config, &ck)?,
        None => {
            let sim = study.simulate()?;
            let sessions = encode_sessions(sim.store.sessions())?;
            let chaos_metrics = encode_chaos_counters(&sim.metrics)?;
            save_guarded(
                dir,
                &sim_path,
                "simulate",
                fingerprint,
                &[("sessions", &sessions), ("chaos_metrics", &chaos_metrics)],
                chaos.as_ref(),
            )?;
            kill_if_planned("simulate", chaos.as_ref())?;
            sim
        }
    };

    let clean_path = dir.join("clean.ttck");
    let cleaned = match try_load(&clean_path, fingerprint)? {
        Some(ck) => load_cleaned(sim, &ck)?,
        None => {
            let cleaned = sim.clean()?;
            let segments = encode_segments(&cleaned.segments)?;
            let totals = encode_totals(&cleaned.cleaning);
            let quarantine = encode_quarantine(&cleaned.quarantine)?;
            save_guarded(
                dir,
                &clean_path,
                "clean",
                fingerprint,
                &[("segments", &segments), ("totals", &totals), ("quarantine", &quarantine)],
                chaos.as_ref(),
            )?;
            kill_if_planned("clean", chaos.as_ref())?;
            cleaned
        }
    };

    let od_path = dir.join("od.ttck");
    let od = match try_load(&od_path, fingerprint)? {
        Some(ck) => load_od(cleaned, &ck)?,
        None => {
            let od = cleaned.analyze_od()?;
            let funnel = encode_funnel(&od.funnel_rows)?;
            let transitions = encode_transitions(&od.raw_transitions)?;
            let quarantine = encode_quarantine(&od.quarantine)?;
            save_guarded(
                dir,
                &od_path,
                "od",
                fingerprint,
                &[("funnel", &funnel), ("transitions", &transitions), ("quarantine", &quarantine)],
                chaos.as_ref(),
            )?;
            kill_if_planned("od", chaos.as_ref())?;
            od
        }
    };

    // The final stage produces the StudyOutput itself; a completed run
    // needs no checkpoint.
    od.match_fuse()
}

/// Loads a checkpoint if present and fingerprinted for this config. A
/// missing file, a stale fingerprint, or a torn/corrupt file all mean "no
/// checkpoint" — the stage is recomputed; only real I/O errors propagate.
fn try_load(path: &Path, fingerprint: u64) -> Result<Option<CheckpointFile>, Error> {
    if !path.exists() {
        return Ok(None);
    }
    match load_checkpoint(path) {
        Ok(ck) if ck.fingerprint == fingerprint => Ok(Some(ck)),
        Ok(_) => Ok(None),
        Err(StoreError::BadFormat(_)) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Saves a stage checkpoint, honouring a chaos plan's injected write
/// failure: the named stage's first save attempt errors (after dropping a
/// marker so the retry succeeds), exercising the caller's recovery path.
fn save_guarded(
    dir: &Path,
    path: &Path,
    stage: &str,
    fingerprint: u64,
    sections: &[(&str, &[u8])],
    chaos: Option<&FaultPlan>,
) -> Result<(), Error> {
    if let Some(plan) = chaos {
        if plan.fail_checkpoint_stage.as_deref() == Some(stage) {
            let marker = dir.join(format!(".chaos-ckfail-{stage}"));
            if !marker.exists() {
                fs::write(&marker, b"1").map_err(|e| io_error(&marker, e))?;
                return Err(Error::Store(StoreError::BadFormat(format!(
                    "chaos: injected checkpoint write failure for the {stage} stage"
                ))));
            }
        }
    }
    save_checkpoint(path, fingerprint, sections)?;
    Ok(())
}

fn kill_if_planned(stage: &str, chaos: Option<&FaultPlan>) -> Result<(), Error> {
    if let Some(plan) = chaos {
        if plan.kill_after_stage.as_deref() == Some(stage) {
            return Err(Error::InjectedKill { stage: stage.to_string() });
        }
    }
    Ok(())
}

fn section(ck: &CheckpointFile, stage: &str, name: &str) -> Result<Bytes, Error> {
    ck.section(name).cloned().ok_or_else(|| {
        Error::Store(StoreError::BadFormat(format!(
            "{stage} checkpoint is missing its {name:?} section"
        )))
    })
}

fn load_simulated(config: &StudyConfig, ck: &CheckpointFile) -> Result<Simulated, Error> {
    let config = config.clone();
    let obs = Obs::new();
    let mut span = obs.registry.span("study/simulate");
    let city = {
        let _s = obs.registry.span("study/simulate/city");
        taxitrace_roadnet::synth::generate(&config.city)
    };
    let weather = weather_for(&config);
    let sessions = decode_sessions(&mut section(ck, "simulate", "sessions")?)?;
    obs.registry.counter("sim.sessions").add(sessions.len() as u64);
    let raw_points: usize = sessions.iter().map(|s| s.points.len()).sum();
    obs.registry.counter("sim.raw_points").add(raw_points as u64);
    // Chaos fault counters describe the checkpointed *data* (how many
    // sessions were injected with which fault), so a resumed run must
    // report them even though it never ran the injection itself.
    for (name, value) in decode_chaos_counters(&mut section(ck, "simulate", "chaos_metrics")?)? {
        obs.registry.counter(&name).add(value);
    }
    let mut store = TripStore::new();
    {
        let _s = obs.registry.span("study/simulate/persist");
        store.insert_all(sessions)?;
    }
    span.set_items(store.sessions().len() as u64);
    span.finish();
    let metrics = obs.registry.snapshot();
    Ok(Simulated { config, city, weather, store, quarantine: Quarantine::default(), metrics, obs })
}

fn load_cleaned(sim: Simulated, ck: &CheckpointFile) -> Result<Cleaned, Error> {
    let Simulated { config, city, weather, store, obs, .. } = sim;
    let segments = decode_segments(&mut section(ck, "clean", "segments")?)?;
    let cleaning = decode_totals(&mut section(ck, "clean", "totals")?)?;
    let quarantine = decode_quarantine(&mut section(ck, "clean", "quarantine")?)?;
    cleaning.record_metrics(&obs.registry);
    quarantine.record_stage_metrics(&obs.registry, "clean", store.sessions().len());
    let metrics = obs.registry.snapshot();
    Ok(Cleaned { config, city, weather, store, segments, cleaning, quarantine, metrics, obs })
}

fn load_od(cleaned: Cleaned, ck: &CheckpointFile) -> Result<OdSelected, Error> {
    let Cleaned { config, city, weather, store, segments, cleaning, obs, .. } = cleaned;
    let funnel_rows = decode_funnel(&mut section(ck, "od", "funnel")?)?;
    let raw_transitions = decode_transitions(&mut section(ck, "od", "transitions")?)?;
    // The od checkpoint stores the *cumulative* ledger (clean + od), so it
    // replaces the one carried in from the clean stage.
    let quarantine = decode_quarantine(&mut section(ck, "od", "quarantine")?)?;
    taxitrace_od::record_funnel_metrics(&funnel_rows, &obs.registry);
    let od_quarantined = quarantine.of_stage("od").count();
    quarantine.record_stage_metrics(
        &obs.registry,
        "od",
        raw_transitions.len() + od_quarantined,
    );
    let metrics = obs.registry.snapshot();
    Ok(OdSelected {
        config,
        city,
        weather,
        store,
        segments,
        cleaning,
        funnel_rows,
        raw_transitions,
        quarantine,
        metrics,
        obs,
    })
}

// ---- stage payload codecs (store wire primitives; little-endian) --------

fn encode_sessions(sessions: &[RawTrip]) -> Result<Vec<u8>, StoreError> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(sessions.len() as u64);
    for s in sessions {
        encode_session(&mut buf, s)?;
    }
    Ok(buf.as_ref().to_vec())
}

fn decode_sessions(b: &mut Bytes) -> Result<Vec<RawTrip>, StoreError> {
    let n = take_u64(b)? as usize;
    let mut sessions = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        sessions.push(decode_session(b)?);
    }
    Ok(sessions)
}

/// The `chaos.*` counters of a live simulate stage (empty without a
/// fault-injecting plan), encoded name-value.
fn encode_chaos_counters(
    metrics: &taxitrace_obs::MetricsSnapshot,
) -> Result<Vec<u8>, StoreError> {
    let chaos: Vec<&(String, u64)> =
        metrics.counters.iter().filter(|(name, _)| name.starts_with("chaos.")).collect();
    let mut buf = BytesMut::new();
    buf.put_u64_le(chaos.len() as u64);
    for (name, value) in chaos {
        put_str(&mut buf, name)?;
        buf.put_u64_le(*value);
    }
    Ok(buf.as_ref().to_vec())
}

fn decode_chaos_counters(b: &mut Bytes) -> Result<Vec<(String, u64)>, StoreError> {
    let n = take_u64(b)? as usize;
    let mut counters = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let name = take_str(b)?;
        let value = take_u64(b)?;
        counters.push((name, value));
    }
    Ok(counters)
}

/// Encodes cleaned segments for a checkpoint section. Public because the
/// stream-cursor checkpoint persists per-session segments with the same
/// wire format.
pub fn encode_segments(segments: &[TripSegment]) -> Result<Vec<u8>, StoreError> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(segments.len() as u64);
    for seg in segments {
        buf.put_u64_le(seg.trip_id.0);
        buf.put_u8(checked_taxi(seg.taxi)?);
        buf.put_i64_le(seg.start_time.secs());
        let count = u32::try_from(seg.points.len())
            .map_err(|_| StoreError::BadFormat("segment point count exceeds u32".into()))?;
        buf.put_u32_le(count);
        for p in &seg.points {
            encode_point(&mut buf, p)?;
        }
    }
    Ok(buf.as_ref().to_vec())
}

/// Inverse of [`encode_segments`].
pub fn decode_segments(b: &mut Bytes) -> Result<Vec<TripSegment>, StoreError> {
    let n = take_u64(b)? as usize;
    let mut segments = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let trip_id = TripId(take_u64(b)?);
        let taxi = TaxiId(take_u8(b)?.into());
        let start_time = Timestamp::from_secs(take_i64(b)?);
        let np = take_u32(b)? as usize;
        let mut points = Vec::with_capacity(np.min(1 << 20));
        for _ in 0..np {
            points.push(decode_point(b, trip_id, taxi)?);
        }
        segments.push(TripSegment { trip_id, taxi, start_time, points });
    }
    Ok(segments)
}

/// Encodes cleaning totals for a checkpoint section (shared with the
/// stream-cursor checkpoint).
pub fn encode_totals(totals: &CleaningTotals) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(totals.sessions as u64);
    buf.put_u64_le(totals.raw_points as u64);
    buf.put_u64_le(totals.sessions_order_repaired as u64);
    for fires in totals.rule_fires {
        buf.put_u64_le(fires as u64);
    }
    buf.put_u64_le(totals.segments_kept as u64);
    buf.put_u64_le(totals.segments_too_few_points as u64);
    buf.put_u64_le(totals.segments_too_long as u64);
    buf.as_ref().to_vec()
}

/// Inverse of [`encode_totals`].
pub fn decode_totals(b: &mut Bytes) -> Result<CleaningTotals, StoreError> {
    let mut totals = CleaningTotals {
        sessions: take_u64(b)? as usize,
        raw_points: take_u64(b)? as usize,
        sessions_order_repaired: take_u64(b)? as usize,
        ..CleaningTotals::default()
    };
    for fires in totals.rule_fires.iter_mut() {
        *fires = take_u64(b)? as usize;
    }
    totals.segments_kept = take_u64(b)? as usize;
    totals.segments_too_few_points = take_u64(b)? as usize;
    totals.segments_too_long = take_u64(b)? as usize;
    Ok(totals)
}

fn encode_quarantine(quarantine: &Quarantine) -> Result<Vec<u8>, StoreError> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(quarantine.len() as u64);
    for entry in quarantine.entries() {
        put_str(&mut buf, &entry.stage)?;
        buf.put_u64_le(entry.record);
        buf.put_u8(entry.reason.wire_tag());
        put_str(&mut buf, &entry.detail)?;
    }
    Ok(buf.as_ref().to_vec())
}

fn decode_quarantine(b: &mut Bytes) -> Result<Quarantine, StoreError> {
    let n = take_u64(b)? as usize;
    let mut quarantine = Quarantine::default();
    for _ in 0..n {
        let stage = take_str(b)?;
        let record = take_u64(b)?;
        let tag = take_u8(b)?;
        let reason = QuarantineReason::from_wire_tag(tag).ok_or_else(|| {
            StoreError::BadFormat(format!("unknown quarantine reason tag {tag}"))
        })?;
        let detail = take_str(b)?;
        quarantine.push(QuarantineEntry { stage, record, reason, detail });
    }
    Ok(quarantine)
}

fn encode_funnel(rows: &[FunnelRow]) -> Result<Vec<u8>, StoreError> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(rows.len() as u64);
    for row in rows {
        buf.put_u8(checked_taxi(TaxiId(row.taxi))?);
        buf.put_u64_le(row.segments_total as u64);
        buf.put_u64_le(row.any_crossing as u64);
        buf.put_u64_le(row.filtered_cleaned as u64);
        buf.put_u64_le(row.transitions_total as u64);
        buf.put_u64_le(row.within_center as u64);
        buf.put_u64_le(row.post_filtered as u64);
    }
    Ok(buf.as_ref().to_vec())
}

fn decode_funnel(b: &mut Bytes) -> Result<Vec<FunnelRow>, StoreError> {
    let n = take_u64(b)? as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        rows.push(FunnelRow {
            taxi: take_u8(b)?.into(),
            segments_total: take_u64(b)? as usize,
            any_crossing: take_u64(b)? as usize,
            filtered_cleaned: take_u64(b)? as usize,
            transitions_total: take_u64(b)? as usize,
            within_center: take_u64(b)? as usize,
            post_filtered: take_u64(b)? as usize,
        });
    }
    Ok(rows)
}

fn encode_transitions(transitions: &[Transition]) -> Result<Vec<u8>, StoreError> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(transitions.len() as u64);
    for t in transitions {
        buf.put_u64_le(t.segment_index as u64);
        buf.put_u8(checked_taxi(t.taxi)?);
        put_str(&mut buf, &t.from)?;
        put_str(&mut buf, &t.to)?;
        buf.put_u64_le(t.origin_point as u64);
        buf.put_u64_le(t.destination_point as u64);
        let flags = (t.within_center as u8) | ((t.post_filtered as u8) << 1);
        buf.put_u8(flags);
    }
    Ok(buf.as_ref().to_vec())
}

fn decode_transitions(b: &mut Bytes) -> Result<Vec<Transition>, StoreError> {
    let n = take_u64(b)? as usize;
    let mut transitions = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let segment_index = take_u64(b)? as usize;
        let taxi = TaxiId(take_u8(b)?.into());
        let from = take_str(b)?;
        let to = take_str(b)?;
        let origin_point = take_u64(b)? as usize;
        let destination_point = take_u64(b)? as usize;
        let flags = take_u8(b)?;
        transitions.push(Transition {
            segment_index,
            taxi,
            from,
            to,
            origin_point,
            destination_point,
            within_center: flags & 1 != 0,
            post_filtered: flags & 2 != 0,
        });
    }
    Ok(transitions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_every_config_field() {
        let a = config_fingerprint(&StudyConfig::quick(7));
        let b = config_fingerprint(&StudyConfig::quick(7));
        assert_eq!(a, b);
        assert_ne!(a, config_fingerprint(&StudyConfig::quick(8)));
        let mut with_chaos = StudyConfig::quick(7);
        with_chaos.chaos = Some(FaultPlan { p_teleport: 0.1, ..FaultPlan::default() });
        assert_ne!(a, config_fingerprint(&with_chaos));
        let mut tighter = StudyConfig::quick(7);
        tighter.fault.error_budget = 0.01;
        assert_ne!(a, config_fingerprint(&tighter));
    }

    #[test]
    fn stage_payload_codecs_round_trip() {
        let totals = CleaningTotals {
            sessions: 10,
            raw_points: 1000,
            sessions_order_repaired: 3,
            rule_fires: [1, 2, 3, 4, 5],
            segments_kept: 40,
            segments_too_few_points: 2,
            segments_too_long: 1,
        };
        let mut b = Bytes::from(encode_totals(&totals));
        assert_eq!(decode_totals(&mut b).unwrap(), totals);

        let mut q = Quarantine::default();
        q.push(QuarantineEntry {
            stage: "clean".into(),
            record: 42,
            reason: QuarantineReason::Dropout,
            detail: "900 s silent".into(),
        });
        q.push(QuarantineEntry {
            stage: "match_fuse".into(),
            record: 7,
            reason: QuarantineReason::UnmatchedGap,
            detail: "budget".into(),
        });
        let mut b = Bytes::from(encode_quarantine(&q).unwrap());
        assert_eq!(decode_quarantine(&mut b).unwrap(), q);

        let rows = vec![FunnelRow {
            taxi: 3,
            segments_total: 100,
            any_crossing: 80,
            filtered_cleaned: 60,
            transitions_total: 50,
            within_center: 30,
            post_filtered: 20,
        }];
        let mut b = Bytes::from(encode_funnel(&rows).unwrap());
        assert_eq!(decode_funnel(&mut b).unwrap(), rows);

        let transitions = vec![Transition {
            segment_index: 5,
            taxi: TaxiId(2),
            from: "T".into(),
            to: "S".into(),
            origin_point: 3,
            destination_point: 17,
            within_center: true,
            post_filtered: false,
        }];
        let mut b = Bytes::from(encode_transitions(&transitions).unwrap());
        assert_eq!(decode_transitions(&mut b).unwrap(), transitions);
    }

    #[test]
    fn corrupt_quarantine_tag_is_a_typed_error() {
        let mut q = Quarantine::default();
        q.push(QuarantineEntry {
            stage: "clean".into(),
            record: 1,
            reason: QuarantineReason::ClockSkew,
            detail: "x".into(),
        });
        let mut raw = encode_quarantine(&q).unwrap();
        // The tag byte sits after the count (8), stage ("clean": 2 + 5)
        // and record (8).
        raw[8 + 7 + 8] = 200;
        let mut b = Bytes::from(raw);
        assert!(matches!(decode_quarantine(&mut b), Err(StoreError::BadFormat(_))));
    }
}
