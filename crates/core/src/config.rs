use serde::{Deserialize, Serialize};
use taxitrace_cleaning::CleaningConfig;
use taxitrace_matching::MatchConfig;
use taxitrace_roadnet::synth::OuluConfig;
use taxitrace_traces::FleetConfig;

/// Configuration of a full study run. The entire study is a pure function
/// of this value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Master seed (drives the city, weather and fleet streams).
    pub seed: u64,
    pub city: OuluConfig,
    pub fleet: FleetConfig,
    pub cleaning: CleaningConfig,
    pub matching: MatchConfig,
    /// Analysis grid cell size, metres (paper: 200 m × 200 m).
    pub grid_size_m: f64,
    /// Low-speed threshold, km/h (paper: 10 km/h).
    pub low_speed_kmh: f64,
    /// "Normal speed" = within this fraction of the posted limit.
    pub normal_speed_frac: f64,
    /// Traffic-light count splitting Fig. 10's two groups (paper: 9).
    pub fig10_light_threshold: usize,
}

impl StudyConfig {
    /// Paper-scale study: 7 taxis, a full year, ~20k trip segments.
    pub fn paper(seed: u64) -> Self {
        let fleet = FleetConfig { seed, ..FleetConfig::default() };
        Self {
            seed,
            city: OuluConfig { seed, ..OuluConfig::default() },
            fleet,
            cleaning: CleaningConfig::default(),
            matching: MatchConfig::default(),
            grid_size_m: 200.0,
            low_speed_kmh: 10.0,
            // "Normal speed (speed at the speed limit)": strictly at/above
            // the posted limit, which is what keeps the paper's normal-speed
            // shares small (means 6–15 %).
            normal_speed_frac: 1.0,
            fig10_light_threshold: 9,
        }
    }

    /// Reduced-volume study for tests and quick runs (~5 % of the year).
    pub fn quick(seed: u64) -> Self {
        let mut cfg = Self::paper(seed);
        cfg.fleet.scale = 0.05;
        cfg
    }

    /// Study with an arbitrary volume scale in `(0, 1]`.
    pub fn scaled(seed: u64, scale: f64) -> Self {
        let mut cfg = Self::paper(seed);
        cfg.fleet.scale = scale;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let p = StudyConfig::paper(1);
        assert_eq!(p.grid_size_m, 200.0);
        assert_eq!(p.low_speed_kmh, 10.0);
        assert_eq!(p.fig10_light_threshold, 9);
        let q = StudyConfig::quick(1);
        assert!(q.fleet.scale < p.fleet.scale);
        let s = StudyConfig::scaled(1, 0.3);
        assert_eq!(s.fleet.scale, 0.3);
    }
}
