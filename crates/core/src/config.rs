use serde::{Deserialize, Serialize};
use taxitrace_cleaning::{AnomalyConfig, CleaningConfig};
use taxitrace_matching::MatchConfig;
use taxitrace_roadnet::synth::OuluConfig;
use taxitrace_timebase::CivilDate;
use taxitrace_traces::{FaultPlan, FleetConfig};

/// Configuration of a full study run. The entire study is a pure function
/// of this value.
///
/// Prefer [`StudyConfig::builder`] over struct-literal construction: the
/// builder validates fleet size, volume scale, the study period and the
/// analysis thresholds before a study can exist, so a `Study` never runs
/// on nonsense inputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Master seed (drives the city, weather and fleet streams).
    pub seed: u64,
    pub city: OuluConfig,
    pub fleet: FleetConfig,
    pub cleaning: CleaningConfig,
    pub matching: MatchConfig,
    /// Analysis grid cell size, metres (paper: 200 m × 200 m).
    pub grid_size_m: f64,
    /// Low-speed threshold, km/h (paper: 10 km/h).
    pub low_speed_kmh: f64,
    /// "Normal speed" = within this fraction of the posted limit.
    pub normal_speed_frac: f64,
    /// Traffic-light count splitting Fig. 10's two groups (paper: 9).
    pub fig10_light_threshold: usize,
    /// Fault-tolerance policy: anomaly thresholds, error budget, retries.
    pub fault: FaultConfig,
    /// Chaos plan injecting faults for robustness testing (`None` in
    /// production runs; the default pipeline behaviour is unchanged).
    pub chaos: Option<FaultPlan>,
}

/// Fault-tolerance policy of a study run.
///
/// The defaults are calibrated so a healthy (no-chaos) run never trips
/// them: the anomaly thresholds are physically extreme, and a 25 % error
/// budget is far above anything the default corruption model produces
/// (which quarantines nothing at all).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Maximum fraction of a stage's records that may be quarantined
    /// before the stage fails with [`crate::Error::BudgetExceeded`].
    pub error_budget: f64,
    /// Maximum fraction of a store file's records that may be damaged
    /// (CRC failures, torn tails, duplicates) before loading it fails
    /// with [`crate::Error::BudgetExceeded`] at the `store` stage.
    pub store_error_budget: f64,
    /// Maximum fraction of an external input file's records that may be
    /// rejected (malformed lines, numeric-range violations, dangling
    /// references) before ingestion fails with
    /// [`crate::Error::BudgetExceeded`] at the `ingest` stage.
    pub ingest_error_budget: f64,
    /// Upper bound on executions per worker task (≥ 1; panics are never
    /// retried, only typed task errors are).
    pub max_task_attempts: u32,
    /// Post-cleaning invariant thresholds feeding the quarantine.
    pub anomaly: AnomalyConfig,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            error_budget: 0.25,
            store_error_budget: 0.25,
            ingest_error_budget: 0.25,
            max_task_attempts: 1,
            anomaly: AnomalyConfig::default(),
        }
    }
}

/// Why a [`StudyConfigBuilder`] refused to produce a config.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The fleet must contain at least one taxi.
    ZeroTaxis,
    /// The fleet exceeds the number of taxis a `TaxiId` can address.
    FleetTooLarge(usize),
    /// The study period end does not lie after its start.
    InvertedPeriod { start: CivilDate, end: CivilDate },
    /// The volume scale must be a finite number.
    NonFiniteScale(f64),
    /// The volume scale must lie in `(0, 1]`.
    ScaleOutOfRange(f64),
    /// The analysis grid size must be finite and positive.
    BadGridSize(f64),
    /// The low-speed threshold must be finite and positive.
    BadLowSpeed(f64),
    /// The normal-speed fraction must be finite and positive.
    BadNormalSpeedFrac(f64),
    /// The quarantine error budget must be a fraction in `[0, 1]`.
    BadErrorBudget(f64),
    /// Worker tasks must run at least once.
    ZeroTaskAttempts,
    /// The chaos plan failed its own validation.
    Chaos(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroTaxis => write!(f, "fleet must have at least one taxi"),
            ConfigError::FleetTooLarge(n) => {
                write!(f, "fleet of {n} taxis exceeds the {} a TaxiId can address", u16::MAX)
            }
            ConfigError::InvertedPeriod { start, end } => {
                write!(f, "study period end {end:?} is not after start {start:?}")
            }
            ConfigError::NonFiniteScale(s) => write!(f, "scale {s} is not finite"),
            ConfigError::ScaleOutOfRange(s) => {
                write!(f, "scale {s} outside (0, 1]")
            }
            ConfigError::BadGridSize(g) => {
                write!(f, "grid size {g} m must be finite and positive")
            }
            ConfigError::BadLowSpeed(v) => {
                write!(f, "low-speed threshold {v} km/h must be finite and positive")
            }
            ConfigError::BadNormalSpeedFrac(v) => {
                write!(f, "normal-speed fraction {v} must be finite and positive")
            }
            ConfigError::BadErrorBudget(b) => {
                write!(f, "error budget {b} must be a fraction in [0, 1]")
            }
            ConfigError::ZeroTaskAttempts => {
                write!(f, "max task attempts must be at least 1")
            }
            ConfigError::Chaos(msg) => write!(f, "invalid chaos plan: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`StudyConfig`]; see [`StudyConfig::builder`].
#[derive(Debug, Clone)]
pub struct StudyConfigBuilder {
    seed: u64,
    scale: f64,
    taxis: Option<usize>,
    period: Option<(CivilDate, CivilDate)>,
    grid_size_m: f64,
    low_speed_kmh: f64,
    normal_speed_frac: f64,
    fig10_light_threshold: usize,
    cleaning: CleaningConfig,
    matching: MatchConfig,
    fault: FaultConfig,
    chaos: Option<FaultPlan>,
}

impl StudyConfigBuilder {
    fn new(seed: u64) -> Self {
        let paper = StudyConfig::paper(seed);
        Self {
            seed,
            scale: paper.fleet.scale,
            taxis: None,
            period: None,
            grid_size_m: paper.grid_size_m,
            low_speed_kmh: paper.low_speed_kmh,
            normal_speed_frac: paper.normal_speed_frac,
            fig10_light_threshold: paper.fig10_light_threshold,
            cleaning: paper.cleaning,
            matching: paper.matching,
            fault: paper.fault,
            chaos: None,
        }
    }

    /// Volume scale in `(0, 1]` (1.0 = the paper's full year).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Number of taxis in the fleet (the paper studies 7; more cycles the
    /// paper's per-taxi activity profiles).
    pub fn taxis(mut self, taxis: usize) -> Self {
        self.taxis = Some(taxis);
        self
    }

    /// Study period as civil dates, end exclusive (the paper:
    /// 1.10.2012 – 1.10.2013).
    pub fn period(mut self, start: CivilDate, end: CivilDate) -> Self {
        self.period = Some((start, end));
        self
    }

    /// Analysis grid cell size, metres.
    pub fn grid_size_m(mut self, metres: f64) -> Self {
        self.grid_size_m = metres;
        self
    }

    /// Low-speed threshold, km/h.
    pub fn low_speed_kmh(mut self, kmh: f64) -> Self {
        self.low_speed_kmh = kmh;
        self
    }

    /// "Normal speed" fraction of the posted limit.
    pub fn normal_speed_frac(mut self, frac: f64) -> Self {
        self.normal_speed_frac = frac;
        self
    }

    /// Traffic-light threshold splitting Fig. 10's groups.
    pub fn fig10_light_threshold(mut self, lights: usize) -> Self {
        self.fig10_light_threshold = lights;
        self
    }

    /// Cleaning-stage configuration.
    pub fn cleaning(mut self, cleaning: CleaningConfig) -> Self {
        self.cleaning = cleaning;
        self
    }

    /// Map-matching configuration.
    pub fn matching(mut self, matching: MatchConfig) -> Self {
        self.matching = matching;
        self
    }

    /// Fault-tolerance policy (error budget, retries, anomaly thresholds).
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Chaos plan for robustness testing.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<StudyConfig, ConfigError> {
        if !self.scale.is_finite() {
            return Err(ConfigError::NonFiniteScale(self.scale));
        }
        if self.scale <= 0.0 || self.scale > 1.0 {
            return Err(ConfigError::ScaleOutOfRange(self.scale));
        }
        if self.taxis == Some(0) {
            return Err(ConfigError::ZeroTaxis);
        }
        if !self.grid_size_m.is_finite() || self.grid_size_m <= 0.0 {
            return Err(ConfigError::BadGridSize(self.grid_size_m));
        }
        if !self.low_speed_kmh.is_finite() || self.low_speed_kmh <= 0.0 {
            return Err(ConfigError::BadLowSpeed(self.low_speed_kmh));
        }
        if !self.normal_speed_frac.is_finite() || self.normal_speed_frac <= 0.0 {
            return Err(ConfigError::BadNormalSpeedFrac(self.normal_speed_frac));
        }

        let mut config = StudyConfig::paper(self.seed);
        config.fleet.scale = self.scale;
        if let Some(taxis) = self.taxis {
            let paper_profiles = config.fleet.legs_per_taxi.clone();
            config.fleet.legs_per_taxi = (0..taxis)
                .map(|i| paper_profiles[i % paper_profiles.len()])
                .collect();
        }
        if config.fleet.legs_per_taxi.is_empty() {
            return Err(ConfigError::ZeroTaxis);
        }
        if let Some((start, end)) = self.period {
            let days = end.days_from_epoch() - start.days_from_epoch();
            if days <= 0 {
                return Err(ConfigError::InvertedPeriod { start, end });
            }
            config.fleet.days = days as usize;
        }
        config.grid_size_m = self.grid_size_m;
        config.low_speed_kmh = self.low_speed_kmh;
        config.normal_speed_frac = self.normal_speed_frac;
        config.fig10_light_threshold = self.fig10_light_threshold;
        config.cleaning = self.cleaning;
        config.matching = self.matching;
        config.fault = self.fault;
        config.chaos = self.chaos;
        config.validate()?;
        Ok(config)
    }
}

impl StudyConfig {
    /// Validating builder seeded with the paper's defaults.
    ///
    /// ```
    /// use taxitrace_core::StudyConfig;
    ///
    /// let config = StudyConfig::builder(7).scale(0.1).build().expect("valid");
    /// assert_eq!(config.fleet.scale, 0.1);
    /// assert!(StudyConfig::builder(7).scale(f64::NAN).build().is_err());
    /// ```
    pub fn builder(seed: u64) -> StudyConfigBuilder {
        StudyConfigBuilder::new(seed)
    }

    /// Paper-scale study: 7 taxis, a full year, ~20k trip segments.
    pub fn paper(seed: u64) -> Self {
        let fleet = FleetConfig { seed, ..FleetConfig::default() };
        Self {
            seed,
            city: OuluConfig { seed, ..OuluConfig::default() },
            fleet,
            cleaning: CleaningConfig::default(),
            matching: MatchConfig::default(),
            fault: FaultConfig::default(),
            chaos: None,
            grid_size_m: 200.0,
            low_speed_kmh: 10.0,
            // "Normal speed (speed at the speed limit)": strictly at/above
            // the posted limit, which is what keeps the paper's normal-speed
            // shares small (means 6–15 %).
            normal_speed_frac: 1.0,
            fig10_light_threshold: 9,
        }
    }

    /// Reduced-volume study for tests and quick runs (~5 % of the year).
    pub fn quick(seed: u64) -> Self {
        let mut cfg = Self::paper(seed);
        cfg.fleet.scale = 0.05;
        cfg
    }

    /// Study with an arbitrary volume scale in `(0, 1]`.
    pub fn scaled(seed: u64, scale: f64) -> Self {
        let mut cfg = Self::paper(seed);
        cfg.fleet.scale = scale;
        cfg
    }

    /// Re-checks the invariants the builder enforces, for configs built
    /// by hand. [`crate::Study::simulate`] calls this first, so invalid
    /// struct-literal configs fail fast instead of producing nonsense.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.fleet.scale.is_finite() {
            return Err(ConfigError::NonFiniteScale(self.fleet.scale));
        }
        if self.fleet.scale <= 0.0 || self.fleet.scale > 1.0 {
            return Err(ConfigError::ScaleOutOfRange(self.fleet.scale));
        }
        if self.fleet.legs_per_taxi.is_empty() {
            return Err(ConfigError::ZeroTaxis);
        }
        if self.fleet.legs_per_taxi.len() > u16::MAX as usize {
            return Err(ConfigError::FleetTooLarge(self.fleet.legs_per_taxi.len()));
        }
        if !self.grid_size_m.is_finite() || self.grid_size_m <= 0.0 {
            return Err(ConfigError::BadGridSize(self.grid_size_m));
        }
        if !self.low_speed_kmh.is_finite() || self.low_speed_kmh <= 0.0 {
            return Err(ConfigError::BadLowSpeed(self.low_speed_kmh));
        }
        if !self.normal_speed_frac.is_finite() || self.normal_speed_frac <= 0.0 {
            return Err(ConfigError::BadNormalSpeedFrac(self.normal_speed_frac));
        }
        if !self.fault.error_budget.is_finite()
            || !(0.0..=1.0).contains(&self.fault.error_budget)
        {
            return Err(ConfigError::BadErrorBudget(self.fault.error_budget));
        }
        if !self.fault.store_error_budget.is_finite()
            || !(0.0..=1.0).contains(&self.fault.store_error_budget)
        {
            return Err(ConfigError::BadErrorBudget(self.fault.store_error_budget));
        }
        if !self.fault.ingest_error_budget.is_finite()
            || !(0.0..=1.0).contains(&self.fault.ingest_error_budget)
        {
            return Err(ConfigError::BadErrorBudget(self.fault.ingest_error_budget));
        }
        if self.fault.max_task_attempts == 0 {
            return Err(ConfigError::ZeroTaskAttempts);
        }
        if let Some(plan) = &self.chaos {
            plan.validate().map_err(ConfigError::Chaos)?;
            if let Some(budget) = plan.error_budget {
                if !budget.is_finite() || !(0.0..=1.0).contains(&budget) {
                    return Err(ConfigError::BadErrorBudget(budget));
                }
            }
            if plan.max_task_attempts == Some(0) {
                return Err(ConfigError::ZeroTaskAttempts);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let p = StudyConfig::paper(1);
        assert_eq!(p.grid_size_m, 200.0);
        assert_eq!(p.low_speed_kmh, 10.0);
        assert_eq!(p.fig10_light_threshold, 9);
        let q = StudyConfig::quick(1);
        assert!(q.fleet.scale < p.fleet.scale);
        let s = StudyConfig::scaled(1, 0.3);
        assert_eq!(s.fleet.scale, 0.3);
    }

    #[test]
    fn builder_defaults_match_paper() {
        let built = StudyConfig::builder(2012).build().expect("valid defaults");
        let paper = StudyConfig::paper(2012);
        assert_eq!(built.fleet.scale, paper.fleet.scale);
        assert_eq!(built.fleet.legs_per_taxi, paper.fleet.legs_per_taxi);
        assert_eq!(built.fleet.days, 365);
        assert_eq!(built.grid_size_m, paper.grid_size_m);
    }

    #[test]
    fn builder_rejects_bad_inputs() {
        assert_eq!(
            StudyConfig::builder(1).taxis(0).build().expect_err("zero taxis"),
            ConfigError::ZeroTaxis
        );
        assert!(matches!(
            StudyConfig::builder(1).scale(f64::NAN).build().expect_err("nan"),
            ConfigError::NonFiniteScale(_)
        ));
        assert!(matches!(
            StudyConfig::builder(1).scale(0.0).build().expect_err("zero"),
            ConfigError::ScaleOutOfRange(_)
        ));
        assert!(matches!(
            StudyConfig::builder(1).scale(1.5).build().expect_err("too big"),
            ConfigError::ScaleOutOfRange(_)
        ));
        assert!(matches!(
            StudyConfig::builder(1).grid_size_m(-5.0).build().expect_err("grid"),
            ConfigError::BadGridSize(_)
        ));
        let d = |y, m, day| CivilDate::new(y, m, day).expect("valid date");
        assert!(matches!(
            StudyConfig::builder(1)
                .period(d(2013, 10, 1), d(2012, 10, 1))
                .build()
                .expect_err("inverted"),
            ConfigError::InvertedPeriod { .. }
        ));
    }

    #[test]
    fn builder_wires_period_and_taxis() {
        let d = |y, m, day| CivilDate::new(y, m, day).expect("valid date");
        let cfg = StudyConfig::builder(1)
            .taxis(3)
            .period(d(2012, 10, 1), d(2013, 1, 1))
            .scale(0.2)
            .build()
            .expect("valid");
        assert_eq!(cfg.fleet.legs_per_taxi.len(), 3);
        assert_eq!(cfg.fleet.days, 92);
        assert_eq!(cfg.fleet.scale, 0.2);
        // More taxis than the paper's 7 cycle the activity profiles.
        let big = StudyConfig::builder(1).taxis(9).build().expect("valid");
        assert_eq!(big.fleet.legs_per_taxi.len(), 9);
        assert_eq!(big.fleet.legs_per_taxi[7], big.fleet.legs_per_taxi[0]);
    }

    #[test]
    fn validate_catches_struct_literal_mistakes() {
        let mut cfg = StudyConfig::paper(1);
        assert!(cfg.validate().is_ok());
        cfg.fleet.legs_per_taxi.clear();
        assert_eq!(cfg.validate().expect_err("no taxis"), ConfigError::ZeroTaxis);
        let mut cfg = StudyConfig::paper(1);
        cfg.fleet.scale = f64::INFINITY;
        assert!(matches!(
            cfg.validate().expect_err("inf"),
            ConfigError::NonFiniteScale(_)
        ));
    }
}
