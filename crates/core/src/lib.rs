//! `taxitrace-core`: the paper's pipeline, end to end.
//!
//! This crate composes every substrate into the study of *"Revealing
//! reliable information from taxi traces: from raw data to information
//! discovery"* (ICDE-W 2022):
//!
//! ```text
//! synthetic Oulu map ─┐
//! road weather ───────┼─► fleet simulator ─► trip store
//!                     │         │
//!                     │         ▼
//!                     │   cleaning (§IV-B/C): order repair, Table 2
//!                     │   segmentation, filters
//!                     │         │
//!                     │         ▼
//!                     │   O-D selection (§IV-D): thick geometry,
//!                     │   transitions, Table 3 funnel
//!                     │         │
//!                     │         ▼
//!                     └─► map-matching (§IV-E) + attribute fusion (§IV-F)
//!                               │
//!                               ▼
//!                  analyses (§V/VI): Table 4, Table 5, Figs. 3–10
//! ```
//!
//! [`Study`] runs the whole pipeline from one seed; [`StudyOutput`] carries
//! the intermediate products; the analysis modules regenerate each table
//! and figure of the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use taxitrace_core::{Study, StudyConfig};
//!
//! let config = StudyConfig::builder(7).scale(0.05).build().expect("valid config");
//! let output = Study::new(config).run().expect("pipeline");
//! let table3 = output.funnel();
//! assert!(!table3.is_empty());
//! ```
//!
//! The pipeline can also be driven stage by stage — each stage returns a
//! typed output carrying a metrics snapshot:
//!
//! ```
//! use taxitrace_core::{Study, StudyConfig};
//!
//! let sim = Study::new(StudyConfig::quick(7)).simulate().expect("simulate");
//! assert!(sim.metrics.counter("sim.sessions").is_some());
//! let cleaned = sim.clean().expect("clean");
//! assert!(!cleaned.segments.is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod checkpoint;
mod coach;
mod config;
mod error;
mod experiment;
mod export;
mod gridstats;
mod mixedanalysis;
mod quarantine;
mod queryapi;
mod results;
mod seasonal;
mod transitions;

pub use checkpoint::config_fingerprint;
// Checkpoint-section codecs, shared with the stream-cursor checkpoint in
// `taxitrace-stream`.
pub use checkpoint::{decode_segments, decode_totals, encode_segments, encode_totals};
pub use coach::{coach_report, CoachConfig, CoachEvent, TripReport};
pub use export::export_csv;
pub use config::{ConfigError, FaultConfig, StudyConfig, StudyConfigBuilder};
pub use error::Error;
pub use experiment::{
    fuse_transition, resolved_fault_policy, resolved_matching_config,
    transition_anomaly, weather_for, Cleaned, OdSelected, Simulated, StageTimings,
    Study, StudyOutput,
};
pub use quarantine::{check_budget, Quarantine, QuarantineEntry, QuarantineReason};
pub use taxitrace_traces::FaultPlan;
pub use taxitrace_cleaning::CleaningTotals;
#[allow(deprecated)]
pub use gridstats::grid_analysis;
pub use gridstats::{CellStat, GridStats, Table5, Table5Class};
pub use mixedanalysis::{mixed_model, mixed_model_with_features, CellEffect, MixedResults};
pub use queryapi::{
    answer, escape_json, CellSpeedRow, OdFlowRow, QueryEngine, QueryRequest, QueryResponse,
    TripSummary,
};
pub use taxitrace_store::QueryError;
pub use results::{
    render_table1, render_table3, render_table4, render_table5, Table4, Table4Row,
};
pub use seasonal::{
    directional_speeds, seasonal_deltas, seasonal_speeds, temperature_analysis,
    DirectionalSplit, Fig10Cell, SeasonalDelta,
};
pub use transitions::{junctions_along, signalized_along, TransitionRecord};
