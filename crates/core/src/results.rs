//! Typed result tables and their text rendering (the `repro` binary prints
//! these next to the paper's published rows).

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
use taxitrace_stats::Summary;

use crate::experiment::StudyOutput;
use crate::gridstats::Table5;

/// One row of Table 4: a six-number summary of one metric for one
/// direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    pub metric: String,
    pub pair: String,
    pub summary: Summary,
}

/// Table 4: summary statistics of the selected features per O-D direction.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Table4 {
    pub rows: Vec<Table4Row>,
}

impl Table4 {
    /// The paper's metric order.
    pub const METRICS: [&'static str; 8] = [
        "route time (h)",
        "route dist (km)",
        "low speed %",
        "normal speed %",
        "traffic lights",
        "junctions",
        "pedestrian crossings",
        "fuel cons. (ml)",
    ];

    /// Computes the table from a study output.
    pub fn compute(output: &StudyOutput) -> Table4 {
        let mut rows = Vec::new();
        for metric in Self::METRICS {
            for pair in ["T-S", "S-T", "T-L", "L-T"] {
                let values: Vec<f64> = output
                    .transitions_of_pair(pair)
                    .map(|t| match metric {
                        "route time (h)" => t.time_h,
                        "route dist (km)" => t.dist_km,
                        "low speed %" => t.low_speed_pct,
                        "normal speed %" => t.normal_speed_pct,
                        "traffic lights" => t.traffic_lights as f64,
                        "junctions" => t.junctions as f64,
                        "pedestrian crossings" => t.pedestrian_crossings as f64,
                        "fuel cons. (ml)" => t.fuel_ml,
                        // lint:allow(panic-free-library): METRICS is a fixed list
                        _ => unreachable!("metric list is fixed"),
                    })
                    .collect();
                if let Some(summary) = Summary::of(&values) {
                    rows.push(Table4Row { metric: metric.into(), pair: pair.into(), summary });
                }
            }
        }
        Table4 { rows }
    }

    /// Rows of one metric, in pair order.
    pub fn metric_rows(&self, metric: &str) -> Vec<&Table4Row> {
        self.rows.iter().filter(|r| r.metric == metric).collect()
    }
}

/// Renders Table 1-style junction pairs (first `limit` rows).
pub fn render_table1(output: &StudyOutput, limit: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<28} {:<28} Junction 2",
        "Junction 1 (EPSG:4326)", "elements"
    );
    let mut pairs = output.city.graph.junction_pairs();
    // Prefer multi-element rows first, like the paper's example clip.
    pairs.sort_by_key(|p| std::cmp::Reverse(p.elements.len()));
    for p in pairs.iter().take(limit) {
        let ids: Vec<String> = p.elements.iter().map(|e| e.to_string()).collect();
        let _ = writeln!(
            s,
            "{:<28} {{{}}} {}",
            p.junction1.to_string(),
            ids.join(","),
            p.junction2
        );
    }
    s
}

/// Renders Table 3 (the funnel).
pub fn render_table3(output: &StudyOutput) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<5} {:>9} {:>9} {:>10} {:>12} {:>12} {:>13}",
        "Car", "Cleaned", "Crossing", "TwoRoads", "Transitions", "WithinCentre", "PostFiltered"
    );
    for r in output.funnel() {
        let _ = writeln!(
            s,
            "{:<5} {:>9} {:>9} {:>10} {:>12} {:>12} {:>13}",
            r.taxi,
            r.segments_total,
            r.any_crossing,
            r.filtered_cleaned,
            r.transitions_total,
            r.within_center,
            r.post_filtered
        );
    }
    s
}

/// Renders Table 4.
pub fn render_table4(t: &Table4) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<22} {:<5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Metric", "Route", "Min", "1st Q.", "Med.", "Mean", "3rd Q.", "Max"
    );
    for r in &t.rows {
        let v = &r.summary;
        let _ = writeln!(
            s,
            "{:<22} {:<5} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            r.metric, r.pair, v.min, v.q1, v.median, v.mean, v.q3, v.max
        );
    }
    s
}

/// Renders Table 5.
pub fn render_table5(t: &Table5) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<26} {:>6} {:>9} {:>9} {:>9} {:>10}",
        "Cell class", "cells", "min", "max", "mean", "var"
    );
    for c in &t.classes {
        let _ = writeln!(
            s,
            "{:<26} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>10.3}",
            c.label, c.cells, c.min, c.max, c.mean, c.var
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out() -> &'static StudyOutput {
        crate::experiment::test_output()
    }

    #[test]
    fn table4_has_rows_for_every_pair_with_data() {
        let o = out();
        let t4 = Table4::compute(o);
        assert!(!t4.rows.is_empty());
        // Every produced row has well-formed summaries.
        for r in &t4.rows {
            assert!(r.summary.min <= r.summary.max);
        }
        // Row group lookup works.
        let low = t4.metric_rows("low speed %");
        assert!(!low.is_empty());
    }

    #[test]
    fn table4_shape_low_speed_ordering() {
        // The paper's headline Table 4 claim: T-S/S-T carry a larger
        // low-speed share than T-L/L-T. Requires enough transitions per
        // pair to be stable, so use medians across available pairs.
        // Pool the two directions of each corridor: per-pair samples are
        // small at test scale, the corridor-level contrast is the claim.
        let o = crate::experiment::test_output();
        let pooled = |pairs: [&str; 2]| {
            let vals: Vec<f64> = o
                .transitions
                .iter()
                .filter(|t| pairs.contains(&t.pair.as_str()))
                .map(|t| t.low_speed_pct)
                .collect();
            (vals.iter().sum::<f64>() / vals.len().max(1) as f64, vals.len())
        };
        let (ts_corridor, n_ts) = pooled(["T-S", "S-T"]);
        let (tl_corridor, n_tl) = pooled(["T-L", "L-T"]);
        if n_ts >= 10 && n_tl >= 10 {
            assert!(
                ts_corridor > tl_corridor - 4.0,
                "T-S corridor low-speed mean {ts_corridor:.1} (n={n_ts}) should exceed \
                 T-L corridor {tl_corridor:.1} (n={n_tl}) — crowd-zone effect"
            );
        }
    }

    #[test]
    fn renderings_nonempty() {
        let o = out();
        let t1 = render_table1(o, 3);
        assert!(t1.contains("POINT("));
        assert_eq!(t1.lines().count(), 4);
        let t3 = render_table3(o);
        assert!(t3.contains("PostFiltered"));
        let t4 = render_table4(&Table4::compute(o));
        assert!(t4.contains("low speed %"));
        let t5 = render_table5(&o.grid_stats(None).table5());
        assert!(t5.contains("lights = 0"));
    }
}
