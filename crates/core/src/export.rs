//! CSV export of every analysis product.
//!
//! The paper's figures were drawn in Quantum GIS from PostGIS query
//! results; the equivalent hand-off here is a directory of CSV files, one
//! per table/figure, that any GIS or plotting tool can consume.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::experiment::StudyOutput;
use crate::mixedanalysis::mixed_model;
use crate::results::Table4;
use crate::seasonal::{seasonal_deltas, temperature_analysis};

/// Writes every analysis product as CSV files under `dir`
/// (created if missing). Returns the list of files written.
pub fn export_csv(output: &StudyOutput, dir: &Path) -> io::Result<Vec<String>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut put = |name: &str, content: String| -> io::Result<()> {
        fs::write(dir.join(name), content)?;
        written.push(name.to_string());
        Ok(())
    };

    // Table 3.
    let mut s = String::from(
        "taxi,segments_total,any_crossing,two_roads,transitions,within_center,post_filtered\n",
    );
    for r in output.funnel() {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{}",
            r.taxi,
            r.segments_total,
            r.any_crossing,
            r.filtered_cleaned,
            r.transitions_total,
            r.within_center,
            r.post_filtered
        );
    }
    put("table3_funnel.csv", s)?;

    // Table 4.
    let t4 = Table4::compute(output);
    let mut s = String::from("metric,pair,min,q1,median,mean,q3,max,n\n");
    for r in &t4.rows {
        let v = &r.summary;
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{},{}",
            r.metric, r.pair, v.min, v.q1, v.median, v.mean, v.q3, v.max, v.n
        );
    }
    put("table4_directions.csv", s)?;

    // Table 5 + Fig. 6 cell data.
    let grid = output.grid_stats(None);
    let mut s = String::from("class,cells,min,max,mean,var\n");
    for c in &grid.table5().classes {
        let _ = writeln!(s, "{},{},{},{},{},{}", c.label, c.cells, c.min, c.max, c.mean, c.var);
    }
    put("table5_cell_classes.csv", s)?;

    let mut s =
        String::from("cell_ix,cell_iy,n,mean_speed_kmh,traffic_lights,bus_stops,ped_crossings\n");
    for (cell, stat) in &grid.cells {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{}",
            cell.ix,
            cell.iy,
            stat.n,
            stat.mean_speed,
            stat.traffic_lights,
            stat.bus_stops,
            stat.pedestrian_crossings
        );
    }
    put("fig6_cells.csv", s)?;

    // Fig. 3/4: point speeds with direction and taxi.
    let mut s = String::from("taxi,pair,x_m,y_m,speed_kmh,timestamp\n");
    for t in &output.transitions {
        for p in &t.points {
            let _ = writeln!(
                s,
                "{},{},{},{},{},{}",
                t.taxi.0,
                t.pair,
                p.pos.x,
                p.pos.y,
                p.speed_kmh,
                p.timestamp.secs()
            );
        }
    }
    put("fig3_fig4_point_speeds.csv", s)?;

    // Fig. 5 seasonal deltas.
    let mut s = String::from("season,n,mean_speed_kmh,delta_kmh\n");
    for d in seasonal_deltas(output) {
        let _ = writeln!(s, "{},{},{},{}", d.season.label(), d.n, d.mean_speed, d.delta_kmh);
    }
    put("fig5_seasons.csv", s)?;

    // Figs. 7–9 mixed-model products.
    if let Ok(m) = mixed_model(output) {
        let mut s = String::from("theoretical,sample_blup\n");
        for q in &m.qq {
            let _ = writeln!(s, "{},{}", q.theoretical, q.sample);
        }
        put("fig7_qq.csv", s)?;

        let mut s = String::from("cell_ix,cell_iy,n,blup_kmh,se,ci_lo,ci_hi\n");
        for c in &m.cells {
            let _ = writeln!(
                s,
                "{},{},{},{},{},{},{}",
                c.cell.ix,
                c.cell.iy,
                c.n,
                c.blup,
                c.se,
                c.blup - 1.96 * c.se,
                c.blup + 1.96 * c.se
            );
        }
        put("fig8_fig9_cell_intercepts.csv", s)?;
    }

    // Fig. 10.
    let mut s = String::from("temperature_class,many_lights,n,mean_low_speed_pct\n");
    for c in temperature_analysis(output) {
        let _ = writeln!(
            s,
            "{},{},{},{}",
            c.class.label(),
            c.many_lights,
            c.n,
            c.mean_low_speed_pct
        );
    }
    put("fig10_temperature.csv", s)?;

    // Transition-level flat table (the analysis workhorse).
    let mut s = String::from(
        "taxi,pair,start_time,season,temp_class,time_h,dist_km,low_speed_pct,\
         normal_speed_pct,traffic_lights,junctions,ped_crossings,fuel_ml\n",
    );
    for t in &output.transitions {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            t.taxi.0,
            t.pair,
            t.start_time.secs(),
            t.season.label(),
            t.temperature_class.label(),
            t.time_h,
            t.dist_km,
            t.low_speed_pct,
            t.normal_speed_pct,
            t.traffic_lights,
            t.junctions,
            t.pedestrian_crossings,
            t.fuel_ml
        );
    }
    put("transitions.csv", s)?;

    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::test_output;

    #[test]
    fn exports_all_files_with_consistent_rows() {
        let out = test_output();
        let dir = std::env::temp_dir().join("taxitrace_export_test");
        let files = export_csv(out, &dir).expect("export succeeds");
        assert!(files.contains(&"table3_funnel.csv".to_string()));
        assert!(files.contains(&"transitions.csv".to_string()));
        assert!(files.len() >= 8, "{files:?}");

        // Row counts line up with the in-memory products.
        let transitions = fs::read_to_string(dir.join("transitions.csv")).expect("read");
        assert_eq!(transitions.lines().count(), out.transitions.len() + 1);
        let funnel = fs::read_to_string(dir.join("table3_funnel.csv")).expect("read");
        assert_eq!(funnel.lines().count(), out.funnel().len() + 1);
        // Header column counts match data column counts.
        for name in &files {
            let body = fs::read_to_string(dir.join(name)).expect("read");
            let mut lines = body.lines();
            let header_cols = lines.next().expect("header").split(',').count();
            if let Some(first) = lines.next() {
                assert_eq!(first.split(',').count(), header_cols, "{name}");
            }
        }
        fs::remove_dir_all(&dir).ok();
    }
}
