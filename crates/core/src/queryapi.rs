//! The unified query surface: one typed request/response pair answered
//! identically by the batch path ([`StudyOutput`]) and the serving layer
//! (`taxitrace-serve`'s snapshot).
//!
//! The four query kinds are the paper's "information discovery" products
//! reshaped as point lookups: O-D flow summaries (Table 4's population),
//! per-cell speeds (Fig. 6), raw trip lookups (Table 1) and the full §V
//! grid analysis (Table 5). Everything funnels through [`answer`], so an
//! HTTP reply and an in-process call over the same data are guaranteed to
//! agree byte-for-byte — the serving parity proptest pins exactly that.

use std::collections::BTreeMap;

use taxitrace_geo::CellId;
use taxitrace_store::QueryError;
use taxitrace_timebase::Timestamp;
use taxitrace_traces::{TaxiId, TripId};

use crate::experiment::StudyOutput;
use crate::gridstats::GridStats;

/// A typed query against study results.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// Per-direction-pair flow summary, optionally restricted to
    /// transitions starting in the half-open window `[from, to)`.
    OdFlow { window: Option<(Timestamp, Timestamp)> },
    /// One grid cell's speed/feature aggregate (all pairs).
    CellSpeed { cell: CellId },
    /// One raw trip by id.
    TripLookup { trip: TripId },
    /// The full §V grid analysis, optionally for one direction pair.
    GridStats { pair: Option<String> },
}

/// One row of an O-D flow answer: a direction pair with its transition
/// count, point count and harmonic mean speed (total distance over total
/// travel time, the paper's trip-level speed notion).
#[derive(Debug, Clone, PartialEq)]
pub struct OdFlowRow {
    pub pair: String,
    pub transitions: usize,
    pub points: usize,
    pub mean_speed_kmh: f64,
}

/// One grid cell's aggregate, keyed by cell indexes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpeedRow {
    pub cell: CellId,
    /// Measured point speeds in the cell.
    pub n: usize,
    pub mean_speed_kmh: f64,
    pub traffic_lights: usize,
    pub bus_stops: usize,
    pub pedestrian_crossings: usize,
}

/// Summary of one stored trip (the session-level Table 1 columns).
#[derive(Debug, Clone, PartialEq)]
pub struct TripSummary {
    pub trip: TripId,
    pub taxi: TaxiId,
    pub start_secs: i64,
    pub end_secs: i64,
    pub points: usize,
    pub distance_m: f64,
    pub fuel_ml: f64,
}

/// A typed answer; variants mirror [`QueryRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Rows sorted by pair name (deterministic across runs and threads).
    OdFlow { rows: Vec<OdFlowRow> },
    /// `None` when the cell holds no measurements.
    CellSpeed { row: Option<CellSpeedRow> },
    /// `None` when no trip has that id.
    TripLookup { trip: Option<TripSummary> },
    /// Cells sorted by id plus the study-area feature totals.
    GridStats { cells: Vec<CellSpeedRow>, feature_totals: [usize; 3] },
}

/// Anything that can answer the unified queries. Implemented by
/// [`StudyOutput`] (batch path) and by `taxitrace-serve`'s snapshot
/// (serving path, with a cached all-pairs grid analysis).
pub trait QueryEngine {
    /// Answers one typed request. Contradictory requests (an inverted
    /// time window) are a typed error rather than an empty result.
    fn query(&self, req: &QueryRequest) -> Result<QueryResponse, QueryError>;
}

impl QueryEngine for StudyOutput {
    fn query(&self, req: &QueryRequest) -> Result<QueryResponse, QueryError> {
        // The batch path recomputes the grid analysis per call; the
        // serving snapshot passes a cached one into the same `answer`.
        answer(self, &self.grid_stats(None), req)
    }
}

/// Answers `req` against a study output plus a precomputed all-pairs grid
/// analysis. The one implementation behind every [`QueryEngine`], so the
/// batch and serving paths cannot drift.
pub fn answer(
    output: &StudyOutput,
    all_cells: &GridStats,
    req: &QueryRequest,
) -> Result<QueryResponse, QueryError> {
    match req {
        QueryRequest::OdFlow { window } => {
            if let Some((from, to)) = window {
                if from > to {
                    return Err(QueryError::EmptyRange {
                        field: "time",
                        min: from.secs() as f64,
                        max: to.secs() as f64,
                    });
                }
            }
            let mut by_pair: BTreeMap<&str, (usize, usize, f64, f64)> = BTreeMap::new();
            for t in &output.transitions {
                if let Some((from, to)) = window {
                    if t.start_time < *from || t.start_time >= *to {
                        continue;
                    }
                }
                let e = by_pair.entry(&t.pair).or_insert((0, 0, 0.0, 0.0));
                e.0 += 1;
                e.1 += t.points.len();
                e.2 += t.dist_km;
                e.3 += t.time_h;
            }
            let rows = by_pair
                .into_iter()
                .map(|(pair, (transitions, points, dist_km, time_h))| OdFlowRow {
                    pair: pair.to_string(),
                    transitions,
                    points,
                    mean_speed_kmh: if time_h > 0.0 { dist_km / time_h } else { 0.0 },
                })
                .collect();
            Ok(QueryResponse::OdFlow { rows })
        }
        QueryRequest::CellSpeed { cell } => Ok(QueryResponse::CellSpeed {
            row: all_cells.cells.get(cell).map(|s| cell_row(*cell, s)),
        }),
        QueryRequest::TripLookup { trip } => Ok(QueryResponse::TripLookup {
            trip: output.store.get(*trip).map(|s| TripSummary {
                trip: s.id,
                taxi: s.taxi,
                start_secs: s.start_time.secs(),
                end_secs: s.end_time.secs(),
                points: s.points.len(),
                distance_m: s.total_distance_m,
                fuel_ml: s.total_fuel_ml,
            }),
        }),
        QueryRequest::GridStats { pair } => {
            let computed;
            let stats = match pair {
                None => all_cells,
                Some(p) => {
                    computed = output.grid_stats(Some(p));
                    &computed
                }
            };
            Ok(QueryResponse::GridStats {
                cells: stats.cells.iter().map(|(c, s)| cell_row(*c, s)).collect(),
                feature_totals: stats.feature_totals,
            })
        }
    }
}

fn cell_row(cell: CellId, s: &crate::gridstats::CellStat) -> CellSpeedRow {
    CellSpeedRow {
        cell,
        n: s.n,
        mean_speed_kmh: s.mean_speed,
        traffic_lights: s.traffic_lights,
        bus_stops: s.bus_stops,
        pedestrian_crossings: s.pedestrian_crossings,
    }
}

impl QueryResponse {
    /// Canonical JSON rendering — the exact bytes the HTTP front end
    /// serves and the load generator fingerprints. Hand-rolled and
    /// deterministic: rows are pre-sorted, floats use Rust's shortest
    /// round-trip formatting.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        match self {
            QueryResponse::OdFlow { rows } => {
                s.push_str("{\"kind\":\"od_flow\",\"rows\":[");
                for (i, r) in rows.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"pair\":\"{}\",\"transitions\":{},\"points\":{},\"mean_speed_kmh\":{}}}",
                        escape_json(&r.pair),
                        r.transitions,
                        r.points,
                        json_f64(r.mean_speed_kmh)
                    ));
                }
                s.push_str("]}");
            }
            QueryResponse::CellSpeed { row } => {
                s.push_str("{\"kind\":\"cell_speed\",\"row\":");
                match row {
                    None => s.push_str("null"),
                    Some(r) => push_cell_row(&mut s, r),
                }
                s.push('}');
            }
            QueryResponse::TripLookup { trip } => {
                s.push_str("{\"kind\":\"trip_lookup\",\"trip\":");
                match trip {
                    None => s.push_str("null"),
                    Some(t) => s.push_str(&format!(
                        "{{\"id\":{},\"taxi\":{},\"start_secs\":{},\"end_secs\":{},\
                         \"points\":{},\"distance_m\":{},\"fuel_ml\":{}}}",
                        t.trip.0,
                        t.taxi.0,
                        t.start_secs,
                        t.end_secs,
                        t.points,
                        json_f64(t.distance_m),
                        json_f64(t.fuel_ml)
                    )),
                }
                s.push('}');
            }
            QueryResponse::GridStats { cells, feature_totals } => {
                s.push_str("{\"kind\":\"grid_stats\",\"cells\":[");
                for (i, r) in cells.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_cell_row(&mut s, r);
                }
                s.push_str(&format!(
                    "],\"feature_totals\":[{},{},{}]}}",
                    feature_totals[0], feature_totals[1], feature_totals[2]
                ));
            }
        }
        s
    }
}

fn push_cell_row(s: &mut String, r: &CellSpeedRow) {
    s.push_str(&format!(
        "{{\"ix\":{},\"iy\":{},\"n\":{},\"mean_speed_kmh\":{},\"traffic_lights\":{},\
         \"bus_stops\":{},\"pedestrian_crossings\":{}}}",
        r.cell.ix,
        r.cell.iy,
        r.n,
        json_f64(r.mean_speed_kmh),
        r.traffic_lights,
        r.bus_stops,
        r.pedestrian_crossings
    ));
}

/// JSON has no NaN/Infinity literals; non-finite aggregates render null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out() -> &'static StudyOutput {
        crate::experiment::test_output()
    }

    #[test]
    fn od_flow_rows_are_sorted_and_consistent() {
        let resp = out().query(&QueryRequest::OdFlow { window: None }).unwrap();
        let QueryResponse::OdFlow { rows } = &resp else { panic!("wrong variant") };
        assert!(!rows.is_empty());
        let pairs: Vec<&str> = rows.iter().map(|r| r.pair.as_str()).collect();
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        assert_eq!(pairs, sorted, "rows must come back pair-sorted");
        let total: usize = rows.iter().map(|r| r.transitions).sum();
        assert_eq!(total, out().transitions.len());
    }

    #[test]
    fn od_flow_window_filters_and_validates() {
        let o = out();
        let t0 = o.transitions.iter().map(|t| t.start_time).min().unwrap();
        let t1 = o.transitions.iter().map(|t| t.start_time).max().unwrap();
        let all = o.query(&QueryRequest::OdFlow { window: Some((t0, Timestamp::from_secs(t1.secs() + 1))) }).unwrap();
        let QueryResponse::OdFlow { rows } = &all else { panic!() };
        assert_eq!(rows.iter().map(|r| r.transitions).sum::<usize>(), o.transitions.len());
        // Inverted window is a typed error, not an empty result.
        let err = o
            .query(&QueryRequest::OdFlow { window: Some((t1, t0)) })
            .unwrap_err();
        assert!(matches!(err, QueryError::EmptyRange { field: "time", .. }));
    }

    #[test]
    fn cell_speed_agrees_with_grid_stats() {
        let o = out();
        let stats = o.grid_stats(None);
        let (&cell, stat) = stats.cells.iter().next().unwrap();
        let resp = o.query(&QueryRequest::CellSpeed { cell }).unwrap();
        let QueryResponse::CellSpeed { row: Some(row) } = resp else { panic!("hit expected") };
        assert_eq!(row.n, stat.n);
        assert_eq!(row.mean_speed_kmh, stat.mean_speed);
        // A far-away cell misses cleanly.
        let miss = o
            .query(&QueryRequest::CellSpeed { cell: CellId { ix: 9999, iy: 9999 } })
            .unwrap();
        assert_eq!(miss, QueryResponse::CellSpeed { row: None });
    }

    #[test]
    fn trip_lookup_round_trips_store_sessions() {
        let o = out();
        let first = &o.store.sessions()[0];
        let resp = o.query(&QueryRequest::TripLookup { trip: first.id }).unwrap();
        let QueryResponse::TripLookup { trip: Some(t) } = resp else { panic!("hit expected") };
        assert_eq!(t.taxi, first.taxi);
        assert_eq!(t.points, first.points.len());
        let miss = o
            .query(&QueryRequest::TripLookup { trip: TripId(u64::MAX) })
            .unwrap();
        assert_eq!(miss, QueryResponse::TripLookup { trip: None });
    }

    #[test]
    fn json_rendering_is_canonical() {
        let o = out();
        let resp = o.query(&QueryRequest::GridStats { pair: None }).unwrap();
        let json = resp.to_json();
        assert!(json.starts_with("{\"kind\":\"grid_stats\""));
        assert!(json.ends_with('}'));
        assert_eq!(json, resp.to_json(), "rendering must be deterministic");
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
