//! The workspace-level error type of the staged study pipeline.
//!
//! Every fallible step on the `Study` → `repro` path returns
//! [`enum@Error`] instead of panicking: configuration validation, store
//! persistence, graph construction, model fitting and result export.

use std::fmt;
use std::io;

use taxitrace_ingest::IngestError;
use taxitrace_roadnet::GraphError;
use taxitrace_stats::LmmError;
use taxitrace_store::StoreError;

use crate::config::ConfigError;

/// Any failure of the study pipeline or its analyses.
#[derive(Debug)]
pub enum Error {
    /// Invalid study configuration (see [`ConfigError`]).
    Config(ConfigError),
    /// Trip-store persistence failed.
    Store(StoreError),
    /// Road-graph construction failed.
    Graph(GraphError),
    /// External-format ingestion failed at the file level (unreadable
    /// header, nothing salvageable). Per-record damage never raises this
    /// — it degrades into the quarantine ledger instead.
    Ingest(IngestError),
    /// Mixed-model fit failed (degenerate design, too few observations).
    Lmm(LmmError),
    /// File I/O failed (CSV export, metrics dump).
    Io { path: String, source: io::Error },
    /// A pipeline invariant did not hold for this input.
    Pipeline(String),
    /// A stage quarantined more than its error budget allows. The run's
    /// data quality is too degraded to report results from; everything up
    /// to the budget is tolerated with degradation metrics instead.
    BudgetExceeded {
        /// Stage that blew its budget
        /// (`ingest`/`store`/`clean`/`od`/`match_fuse`).
        stage: &'static str,
        /// Records quarantined by the stage.
        quarantined: usize,
        /// Records the stage processed.
        total: usize,
        /// Maximum tolerated quarantined fraction.
        budget: f64,
    },
    /// A chaos plan killed the run after the named stage (the stage's
    /// checkpoint is on disk; `Study::resume` must recover from here).
    InjectedKill {
        /// The completed stage after which the kill fired.
        stage: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => write!(f, "invalid study configuration: {e}"),
            Error::Store(e) => write!(f, "trip store error: {e}"),
            Error::Graph(e) => write!(f, "road graph error: {e}"),
            Error::Ingest(e) => write!(f, "external input rejected: {e}"),
            Error::Lmm(e) => write!(f, "mixed model error: {e}"),
            Error::Io { path, source } => write!(f, "I/O error on {path}: {source}"),
            Error::Pipeline(message) => write!(f, "pipeline error: {message}"),
            Error::BudgetExceeded { stage, quarantined, total, budget } => write!(
                f,
                "{stage} stage exceeded its error budget: {quarantined} of {total} \
                 records quarantined (budget {:.1} %)",
                budget * 100.0
            ),
            Error::InjectedKill { stage } => {
                write!(f, "chaos: injected kill after the {stage} stage")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::Graph(e) => Some(e),
            Error::Ingest(e) => Some(e),
            Error::Lmm(e) => Some(e),
            Error::Io { source, .. } => Some(source),
            Error::Pipeline(_) | Error::BudgetExceeded { .. } | Error::InjectedKill { .. } => {
                None
            }
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Self {
        Error::Graph(e)
    }
}

impl From<IngestError> for Error {
    fn from(e: IngestError) -> Self {
        Error::Ingest(e)
    }
}

impl From<LmmError> for Error {
    fn from(e: LmmError) -> Self {
        Error::Lmm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_cover_variants() {
        let e = Error::Pipeline("no transitions".into());
        assert!(e.to_string().contains("no transitions"));
        assert!(std::error::Error::source(&e).is_none());

        let e = Error::Io {
            path: "/tmp/x".into(),
            source: io::Error::new(io::ErrorKind::NotFound, "gone"),
        };
        assert!(e.to_string().contains("/tmp/x"));
        assert!(std::error::Error::source(&e).is_some());

        let e: Error = LmmError::LengthMismatch.into();
        assert!(matches!(e, Error::Lmm(_)));
    }
}
