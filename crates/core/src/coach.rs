//! Driving-coach post-trip analysis.
//!
//! The paper's conclusion: "we have incorporated the preprocessing, map
//! preparation, filtering, map-matching and feature extraction properties
//! to a Driving coach prototype, suggesting post-driving analysis of the
//! trips driven" (citing the authors' TR-C 2015 personalised
//! fuel-efficiency assistant). This module is that prototype layer: it
//! turns a fused [`TransitionRecord`] into a per-trip efficiency report
//! with detected events and advice.

use std::fmt;

use serde::{Deserialize, Serialize};
use taxitrace_traces::FuelModel;

use crate::transitions::TransitionRecord;

/// A coaching-relevant event detected on a trip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoachEvent {
    /// Stationary for this many seconds with the engine running.
    LongIdle { at_point: usize, duration_s: f64 },
    /// Speed dropped by `drop_kmh` within `window_s` seconds.
    HardBraking { at_point: usize, drop_kmh: f64, window_s: f64 },
    /// Driven `over_kmh` above the posted limit.
    Speeding { at_point: usize, over_kmh: f64 },
}

impl fmt::Display for CoachEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoachEvent::LongIdle { duration_s, .. } => {
                write!(f, "idled {duration_s:.0} s with the engine running")
            }
            CoachEvent::HardBraking { drop_kmh, window_s, .. } => {
                write!(f, "hard braking: -{drop_kmh:.0} km/h in {window_s:.0} s")
            }
            CoachEvent::Speeding { over_kmh, .. } => {
                write!(f, "{over_kmh:.0} km/h over the posted limit")
            }
        }
    }
}

/// Per-trip efficiency report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TripReport {
    pub pair: String,
    /// Events in trip order.
    pub events: Vec<CoachEvent>,
    /// Seconds spent stationary.
    pub idle_s: f64,
    /// Seconds above the posted limit.
    pub speeding_s: f64,
    /// Measured fuel, ml.
    pub fuel_ml: f64,
    /// Fuel an ideal steady drive over the same distance would have used,
    /// ml (cruising at the harmonic-mean posted limit, no stops).
    pub ideal_fuel_ml: f64,
    /// 0–100; 100 = at the ideal.
    pub eco_score: f64,
    pub advice: Vec<String>,
}

/// Coaching thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoachConfig {
    /// An idle longer than this is an event, seconds.
    pub long_idle_s: f64,
    /// Speed drop (km/h) within `braking_window_s` counting as hard braking.
    pub hard_brake_kmh: f64,
    pub braking_window_s: f64,
    /// Tolerance above the limit before speeding is flagged, km/h.
    pub speeding_tolerance_kmh: f64,
    pub fuel: FuelModel,
}

impl Default for CoachConfig {
    fn default() -> Self {
        Self {
            long_idle_s: 45.0,
            hard_brake_kmh: 25.0,
            braking_window_s: 4.0,
            speeding_tolerance_kmh: 5.0,
            fuel: FuelModel::default(),
        }
    }
}

/// Produces the post-trip report for one fused transition.
pub fn coach_report(t: &TransitionRecord, config: &CoachConfig) -> TripReport {
    let mut events = Vec::new();
    let mut idle_s = 0.0;
    let mut speeding_s = 0.0;
    let pts = &t.points;

    let mut idle_run = 0.0;
    let mut idle_start = 0usize;
    for i in 0..pts.len().saturating_sub(1) {
        let dt = (pts[i + 1].timestamp - pts[i].timestamp).secs().max(0) as f64;
        // Idle accounting.
        if pts[i].speed_kmh < 2.0 {
            if idle_run == 0.0 {
                idle_start = i;
            }
            idle_run += dt;
            idle_s += dt;
        } else {
            if idle_run >= config.long_idle_s {
                events.push(CoachEvent::LongIdle { at_point: idle_start, duration_s: idle_run });
            }
            idle_run = 0.0;
        }
        // Hard braking.
        let drop = pts[i].speed_kmh - pts[i + 1].speed_kmh;
        if drop >= config.hard_brake_kmh && dt <= config.braking_window_s && dt > 0.0 {
            events.push(CoachEvent::HardBraking { at_point: i, drop_kmh: drop, window_s: dt });
        }
        // Speeding against the matched limit.
        if let Some(Some(limit)) = t.point_limits.get(i) {
            let over = pts[i].speed_kmh - limit;
            if over > config.speeding_tolerance_kmh {
                speeding_s += dt;
                // Flag the worst exceedances as events (one per run start).
                let prev_over = i > 0
                    && matches!(t.point_limits.get(i - 1), Some(Some(pl))
                        if pts[i - 1].speed_kmh - pl > config.speeding_tolerance_kmh);
                if !prev_over {
                    events.push(CoachEvent::Speeding { at_point: i, over_kmh: over });
                }
            }
        }
    }
    if idle_run >= config.long_idle_s {
        events.push(CoachEvent::LongIdle { at_point: idle_start, duration_s: idle_run });
    }

    // Ideal fuel: steady cruise at the mean posted limit over the distance.
    let limits: Vec<f64> = t.point_limits.iter().filter_map(|l| *l).collect();
    let cruise = if limits.is_empty() {
        40.0
    } else {
        limits.iter().sum::<f64>() / limits.len() as f64
    };
    let ideal_fuel_ml = config.fuel.per_km_at(cruise) * t.dist_km;
    let eco_score = if t.fuel_ml > 0.0 {
        (100.0 * ideal_fuel_ml / t.fuel_ml).clamp(0.0, 100.0)
    } else {
        100.0
    };

    let mut advice = Vec::new();
    if idle_s > 60.0 {
        advice.push(format!(
            "engine idled {idle_s:.0} s — switching off at long stops saves ~{:.0} ml",
            config.fuel.idle_ml_s * idle_s
        ));
    }
    if t.low_speed_pct > 30.0 {
        advice.push(
            "over 30% of the trip below 10 km/h — consider routing around the congested centre"
                .to_string(),
        );
    }
    if speeding_s > 30.0 {
        advice.push(format!("{speeding_s:.0} s over the limit — smooth driving uses less fuel"));
    }
    if events.iter().filter(|e| matches!(e, CoachEvent::HardBraking { .. })).count() >= 3 {
        advice.push("several hard-braking events — anticipate traffic lights earlier".into());
    }
    if advice.is_empty() {
        advice.push("smooth trip — nothing to improve".into());
    }

    TripReport {
        pair: t.pair.clone(),
        events,
        idle_s,
        speeding_s,
        fuel_ml: t.fuel_ml,
        ideal_fuel_ml,
        eco_score,
        advice,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::test_output;

    #[test]
    fn reports_for_every_transition() {
        let out = test_output();
        let config = CoachConfig::default();
        for t in &out.transitions {
            let r = coach_report(t, &config);
            assert!((0.0..=100.0).contains(&r.eco_score), "score {}", r.eco_score);
            assert!(r.ideal_fuel_ml > 0.0);
            assert!(r.idle_s >= 0.0);
            assert!(!r.advice.is_empty());
            // Events reference valid points.
            for e in &r.events {
                let at = match e {
                    CoachEvent::LongIdle { at_point, .. }
                    | CoachEvent::HardBraking { at_point, .. }
                    | CoachEvent::Speeding { at_point, .. } => *at_point,
                };
                assert!(at < t.points.len());
            }
        }
    }

    #[test]
    fn ideal_fuel_below_measured_on_stop_and_go_trips() {
        let out = test_output();
        let config = CoachConfig::default();
        // Trips with substantial low-speed share burn more than the ideal.
        let mut checked = 0;
        for t in out.transitions.iter().filter(|t| t.low_speed_pct > 20.0) {
            let r = coach_report(t, &config);
            assert!(
                r.ideal_fuel_ml < r.fuel_ml * 1.05,
                "ideal {:.0} vs measured {:.0}",
                r.ideal_fuel_ml,
                r.fuel_ml
            );
            checked += 1;
        }
        assert!(checked > 0, "some congested trips exist");
    }

    #[test]
    fn congested_trips_score_worse() {
        let out = test_output();
        let config = CoachConfig::default();
        let mut slow = Vec::new();
        let mut fast = Vec::new();
        for t in &out.transitions {
            let r = coach_report(t, &config);
            if t.low_speed_pct > 25.0 {
                slow.push(r.eco_score);
            } else if t.low_speed_pct < 5.0 {
                fast.push(r.eco_score);
            }
        }
        if !slow.is_empty() && !fast.is_empty() {
            let ms = slow.iter().sum::<f64>() / slow.len() as f64;
            let mf = fast.iter().sum::<f64>() / fast.len() as f64;
            assert!(ms < mf, "congested {ms:.0} vs free-flow {mf:.0}");
        }
    }

    #[test]
    fn event_display() {
        let e = CoachEvent::HardBraking { at_point: 3, drop_kmh: 30.0, window_s: 2.0 };
        assert!(e.to_string().contains("hard braking"));
        let i = CoachEvent::LongIdle { at_point: 0, duration_s: 90.0 };
        assert!(i.to_string().contains("idled 90"));
    }
}
