use serde::{Deserialize, Serialize};
use taxitrace_cleaning::TripSegment;
use taxitrace_matching::MatchedTrace;
use taxitrace_roadnet::synth::SyntheticCity;
use taxitrace_roadnet::{ElementId, MapObjectKind, RoadGraph};
use taxitrace_timebase::{Season, Timestamp};
use taxitrace_traces::{RoutePoint, TaxiId};
use taxitrace_weather::TemperatureClass;

/// One post-filtered O-D transition with fused map attributes — the unit of
/// analysis for Table 4, Figs. 3–6 and Fig. 10.
///
/// Identified, as in §IV-F, by the parent trip id together with the
/// transition's start time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionRecord {
    pub taxi: TaxiId,
    pub pair: String,
    pub start_time: Timestamp,
    pub season: Season,
    pub temperature_class: TemperatureClass,
    /// Route points between the origin and destination crossings.
    pub points: Vec<RoutePoint>,
    /// Map-matched traffic-element path.
    pub elements: Vec<ElementId>,
    /// §IV-F fused attributes.
    pub traffic_lights: usize,
    pub junctions: usize,
    pub pedestrian_crossings: usize,
    /// Route time, hours (Table 4's unit).
    pub time_h: f64,
    /// Route distance, km.
    pub dist_km: f64,
    /// Share of route points below the low-speed threshold, percent.
    pub low_speed_pct: f64,
    /// Share of route points at (≥ fraction of) the posted limit, percent.
    pub normal_speed_pct: f64,
    /// Fuel consumed, ml.
    pub fuel_ml: f64,
    /// Posted speed limit under each point (km/h, from the matched
    /// element), aligned with `points`.
    pub point_limits: Vec<Option<f64>>,
}

impl TransitionRecord {
    /// Builds the record by fusing a matched transition with map
    /// attributes.
    #[allow(clippy::too_many_arguments)]
    pub fn fuse(
        city: &SyntheticCity,
        segment: &TripSegment,
        pair: String,
        origin_point: usize,
        destination_point: usize,
        matched: &MatchedTrace,
        temperature_class: TemperatureClass,
        low_speed_kmh: f64,
        normal_speed_frac: f64,
    ) -> Self {
        let points: Vec<RoutePoint> =
            segment.points[origin_point..=destination_point].to_vec();
        // `origin..=destination` slicing guarantees at least one point.
        let start_time = points[0].timestamp;
        let last = &points[points.len() - 1];
        let end_time = last.timestamp;
        let dist_m: f64 = points.windows(2).map(|w| w[0].pos.distance(w[1].pos)).sum();
        let fuel_ml = (last.fuel_ml - points[0].fuel_ml).max(0.0);

        // §IV-F attribute fetch along the matched element path. Traffic
        // lights are counted as signalised junctions passed (a light
        // installation controls the junction, not one approach element).
        let traffic_lights =
            signalized_along(&city.graph, &matched.elements, &city.signalized);
        let pedestrian_crossings = city
            .objects
            .count_along(&matched.elements, MapObjectKind::PedestrianCrossing);
        let junctions = junctions_along(&city.graph, &matched.elements);

        // Speed-share metrics, weighted by *time*: each inter-point gap
        // contributes its duration at the left point's speed, so a 40 s
        // stop at a light counts as 40 s of low speed regardless of how
        // many heartbeat points the device emitted. The posted limit per
        // point comes from the matched element.
        let mut low_s = 0.0f64;
        let mut normal_s = 0.0f64;
        let mut total_s = 0.0f64;
        let limit_of = |elem: ElementId| -> Option<f64> {
            city.graph
                .edge_of_element(elem)
                .map(|e| city.graph.edge(e).speed_limit_kmh)
        };
        // Per-point matched elements (aligned by point_index offset).
        let mut matched_elem: Vec<Option<ElementId>> = vec![None; segment.points.len()];
        for m in &matched.points {
            if m.point_index < matched_elem.len() {
                matched_elem[m.point_index] = Some(m.element);
            }
        }
        let point_limits: Vec<Option<f64>> = matched_elem
            [origin_point..=destination_point]
            .iter()
            .map(|e| e.and_then(limit_of))
            .collect();
        #[allow(clippy::needless_range_loop)] // parallel walk over two arrays
        for i in origin_point..destination_point {
            let p = &segment.points[i];
            let dt = (segment.points[i + 1].timestamp - p.timestamp).secs().max(0) as f64;
            total_s += dt;
            if p.speed_kmh < low_speed_kmh {
                low_s += dt;
            }
            if let Some(limit) = matched_elem[i].and_then(limit_of) {
                if p.speed_kmh >= normal_speed_frac * limit {
                    normal_s += dt;
                }
            }
        }
        let n = total_s.max(1.0);

        Self {
            taxi: segment.taxi,
            pair,
            start_time,
            season: Season::of_timestamp(start_time),
            temperature_class,
            traffic_lights,
            junctions,
            pedestrian_crossings,
            time_h: (end_time - start_time).as_hours_f64(),
            dist_km: dist_m / 1000.0,
            low_speed_pct: 100.0 * low_s / n,
            normal_speed_pct: 100.0 * normal_s / n,
            fuel_ml,
            points,
            elements: matched.elements.clone(),
            point_limits,
        }
    }
}

/// The junction nodes passed along a traffic-element path: each transition
/// between consecutive distinct edges crosses the junction they share.
fn junction_nodes_along(
    graph: &RoadGraph,
    elements: &[ElementId],
) -> Vec<Option<taxitrace_roadnet::NodeId>> {
    let mut nodes = Vec::new();
    let mut prev_edge = None;
    for e in elements {
        let Some(edge) = graph.edge_of_element(*e) else { continue };
        if let Some(prev) = prev_edge {
            if prev != edge {
                let pe = graph.edge(prev);
                let ce = graph.edge(edge);
                let shared = [pe.from, pe.to]
                    .into_iter()
                    .find(|n| *n == ce.from || *n == ce.to);
                // `None` marks a gap-filled discontinuity.
                nodes.push(shared);
            }
        }
        prev_edge = Some(edge);
    }
    nodes
}

/// Counts junction passes along a traffic-element path (§IV-F's
/// "number of junctions" fetch).
pub fn junctions_along(graph: &RoadGraph, elements: &[ElementId]) -> usize {
    junction_nodes_along(graph, elements)
        .into_iter()
        .filter(|n| n.is_none_or(|n| graph.neighbors(n).len() >= 3))
        .count()
}

/// Counts signalised junction passes along a traffic-element path (§IV-F's
/// "number of traffic lights" fetch).
pub fn signalized_along(
    graph: &RoadGraph,
    elements: &[ElementId],
    signalized: &std::collections::HashSet<taxitrace_roadnet::NodeId>,
) -> usize {
    junction_nodes_along(graph, elements)
        .into_iter()
        .filter(|n| n.is_some_and(|n| signalized.contains(&n)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_roadnet::synth::{generate, OuluConfig};
    use taxitrace_roadnet::{dijkstra, CostModel};

    #[test]
    fn junction_count_scales_with_route_length() {
        let city = generate(&OuluConfig::default());
        let short = dijkstra::astar(
            &city.graph,
            city.graph.nearest_node(taxitrace_geo::Point::new(0.0, 0.0)),
            city.graph.nearest_node(taxitrace_geo::Point::new(600.0, 0.0)),
            CostModel::Distance,
        )
        .expect("route exists");
        // Travel time is the drivers' cost model; it routes through the
        // core (the pure-distance optimum is the junction-sparse bypass).
        let long = dijkstra::astar(
            &city.graph,
            city.od_roads[0].outer_node,
            city.od_roads[1].outer_node,
            CostModel::TravelTime,
        )
        .expect("route exists");
        let js = junctions_along(&city.graph, &short.element_ids(&city.graph));
        let jl = junctions_along(&city.graph, &long.element_ids(&city.graph));
        assert!(js >= 2, "short route junctions {js}");
        assert!(jl > js, "long {jl} > short {js}");
        // Table 4 magnitude: 2+ km routes pass ~15–50 junctions.
        assert!((8..=60).contains(&jl), "junctions {jl}");
    }

    #[test]
    fn empty_path_has_no_junctions() {
        let city = generate(&OuluConfig::default());
        assert_eq!(junctions_along(&city.graph, &[]), 0);
    }
}
