use serde::{Deserialize, Serialize};
use taxitrace_geo::{CellId, Grid, Point};
use taxitrace_stats::{qq_points, LmmError, Matrix, QqPoint, RandomIntercept};

use crate::experiment::StudyOutput;

/// Random-intercept prediction for one 200 m cell (Figs. 8–9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellEffect {
    pub cell: CellId,
    pub n: usize,
    /// BLUP of the cell's random intercept (deviation from the grand mean,
    /// km/h) — the paper's coefficients range ca. −15…+20 km/h.
    pub blup: f64,
    /// Prediction standard error (the paper's Fig. 8 confidence limits use
    /// ±1.96 of this).
    pub se: f64,
}

/// Results of the paper's Eq. (3) mixed model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedResults {
    /// Grand-mean point speed `μ̂`, km/h.
    pub grand_mean: f64,
    pub sigma2_e: f64,
    pub sigma2_u: f64,
    pub lambda: f64,
    /// Cell effects sorted by BLUP (Fig. 8's x-axis ordering).
    pub cells: Vec<CellEffect>,
    /// QQ-plot data of the BLUPs (Fig. 7).
    pub qq: Vec<QqPoint>,
    /// Fixed-effect estimates beyond the intercept (empty in the pure
    /// Eq. 3 model), as `(name, coefficient, std. error)`.
    pub fixed_features: Vec<(String, f64, f64)>,
    /// REML likelihood-ratio statistic and p-value for `σ²ᵤ = 0` — the
    /// formal version of the paper's "strong evidence of the effect of
    /// geography on the point speeds".
    pub geography_lrt: f64,
    pub geography_p: f64,
}

fn cell_key(c: CellId) -> u64 {
    ((c.ix as u32 as u64) << 32) | (c.iy as u32 as u64)
}

fn key_cell(k: u64) -> CellId {
    CellId { ix: (k >> 32) as u32 as i32, iy: (k & 0xffff_ffff) as u32 as i32 }
}

/// Fits the paper's Eq. (3): point speed with a Gaussian random intercept
/// per grid cell, "excluding all the cells having no measurement points".
pub fn mixed_model(output: &StudyOutput) -> Result<MixedResults, LmmError> {
    fit(output, false)
}

/// Eq. (2) variant with map features as fixed effects: the cell's traffic
/// light, bus stop and pedestrian crossing counts enter `X`.
pub fn mixed_model_with_features(output: &StudyOutput) -> Result<MixedResults, LmmError> {
    fit(output, true)
}

fn fit(output: &StudyOutput, with_features: bool) -> Result<MixedResults, LmmError> {
    let grid = Grid::new(Point::new(0.0, 0.0), output.config.grid_size_m);
    let mut y = Vec::new();
    let mut groups = Vec::new();
    let mut cells_of_obs: Vec<CellId> = Vec::new();
    for t in &output.transitions {
        for p in &t.points {
            let cell = grid.cell_of(p.pos);
            y.push(p.speed_kmh);
            groups.push(cell_key(cell));
            cells_of_obs.push(cell);
        }
    }

    let (design, names): (Matrix, Vec<String>) = if with_features {
        let feats = output.grid_stats(None);
        let n = y.len();
        let mut m = Matrix::zeros(n, 4);
        for i in 0..n {
            let f = feats.cells.get(&cells_of_obs[i]);
            m[(i, 0)] = 1.0;
            m[(i, 1)] = f.map_or(0.0, |c| c.traffic_lights as f64);
            m[(i, 2)] = f.map_or(0.0, |c| c.bus_stops as f64);
            m[(i, 3)] = f.map_or(0.0, |c| c.pedestrian_crossings as f64);
        }
        (
            m,
            vec![
                "traffic_lights".into(),
                "bus_stops".into(),
                "pedestrian_crossings".into(),
            ],
        )
    } else {
        (Matrix::from_rows(y.len(), 1, vec![1.0; y.len()]), Vec::new())
    };

    let fit = RandomIntercept::default().fit(&y, &design, &groups)?;
    let vtest = fit.variance_test();
    let mut cells: Vec<CellEffect> = fit
        .groups
        .iter()
        .map(|g| CellEffect { cell: key_cell(g.key), n: g.n, blup: g.blup, se: g.se })
        .collect();
    cells.sort_by(|a, b| a.blup.total_cmp(&b.blup));
    let blups: Vec<f64> = cells.iter().map(|c| c.blup).collect();
    let fixed_features = names
        .into_iter()
        .enumerate()
        .map(|(i, name)| (name, fit.fixed[i + 1], fit.fixed_se[i + 1]))
        .collect();
    Ok(MixedResults {
        grand_mean: fit.fixed[0],
        sigma2_e: fit.sigma2_e,
        sigma2_u: fit.sigma2_u,
        lambda: fit.lambda,
        qq: qq_points(&blups),
        cells,
        fixed_features,
        geography_lrt: vtest.lrt,
        geography_p: vtest.p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    

    fn results() -> MixedResults {
        mixed_model(crate::experiment::test_output()).expect("model fits")
    }

    #[test]
    fn cell_key_round_trip() {
        for c in [
            CellId { ix: 0, iy: 0 },
            CellId { ix: -3, iy: 7 },
            CellId { ix: 100, iy: -250 },
        ] {
            assert_eq!(key_cell(cell_key(c)), c);
        }
    }

    #[test]
    fn geography_effect_exists() {
        let r = results();
        assert!(r.cells.len() > 10, "cells {}", r.cells.len());
        // The paper finds strong evidence of a geography effect:
        // substantial between-cell variance and a wide intercept spread.
        assert!(r.sigma2_u > 1.0, "sigma2_u {}", r.sigma2_u);
        // The LRT agrees: the geography effect is overwhelming.
        assert!(r.geography_lrt > 50.0, "LRT {}", r.geography_lrt);
        assert!(r.geography_p < 1e-6, "p {}", r.geography_p);
        let min = r.cells.first().expect("cells").blup;
        let max = r.cells.last().expect("cells").blup;
        assert!(max - min > 5.0, "spread {}", max - min);
        // Grand mean is a plausible urban speed.
        assert!((10.0..40.0).contains(&r.grand_mean), "mean {}", r.grand_mean);
    }

    #[test]
    fn qq_is_monotone_and_matches_cells(){
        let r = results();
        assert_eq!(r.qq.len(), r.cells.len());
        for w in r.qq.windows(2) {
            assert!(w[0].sample <= w[1].sample);
        }
    }

    #[test]
    fn center_cells_are_slower() {
        let out = crate::experiment::test_output();
        let r = mixed_model(out).expect("model fits");
        let grid = Grid::new(Point::new(0.0, 0.0), out.config.grid_size_m);
        let mut center = Vec::new();
        let mut outer = Vec::new();
        for c in &r.cells {
            let p = grid.cell_center(c.cell);
            if p.distance(Point::new(0.0, 0.0)) < 500.0 {
                center.push(c.blup);
            } else if p.distance(Point::new(0.0, 0.0)) > 1200.0 {
                outer.push(c.blup);
            }
        }
        if !center.is_empty() && !outer.is_empty() {
            let mc = center.iter().sum::<f64>() / center.len() as f64;
            let mo = outer.iter().sum::<f64>() / outer.len() as f64;
            assert!(mc < mo, "center {mc} vs outer {mo} (Fig. 9 shape)");
        }
    }

    #[test]
    fn feature_model_finds_negative_light_effect() {
        let out = crate::experiment::test_output();
        let r = mixed_model_with_features(out).expect("model fits");
        assert_eq!(r.fixed_features.len(), 3);
        let lights = &r.fixed_features[0];
        assert_eq!(lights.0, "traffic_lights");
        assert!(
            lights.1 < 0.0,
            "traffic lights should decrease speed, got {}",
            lights.1
        );
    }
}
