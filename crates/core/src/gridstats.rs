use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use taxitrace_geo::{CellId, Grid, Point};
use taxitrace_stats::Summary;
use taxitrace_traces::TraceColumns;

use crate::experiment::StudyOutput;

/// Per-cell aggregate of point speeds and map features.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CellStat {
    /// Number of measured point speeds in the cell.
    pub n: usize,
    /// Mean point speed, km/h.
    pub mean_speed: f64,
    pub traffic_lights: usize,
    pub bus_stops: usize,
    pub pedestrian_crossings: usize,
}

/// The §V 200 m grid analysis: per-cell average speeds joined with per-cell
/// feature counts (Fig. 6's underlying data).
#[derive(Debug, Clone)]
pub struct GridStats {
    pub grid: Grid,
    /// Cells with at least one measurement, sorted by id.
    pub cells: BTreeMap<CellId, CellStat>,
    /// Study-area feature totals {lights, stops, ped. crossings}
    /// (the paper's Fig. 6 caption reports {67, 48, 293}).
    pub feature_totals: [usize; 3],
}

/// Aggregates transition point speeds into grid cells, optionally for one
/// direction pair only (Fig. 6 shows L-T).
#[deprecated(since = "0.1.0", note = "use StudyOutput::grid_stats(pair)")]
pub fn grid_analysis(output: &StudyOutput, pair: Option<&str>) -> GridStats {
    output.grid_stats(pair)
}

impl StudyOutput {
    /// The §V 200 m grid analysis on this study's transitions: per-cell
    /// average speeds joined with per-cell feature counts, optionally for
    /// one direction pair only (Fig. 6 shows L-T). Part of the unified
    /// query surface — `QueryRequest::GridStats` routes here.
    pub fn grid_stats(&self, pair: Option<&str>) -> GridStats {
        let grid = Grid::new(Point::new(0.0, 0.0), self.config.grid_size_m);
        let mut sums: BTreeMap<CellId, (usize, f64)> = BTreeMap::new();
        for t in &self.transitions {
            if let Some(p) = pair {
                if t.pair != p {
                    continue;
                }
            }
            // Bin from struct-of-arrays columns: the loop touches only the
            // coordinate and speed columns, not the full route-point structs.
            let cols = TraceColumns::from_points(&t.points);
            for i in 0..cols.len() {
                let cell = grid.cell_of(Point::new(cols.x[i], cols.y[i]));
                let e = sums.entry(cell).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += cols.speed_kmh[i];
            }
        }

        let area = self.city.graph.bbox();
        let features = self.city.objects.counts_per_cell(&grid, &area);
        let mut cells = BTreeMap::new();
        for (cell, (n, sum)) in sums {
            let f = features.get(&cell).copied().unwrap_or([0, 0, 0]);
            cells.insert(
                cell,
                CellStat {
                    n,
                    mean_speed: sum / n as f64,
                    traffic_lights: f[0],
                    bus_stops: f[1],
                    pedestrian_crossings: f[2],
                },
            );
        }
        let feature_totals = [
            self.city.objects.count_of_kind(taxitrace_roadnet::MapObjectKind::TrafficLight),
            self.city.objects.count_of_kind(taxitrace_roadnet::MapObjectKind::BusStop),
            self.city
                .objects
                .count_of_kind(taxitrace_roadnet::MapObjectKind::PedestrianCrossing),
        ];
        GridStats { grid, cells, feature_totals }
    }
}

/// One class column of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Table5Class {
    pub label: &'static str,
    pub cells: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub var: f64,
}

/// Table 5: the effect of traffic lights and bus stops on cell average
/// speed, in the paper's four cell classes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table5 {
    pub classes: Vec<Table5Class>,
}

impl GridStats {
    /// Computes Table 5 from the per-cell statistics.
    pub fn table5(&self) -> Table5 {
        let class = |label: &'static str, pred: &dyn Fn(&CellStat) -> bool| {
            let speeds: Vec<f64> = self
                .cells
                .values()
                .filter(|c| pred(c))
                .map(|c| c.mean_speed)
                .collect();
            let s = Summary::of(&speeds);
            Table5Class {
                label,
                cells: speeds.len(),
                min: s.map_or(f64::NAN, |s| s.min),
                max: s.map_or(f64::NAN, |s| s.max),
                mean: s.map_or(f64::NAN, |s| s.mean),
                var: s.map_or(f64::NAN, |s| s.var),
            }
        };
        Table5 {
            classes: vec![
                class("lights = 0", &|c| c.traffic_lights == 0),
                class("lights = 0 & stops = 0", &|c| {
                    c.traffic_lights == 0 && c.bus_stops == 0
                }),
                class("lights > 0 & stops > 0", &|c| {
                    c.traffic_lights > 0 && c.bus_stops > 0
                }),
                class("lights > 0", &|c| c.traffic_lights > 0),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    

    fn stats() -> GridStats {
        crate::experiment::test_output().grid_stats(None)
    }

    #[test]
    fn cells_cover_study_area() {
        let g = stats();
        assert!(g.cells.len() > 20, "cells {}", g.cells.len());
        assert_eq!(g.feature_totals, [67, 48, 293]);
        for c in g.cells.values() {
            assert!(c.n > 0);
            assert!((0.0..=120.0).contains(&c.mean_speed));
        }
    }

    #[test]
    fn table5_shape_matches_paper() {
        let g = stats();
        let t5 = g.table5();
        assert_eq!(t5.classes.len(), 4);
        let no_lights = &t5.classes[0];
        let with_lights = &t5.classes[3];
        assert!(no_lights.cells > 0 && with_lights.cells > 0);
        // Paper's Table 5 shape: cells with lights are slower on average
        // and much less variable.
        assert!(
            with_lights.mean < no_lights.mean,
            "lights {} vs none {}",
            with_lights.mean,
            no_lights.mean
        );
        assert!(
            with_lights.var < no_lights.var,
            "var lights {} vs none {}",
            with_lights.var,
            no_lights.var
        );
    }

    #[test]
    fn pair_filter_restricts_points() {
        let out = crate::experiment::test_output();
        let all = out.grid_stats(None);
        let pair = out.pairs().first().cloned();
        if let Some(p) = pair {
            let only = out.grid_stats(Some(&p));
            let n_all: usize = all.cells.values().map(|c| c.n).sum();
            let n_only: usize = only.cells.values().map(|c| c.n).sum();
            assert!(n_only <= n_all);
            assert!(n_only > 0);
        }
    }
}
