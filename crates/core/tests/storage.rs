//! Storage-integrity integration tests: the on-disk failure model end to
//! end, from a seeded corruption plan through salvage, quarantine, error
//! budgets, and `fsck --repair`.
//!
//! The central claims verified here:
//!
//! * replaying a **healthy** v2 store produces the same study results as
//!   the live simulation that wrote it;
//! * seeded bit-flip + torn-tail corruption loses **only** the damaged
//!   records: the pipeline completes, the lost records land in the
//!   quarantine ledger with typed reasons, and the outcome is
//!   deterministic across runs;
//! * a zero store budget turns that same damage into a structured
//!   [`Error::BudgetExceeded`] at the `store` stage;
//! * a store written under a different config fingerprint is refused;
//! * `fsck` repair rewrites a clean container that rescans clean and
//!   replays with an empty ledger.

use std::path::{Path, PathBuf};

use taxitrace_core::{Error, FaultPlan, QuarantineReason, Study, StudyConfig, StudyOutput};
use taxitrace_store::codec::record_spans;
use taxitrace_store::fsck::fsck_path;
use taxitrace_store::StoreError;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("taxitrace-storage-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

fn assert_same_results(a: &StudyOutput, b: &StudyOutput) {
    assert_eq!(a.segments, b.segments);
    assert_eq!(a.funnel_rows, b.funnel_rows);
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.cleaning, b.cleaning);
    assert_eq!(a.quarantine, b.quarantine);
}

/// Writes the quick(7) population to `dir/trips.tts` and returns the path.
fn saved_store(dir: &Path) -> PathBuf {
    let path = dir.join("trips.tts");
    let sim = Study::new(StudyConfig::quick(7)).simulate().expect("simulate");
    sim.save_store(&path).expect("save store");
    path
}

/// Applies a seeded bit-flip + torn-tail plan to the container at `path`.
fn corrupt_store(path: &Path) -> Vec<&'static str> {
    let mut bytes = std::fs::read(path).expect("read store");
    let spans = record_spans(&bytes).expect("spans");
    let plan = FaultPlan {
        seed: 21,
        disk_bit_flips: 2,
        disk_truncate_bytes: 37,
        ..FaultPlan::default()
    };
    let applied = plan.corrupt_file(0, &mut bytes, &spans);
    assert!(!applied.is_empty(), "plan must apply at least one fault");
    std::fs::write(path, &bytes).expect("write corrupted store");
    applied
}

#[test]
fn healthy_store_replay_equals_live_run() {
    let dir = fresh_dir("healthy");
    let path = saved_store(&dir);
    let live = Study::new(StudyConfig::quick(7)).run().expect("live run");
    let replayed =
        Study::new(StudyConfig::quick(7)).run_from_store(&path).expect("replay run");
    assert_same_results(&live, &replayed);
    assert!(replayed.quarantine.is_empty());
    // The replay path reports what it read; a healthy file has no
    // corruption counters at all.
    assert!(replayed.metrics.counter("store.records_total").is_some_and(|v| v > 0));
    assert_eq!(
        replayed.metrics.counter("store.records_total"),
        replayed.metrics.counter("store.records_valid"),
    );
    assert!(replayed.metrics.counter("store.corrupt_records").is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corruption_loses_only_the_damaged_records() {
    let dir = fresh_dir("salvage");
    let path = saved_store(&dir);
    let applied = corrupt_store(&path);
    assert!(applied.contains(&"disk_bit_flip"));
    assert!(applied.contains(&"disk_truncate"));

    let a = Study::new(StudyConfig::quick(7)).run_from_store(&path).expect("salvage run a");
    let b = Study::new(StudyConfig::quick(7)).run_from_store(&path).expect("salvage run b");
    assert_same_results(&a, &b);

    // Every lost record is a typed ledger entry at the store stage.
    let store_entries: Vec<_> =
        a.quarantine.entries().iter().filter(|e| e.stage == "store").collect();
    assert!(!store_entries.is_empty(), "corruption must quarantine records");
    assert!(store_entries
        .iter()
        .all(|e| matches!(
            e.reason,
            QuarantineReason::CorruptRecord
                | QuarantineReason::TornTail
                | QuarantineReason::HeaderMismatch
        )));
    // The torn tail guarantees at least one TornTail entry; the payload
    // bit flips guarantee at least one CorruptRecord entry.
    assert!(store_entries.iter().any(|e| e.reason == QuarantineReason::TornTail));
    assert!(store_entries.iter().any(|e| e.reason == QuarantineReason::CorruptRecord));

    // Metrics agree with the ledger, and the pipeline still delivered.
    assert_eq!(
        a.metrics.counter("store.corrupt_records"),
        Some(store_entries.len() as u64)
    );
    assert_eq!(
        a.metrics.counter("quarantine.stage.store"),
        Some(store_entries.len() as u64)
    );
    let total = a.metrics.counter("store.records_total").expect("records_total");
    let valid = a.metrics.counter("store.records_valid").expect("records_valid");
    assert_eq!(total - valid, store_entries.len() as u64, "only damaged records lost");
    assert!(!a.transitions.is_empty(), "degraded, not destroyed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_store_budget_is_a_structured_error() {
    let dir = fresh_dir("budget");
    // The budget is part of the config, so the store must be written under
    // the same config or the fingerprint gate fires first.
    let mut config = StudyConfig::quick(7);
    config.fault.store_error_budget = 0.0;
    let path = dir.join("trips.tts");
    let sim = Study::new(config.clone()).simulate().expect("simulate");
    sim.save_store(&path).expect("save store");
    corrupt_store(&path);
    match Study::new(config).run_from_store(&path) {
        Err(Error::BudgetExceeded { stage, quarantined, total, budget }) => {
            assert_eq!(stage, "store");
            assert!(quarantined > 0 && quarantined <= total);
            assert_eq!(budget, 0.0);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_fingerprint_is_refused() {
    let dir = fresh_dir("fingerprint");
    let path = saved_store(&dir);
    // Same store, different study config: the fingerprint gate must refuse
    // to silently analyze another study's data.
    match Study::new(StudyConfig::quick(8)).run_from_store(&path) {
        Err(Error::Store(StoreError::BadFormat(msg))) => {
            assert!(msg.contains("fingerprint"), "{msg}");
        }
        other => panic!("expected a fingerprint error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsck_repair_round_trips_to_a_clean_store() {
    let dir = fresh_dir("fsck");
    let path = saved_store(&dir);
    corrupt_store(&path);

    // First pass reports the damage without touching the file.
    let before = std::fs::read(&path).expect("read");
    let reports = fsck_path(&path, false).expect("fsck scan");
    assert_eq!(reports.len(), 1);
    assert!(!reports[0].is_clean());
    assert!(reports[0].records_valid < reports[0].records_declared);
    assert_eq!(before, std::fs::read(&path).expect("reread"), "scan must not write");

    // Repair rewrites a clean v2 container from the salvageable records...
    let reports = fsck_path(&path, true).expect("fsck repair");
    assert_eq!(reports.len(), 1);
    assert!(reports[0].repaired.is_some());

    // ...which rescans with zero errors and replays with an empty ledger.
    let reports = fsck_path(&path, false).expect("rescan");
    assert!(reports[0].is_clean(), "repaired file must be clean: {:?}", reports[0]);
    let out = Study::new(StudyConfig::quick(7)).run_from_store(&path).expect("replay");
    assert!(out.quarantine.is_empty());
    assert!(out.metrics.counter("store.corrupt_records").is_none());
    let _ = std::fs::remove_dir_all(&dir);
}
