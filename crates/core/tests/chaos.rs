//! Chaos-harness integration tests: fault injection, quarantine, error
//! budgets, and checkpoint/resume — the pipeline's failure model end to
//! end.
//!
//! The central claims verified here:
//!
//! * a **default** (no-chaos) plan changes nothing — the fault-tolerant
//!   pipeline is byte-identical to the historical one on healthy data;
//! * chaos faults are **deterministic** in the plan seed: same plan, same
//!   results, same quarantine ledger, across runs *and* across a
//!   kill/`Study::resume` boundary;
//! * degradation is **bounded and typed**: within the error budget a run
//!   succeeds with a populated ledger, past it the run fails with a
//!   structured [`Error::BudgetExceeded`], and no injected panic ever
//!   escapes the executor.

use std::path::PathBuf;

use taxitrace_core::{
    Error, FaultPlan, QuarantineReason, Study, StudyConfig, StudyOutput,
};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("taxitrace-chaos-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A trace-fault plan aggressive enough to quarantine sessions at a quick
/// scale, while staying within a generous error budget.
fn faulty_plan() -> FaultPlan {
    FaultPlan {
        seed: 9,
        p_teleport: 0.04,
        p_clock_freeze: 0.04,
        p_stuck: 0.03,
        p_dropout: 0.03,
        task_panic_one_in: 97,
        error_budget: Some(0.5),
        ..FaultPlan::default()
    }
}

fn assert_same_results(a: &StudyOutput, b: &StudyOutput) {
    assert_eq!(a.segments, b.segments);
    assert_eq!(a.funnel_rows, b.funnel_rows);
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.cleaning, b.cleaning);
    assert_eq!(a.quarantine, b.quarantine);
    // Byte-level check over the full result surface.
    assert_eq!(
        format!("{:?}{:?}{:?}", a.transitions, a.funnel_rows, a.quarantine),
        format!("{:?}{:?}{:?}", b.transitions, b.funnel_rows, b.quarantine),
    );
}

#[test]
fn default_plan_changes_nothing() {
    let plain = Study::new(StudyConfig::quick(7)).run().expect("plain run");
    let mut config = StudyConfig::quick(7);
    config.chaos = Some(FaultPlan::default());
    let with_plan = Study::new(config).run().expect("default-plan run");
    assert!(plain.quarantine.is_empty());
    assert!(with_plan.quarantine.is_empty());
    assert_same_results(&plain, &with_plan);
    assert_eq!(plain.cache_stats, with_plan.cache_stats);
    assert!(plain.metrics.counter("quarantine.total").is_none());
}

#[test]
fn chaos_faults_quarantine_deterministically() {
    let mut config = StudyConfig::quick(7);
    config.chaos = Some(faulty_plan());
    let a = Study::new(config.clone()).run().expect("chaos run a");
    let b = Study::new(config).run().expect("chaos run b");

    assert!(!a.quarantine.is_empty(), "aggressive plan must quarantine something");
    assert_same_results(&a, &b);

    // The ledger carries typed reasons from the trace-fault taxonomy and
    // the metrics surface reports the same totals.
    let by_reason = a.quarantine.by_reason();
    assert!(by_reason.len() >= 2, "expected several reasons, got {by_reason:?}");
    assert_eq!(
        a.metrics.counter("quarantine.total"),
        Some(a.quarantine.len() as u64)
    );
    assert!(a.metrics.counter("chaos.sessions_faulted").is_some_and(|v| v > 0));
    // Degraded, not destroyed: the study still produces transitions.
    assert!(!a.transitions.is_empty());
}

#[test]
fn injected_panics_are_isolated_and_quarantined() {
    let mut config = StudyConfig::quick(11);
    config.chaos = Some(FaultPlan {
        task_panic_one_in: 13,
        error_budget: Some(0.5),
        ..FaultPlan::default()
    });
    let out = Study::new(config).run().expect("panics stay inside the executor");
    let panics =
        out.quarantine.entries().iter().filter(|e| e.reason == QuarantineReason::TaskPanic);
    let n = panics.count();
    assert!(n > 0, "one in 13 trips must panic at quick scale");
    assert_eq!(out.metrics.counter("exec.task_panics"), Some(n as u64));
    assert_eq!(out.metrics.counter("quarantine.stage.clean"), Some(n as u64));
    for e in out.quarantine.entries() {
        assert!(e.detail.contains("chaos"), "panic message surfaced: {e:?}");
    }
}

#[test]
fn blown_budget_is_a_structured_error() {
    let mut config = StudyConfig::quick(7);
    config.chaos = Some(FaultPlan {
        seed: 9,
        p_teleport: 0.4,
        error_budget: Some(0.0),
        ..FaultPlan::default()
    });
    match Study::new(config).run() {
        Err(Error::BudgetExceeded { stage, quarantined, total, budget }) => {
            assert_eq!(stage, "clean");
            assert!(quarantined > 0 && quarantined <= total);
            assert_eq!(budget, 0.0);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn gap_budget_exhaustion_quarantines_unmatched_legs() {
    let baseline = Study::new(StudyConfig::quick(7)).run().expect("baseline");
    let mut config = StudyConfig::quick(7);
    config.chaos = Some(FaultPlan {
        gap_fill_max_expansions: Some(1),
        error_budget: Some(1.0),
        ..FaultPlan::default()
    });
    let starved = Study::new(config).run().expect("starved run");
    let unmatched: Vec<_> = starved
        .quarantine
        .entries()
        .iter()
        .filter(|e| e.reason == QuarantineReason::UnmatchedGap)
        .collect();
    assert!(!unmatched.is_empty(), "a 1-expansion budget must strand gap fills");
    assert!(unmatched.iter().all(|e| e.stage == "match_fuse"));
    assert_eq!(
        starved.transitions.len() + unmatched.len(),
        baseline.transitions.len(),
        "every baseline transition is either fused or quarantined"
    );
    assert!(starved.metrics.counter("match.gap_budget_exhausted").is_some_and(|v| v > 0));
}

#[test]
fn kill_and_resume_is_byte_identical() {
    let dir = fresh_dir("kill-resume");
    let mut config = StudyConfig::quick(7);
    config.chaos = Some(FaultPlan {
        kill_after_stage: Some("clean".into()),
        ..faulty_plan()
    });
    let study = Study::new(config.clone());

    // First run dies right after checkpointing the clean stage.
    match study.run_with_checkpoints(&dir) {
        Err(Error::InjectedKill { stage }) => assert_eq!(stage, "clean"),
        other => panic!("expected the injected kill, got {other:?}"),
    }
    assert!(dir.join("simulate.ttck").exists());
    assert!(dir.join("clean.ttck").exists());

    // Resume completes from the checkpoint (the killed stage is loaded,
    // not re-run, so the kill does not re-fire) and matches an unkilled
    // run of the same config bit for bit.
    let resumed = study.resume(&dir).expect("resume after kill");
    let unkilled = Study::new(config).run().expect("straight-through run");
    assert_same_results(&resumed, &unkilled);
    assert!(!resumed.quarantine.is_empty());
    // Fault-injection counters describe the data, so the resumed run
    // reports them even though this process never ran the injection.
    assert_eq!(
        resumed.metrics.counter("chaos.sessions_faulted"),
        unkilled.metrics.counter("chaos.sessions_faulted")
    );
    assert!(resumed.metrics.counter("chaos.sessions_faulted").is_some_and(|v| v > 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_write_failure_recovers_on_retry() {
    let dir = fresh_dir("ckfail");
    let mut config = StudyConfig::quick(7);
    config.chaos = Some(FaultPlan {
        fail_checkpoint_stage: Some("simulate".into()),
        ..FaultPlan::default()
    });
    let study = Study::new(config.clone());
    match study.run_with_checkpoints(&dir) {
        Err(Error::Store(_)) => {}
        other => panic!("expected the injected store error, got {other:?}"),
    }
    let retried = study.resume(&dir).expect("retry survives the one-shot fault");
    let plain = Study::new(config).run().expect("plain run");
    assert_same_results(&retried, &plain);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_checkpoints_are_ignored_on_config_change() {
    let dir = fresh_dir("stale");
    Study::new(StudyConfig::quick(7)).run_with_checkpoints(&dir).expect("seed 7");
    // Same directory, different config: the fingerprint mismatch forces a
    // clean recompute instead of silently mixing two studies.
    let fresh = Study::new(StudyConfig::quick(8)).run_with_checkpoints(&dir).expect("seed 8");
    let reference = Study::new(StudyConfig::quick(8)).run().expect("reference");
    assert_same_results(&fresh, &reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointed_run_equals_plain_run_when_healthy() {
    let dir = fresh_dir("healthy");
    let a = Study::new(StudyConfig::quick(5)).run_with_checkpoints(&dir).expect("first");
    // A second call resumes from the od checkpoint and only re-runs the
    // final stage.
    let b = Study::new(StudyConfig::quick(5)).run_with_checkpoints(&dir).expect("second");
    let plain = Study::new(StudyConfig::quick(5)).run().expect("plain");
    assert_same_results(&a, &plain);
    assert_same_results(&b, &plain);
    let _ = std::fs::remove_dir_all(&dir);
}
