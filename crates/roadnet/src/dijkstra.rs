//! Dijkstra shortest paths over the road graph.
//!
//! The paper uses "the Dijkstra Shortest Path algorithm from pgRouting … to
//! fill the gaps, when data points are too far from each other" during
//! map-matching. Our fleet simulator additionally uses weighted variants for
//! free route choice (taxi drivers pick routes "based on their own silent
//! knowledge", which we model as perturbed edge costs).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use taxitrace_geo::Polyline;

use crate::{Edge, EdgeId, NodeId, RoadGraph};

/// Edge cost model for shortest paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// Minimise travelled metres.
    Distance,
    /// Minimise free-flow travel time (length / speed limit).
    TravelTime,
}

impl CostModel {
    /// Cost of one edge under this model.
    #[inline]
    pub fn cost(&self, e: &Edge) -> f64 {
        match self {
            CostModel::Distance => e.length_m,
            // km/h → m/s.
            CostModel::TravelTime => e.length_m / (e.speed_limit_kmh / 3.6),
        }
    }
}

/// A shortest path through the road graph.
#[derive(Debug, Clone)]
pub struct RoutePath {
    /// Visited vertices, source first.
    pub nodes: Vec<NodeId>,
    /// Traversed edges (`nodes.len() - 1` of them).
    pub edges: Vec<EdgeId>,
    /// Total cost under the query's model.
    pub cost: f64,
    /// Total length in metres.
    pub length_m: f64,
}

impl RoutePath {
    /// Merged geometry of the path, oriented source → target.
    ///
    /// Returns `None` for a trivial path (source == target, no edges).
    pub fn polyline(&self, graph: &RoadGraph) -> Option<Polyline> {
        let mut out: Option<Polyline> = None;
        for (i, &eid) in self.edges.iter().enumerate() {
            let e = graph.edge(eid);
            let part = if e.from == self.nodes[i] {
                e.geometry.clone()
            } else {
                e.geometry.reversed()
            };
            match &mut out {
                None => out = Some(part),
                Some(g) => g.extend_with(&part),
            }
        }
        out
    }

    /// Traffic-element id sequence of the path, in travel order.
    pub fn element_ids(&self, graph: &RoadGraph) -> Vec<crate::ElementId> {
        let mut out = Vec::new();
        for (i, &eid) in self.edges.iter().enumerate() {
            let e = graph.edge(eid);
            if e.from == self.nodes[i] {
                out.extend(e.elements.iter().copied());
            } else {
                out.extend(e.elements.iter().rev().copied());
            }
        }
        out
    }
}

#[derive(Debug, PartialEq)]
struct QueueItem {
    cost: f64,
    node: NodeId,
}

impl Eq for QueueItem {}

impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; ties broken by node id for determinism.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("finite costs")
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest path with a caller-supplied edge weight.
///
/// `weight` must return a non-negative cost for every edge; the simulator
/// passes randomly perturbed costs here to model individual route choice.
pub fn shortest_path_weighted(
    graph: &RoadGraph,
    from: NodeId,
    to: NodeId,
    mut weight: impl FnMut(&Edge) -> f64,
) -> Option<RoutePath> {
    let n = graph.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[from.0 as usize] = 0.0;
    heap.push(QueueItem { cost: 0.0, node: from });

    while let Some(QueueItem { cost, node }) = heap.pop() {
        if node == to {
            break;
        }
        if cost > dist[node.0 as usize] {
            continue; // stale entry
        }
        for &(eid, nb) in graph.neighbors(node) {
            let w = weight(graph.edge(eid));
            debug_assert!(w >= 0.0, "negative edge weight");
            let next = cost + w;
            if next < dist[nb.0 as usize] {
                dist[nb.0 as usize] = next;
                prev[nb.0 as usize] = Some((node, eid));
                heap.push(QueueItem { cost: next, node: nb });
            }
        }
    }

    if dist[to.0 as usize].is_infinite() {
        return None;
    }
    // Reconstruct.
    let mut nodes = vec![to];
    let mut edges = Vec::new();
    let mut cur = to;
    while cur != from {
        let (p, e) = prev[cur.0 as usize].expect("reachable node has predecessor");
        nodes.push(p);
        edges.push(e);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    let length_m = edges.iter().map(|&e| graph.edge(e).length_m).sum();
    Some(RoutePath { nodes, edges, cost: dist[to.0 as usize], length_m })
}

/// Shortest path under a standard [`CostModel`].
pub fn shortest_path(
    graph: &RoadGraph,
    from: NodeId,
    to: NodeId,
    model: CostModel,
) -> Option<RoutePath> {
    shortest_path_weighted(graph, from, to, |e| model.cost(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ElementId, FlowDirection, FunctionalClass, TrafficElement};
    use taxitrace_geo::{GeoPoint, LocalProjection, Point, Polyline};

    fn elem(id: u64, pts: &[(f64, f64)], flow: FlowDirection, limit: f64) -> TrafficElement {
        TrafficElement {
            id: ElementId(id),
            geometry: Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
                .unwrap(),
            class: FunctionalClass::Local,
            speed_limit_kmh: limit,
            flow,
        }
    }

    fn proj() -> LocalProjection {
        LocalProjection::new(GeoPoint::new(25.4651, 65.0121))
    }

    /// A square with a diagonal shortcut that has a low speed limit:
    ///
    /// ```text
    /// (0,100) --- (100,100)
    ///    |      /    |
    /// (0,0) ---- (100,0)
    /// ```
    fn square() -> RoadGraph {
        let mut els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::Both, 50.0),
            elem(2, &[(100.0, 0.0), (100.0, 100.0)], FlowDirection::Both, 50.0),
            elem(3, &[(0.0, 0.0), (0.0, 100.0)], FlowDirection::Both, 50.0),
            elem(4, &[(0.0, 100.0), (100.0, 100.0)], FlowDirection::Both, 50.0),
            elem(5, &[(0.0, 0.0), (100.0, 100.0)], FlowDirection::Both, 10.0),
        ];
        els.extend(corner_stubs(10));
        RoadGraph::build(&els, proj()).unwrap()
    }

    /// Short dead-end stubs at the four square corners so every corner is a
    /// junction (otherwise degree-2 corners merge into chains).
    fn corner_stubs(base_id: u64) -> Vec<TrafficElement> {
        [(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)]
            .iter()
            .enumerate()
            .map(|(k, &(x, y))| {
                elem(
                    base_id + k as u64,
                    &[(x, y), (x - 10.0, y - 10.0)],
                    FlowDirection::Both,
                    30.0,
                )
            })
            .collect()
    }

    #[test]
    fn distance_prefers_diagonal() {
        let g = square();
        let a = g.nearest_node(Point::new(0.0, 0.0));
        let b = g.nearest_node(Point::new(100.0, 100.0));
        let p = shortest_path(&g, a, b, CostModel::Distance).unwrap();
        assert_eq!(p.edges.len(), 1);
        assert!((p.length_m - 141.42).abs() < 0.1);
    }

    #[test]
    fn travel_time_avoids_slow_diagonal() {
        let g = square();
        let a = g.nearest_node(Point::new(0.0, 0.0));
        let b = g.nearest_node(Point::new(100.0, 100.0));
        let p = shortest_path(&g, a, b, CostModel::TravelTime).unwrap();
        // Around: 200 m at 50 km/h = 14.4 s; diagonal: 141 m at 10 km/h = 50.9 s.
        assert_eq!(p.edges.len(), 2);
        assert!((p.length_m - 200.0).abs() < 1e-6);
    }

    #[test]
    fn trivial_path() {
        let g = square();
        let a = g.nearest_node(Point::new(0.0, 0.0));
        let p = shortest_path(&g, a, a, CostModel::Distance).unwrap();
        assert!(p.edges.is_empty());
        assert_eq!(p.cost, 0.0);
        assert!(p.polyline(&g).is_none());
    }

    #[test]
    fn unreachable_returns_none() {
        // Two disconnected components.
        let els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::Both, 50.0),
            elem(2, &[(1000.0, 0.0), (1100.0, 0.0)], FlowDirection::Both, 50.0),
        ];
        let g = RoadGraph::build(&els, proj()).unwrap();
        let a = g.nearest_node(Point::new(0.0, 0.0));
        let b = g.nearest_node(Point::new(1100.0, 0.0));
        assert!(shortest_path(&g, a, b, CostModel::Distance).is_none());
    }

    #[test]
    fn one_way_respected() {
        // One-way ring: can go clockwise only. Corner stubs make every
        // corner a junction.
        let mut els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::WithDigitization, 50.0),
            elem(2, &[(100.0, 0.0), (100.0, 100.0)], FlowDirection::WithDigitization, 50.0),
            elem(3, &[(100.0, 100.0), (0.0, 100.0)], FlowDirection::WithDigitization, 50.0),
            elem(4, &[(0.0, 100.0), (0.0, 0.0)], FlowDirection::WithDigitization, 50.0),
        ];
        els.extend(corner_stubs(10));
        let els = els;
        let g = RoadGraph::build(&els, proj()).unwrap();
        let a = g.nearest_node(Point::new(0.0, 0.0));
        let b = g.nearest_node(Point::new(0.0, 100.0));
        let p = shortest_path(&g, a, b, CostModel::Distance).unwrap();
        // Direct edge is one-way the wrong way; must go around: 300 m.
        assert!((p.length_m - 300.0).abs() < 1e-6);
    }

    #[test]
    fn polyline_is_contiguous() {
        let g = square();
        let a = g.nearest_node(Point::new(0.0, 100.0));
        let b = g.nearest_node(Point::new(100.0, 0.0));
        let p = shortest_path(&g, a, b, CostModel::Distance).unwrap();
        let line = p.polyline(&g).unwrap();
        assert_eq!(line.start(), Point::new(0.0, 100.0));
        assert_eq!(line.end(), Point::new(100.0, 0.0));
        assert!((line.length() - p.length_m).abs() < 1e-9);
    }

    #[test]
    fn element_ids_in_travel_order() {
        let g = square();
        let a = g.nearest_node(Point::new(0.0, 100.0));
        let b = g.nearest_node(Point::new(100.0, 100.0));
        let p = shortest_path(&g, a, b, CostModel::Distance).unwrap();
        assert_eq!(p.element_ids(&g), vec![ElementId(4)]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // Floyd–Warshall triple loop
    fn matches_brute_force_on_small_graphs() {
        // Exhaustive check against Floyd-Warshall on the square.
        let g = square();
        let n = g.num_nodes();
        let mut d = vec![vec![f64::INFINITY; n]; n];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for e in g.edges() {
            let (f, t) = (e.from.0 as usize, e.to.0 as usize);
            if e.forward_ok {
                d[f][t] = d[f][t].min(e.length_m);
            }
            if e.backward_ok {
                d[t][f] = d[t][f].min(e.length_m);
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = d[i][k] + d[k][j];
                    if via < d[i][j] {
                        d[i][j] = via;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let got = shortest_path(&g, NodeId(i as u32), NodeId(j as u32), CostModel::Distance);
                match got {
                    Some(p) => assert!((p.cost - d[i][j]).abs() < 1e-6, "{i}->{j}"),
                    None => assert!(d[i][j].is_infinite(), "{i}->{j}"),
                }
            }
        }
    }
}
