//! Shortest paths over the road graph: goal-directed A* and a plain
//! Dijkstra reference.
//!
//! The paper uses "the Dijkstra Shortest Path algorithm from pgRouting … to
//! fill the gaps, when data points are too far from each other" during
//! map-matching. Our fleet simulator additionally uses weighted variants for
//! free route choice (taxi drivers pick routes "based on their own silent
//! knowledge", which we model as perturbed edge costs).
//!
//! The hot path is [`astar`]/[`astar_with`]: same results as
//! [`shortest_path`], bit for bit — including which of several equal-cost
//! paths is returned — but expanding far fewer nodes on goal-directed
//! queries, and (via [`SearchState`]) without per-query allocation. The
//! plain Dijkstra is kept as the reference implementation that the A*
//! variants are tested against.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use taxitrace_geo::{Point, Polyline};

use crate::{Edge, EdgeId, NodeId, RoadGraph};

/// Edge cost model for shortest paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostModel {
    /// Minimise travelled metres.
    Distance,
    /// Minimise free-flow travel time (length / speed limit).
    TravelTime,
}

impl CostModel {
    /// Cost of one edge under this model.
    #[inline]
    pub fn cost(&self, e: &Edge) -> f64 {
        match self {
            CostModel::Distance => e.length_m,
            // km/h → m/s.
            CostModel::TravelTime => e.length_m / (e.speed_limit_kmh / 3.6),
        }
    }
}

/// A shortest path through the road graph.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutePath {
    /// Visited vertices, source first.
    pub nodes: Vec<NodeId>,
    /// Traversed edges (`nodes.len() - 1` of them).
    pub edges: Vec<EdgeId>,
    /// Total cost under the query's model.
    pub cost: f64,
    /// Total length in metres.
    pub length_m: f64,
}

impl RoutePath {
    /// Merged geometry of the path, oriented source → target.
    ///
    /// Returns `None` for a trivial path (source == target, no edges).
    pub fn polyline(&self, graph: &RoadGraph) -> Option<Polyline> {
        let mut out: Option<Polyline> = None;
        for (i, &eid) in self.edges.iter().enumerate() {
            let e = graph.edge(eid);
            let part = if e.from == self.nodes[i] {
                e.geometry.clone()
            } else {
                e.geometry.reversed()
            };
            match &mut out {
                None => out = Some(part),
                Some(g) => g.extend_with(&part),
            }
        }
        out
    }

    /// Traffic-element id sequence of the path, in travel order.
    pub fn element_ids(&self, graph: &RoadGraph) -> Vec<crate::ElementId> {
        let mut out = Vec::new();
        for (i, &eid) in self.edges.iter().enumerate() {
            let e = graph.edge(eid);
            if e.from == self.nodes[i] {
                out.extend(e.elements.iter().copied());
            } else {
                out.extend(e.elements.iter().rev().copied());
            }
        }
        out
    }
}

#[derive(Debug, PartialEq)]
struct QueueItem {
    cost: f64,
    node: NodeId,
}

impl Eq for QueueItem {}

impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; ties broken by node id for determinism.
        // `total_cmp` matches `partial_cmp` for the finite non-negative
        // costs produced here and cannot panic on a rogue NaN weight.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest path with a caller-supplied edge weight.
///
/// `weight` must return a non-negative cost for every edge; the simulator
/// passes randomly perturbed costs here to model individual route choice.
pub fn shortest_path_weighted(
    graph: &RoadGraph,
    from: NodeId,
    to: NodeId,
    mut weight: impl FnMut(&Edge) -> f64,
) -> Option<RoutePath> {
    let n = graph.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[from.0 as usize] = 0.0;
    heap.push(QueueItem { cost: 0.0, node: from });

    while let Some(QueueItem { cost, node }) = heap.pop() {
        if node == to {
            break;
        }
        if cost > dist[node.0 as usize] {
            continue; // stale entry
        }
        for &(eid, nb) in graph.neighbors(node) {
            let w = weight(graph.edge(eid));
            debug_assert!(w >= 0.0, "negative edge weight");
            let next = cost + w;
            if next < dist[nb.0 as usize] {
                dist[nb.0 as usize] = next;
                prev[nb.0 as usize] = Some((node, eid));
                heap.push(QueueItem { cost: next, node: nb });
            }
        }
    }

    if dist[to.0 as usize].is_infinite() {
        return None;
    }
    // Reconstruct.
    let mut nodes = vec![to];
    let mut edges = Vec::new();
    let mut cur = to;
    while cur != from {
        let Some((p, e)) = prev[cur.0 as usize] else {
            debug_assert!(false, "reachable node {cur:?} has no predecessor");
            return None;
        };
        nodes.push(p);
        edges.push(e);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    let length_m = edges.iter().map(|&e| graph.edge(e).length_m).sum();
    Some(RoutePath { nodes, edges, cost: dist[to.0 as usize], length_m })
}

/// Shortest path under a standard [`CostModel`].
pub fn shortest_path(
    graph: &RoadGraph,
    from: NodeId,
    to: NodeId,
    model: CostModel,
) -> Option<RoutePath> {
    shortest_path_weighted(graph, from, to, |e| model.cost(e))
}

/// Shrink factor applied to every heuristic so float rounding in `g + h`
/// can never push an estimate above the true remaining cost. The slack it
/// buys per edge (`1e-9 ×` edge weight) dwarfs the ~1 ulp accumulation of
/// the additions, keeping the heuristic strictly consistent *as computed*.
const HEURISTIC_SHRINK: f64 = 1.0 - 1e-9;

/// A* queue entry ordered as a min-heap on `(f, g, node)`.
///
/// The `g` tie-break is load-bearing for exactness: the goal enters the
/// heap with `h = 0`, i.e. `g = f`, the largest possible `g` among entries
/// with equal `f`. Ordering equal-`f` entries by ascending `g` therefore
/// pops the goal *last* in its cost class, guaranteeing every node with
/// `f ≤ C*` — in particular every predecessor that ties on an optimal
/// path — has been expanded before the search terminates.
#[derive(Debug, Clone, PartialEq)]
struct AstarItem {
    f: f64,
    g: f64,
    node: NodeId,
}

impl Eq for AstarItem {}

impl Ord for AstarItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // See `QueueItem::cmp`: total order without a panic path.
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| other.g.total_cmp(&self.g))
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for AstarItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable A* scratch space with generation-stamped entries.
///
/// A search normally needs `dist`/`prev` arrays the size of the whole
/// graph, re-zeroed per query — an O(|V|) tax on queries that touch a few
/// hundred nodes. Here every slot carries the generation that last wrote
/// it; bumping the generation invalidates all slots in O(1), and a slot
/// whose stamp disagrees with the current generation reads as "unvisited".
/// Hold one `SearchState` per worker thread and route queries through
/// [`astar_with`] to eliminate per-query allocation entirely.
#[derive(Debug, Default, Clone)]
pub struct SearchState {
    generation: u32,
    stamp: Vec<u32>,
    dist: Vec<f64>,
    prev: Vec<Option<(NodeId, EdgeId)>>,
    heap: BinaryHeap<AstarItem>,
    expanded: u64,
    expanded_total: u64,
}

impl SearchState {
    pub fn new() -> Self {
        Self::default()
    }

    /// Nodes expanded (popped non-stale) by the most recent query.
    pub fn expanded(&self) -> u64 {
        self.expanded
    }

    /// Nodes expanded over every query this state has run.
    pub fn expanded_total(&self) -> u64 {
        self.expanded_total + self.expanded
    }

    /// Starts a new query over a graph of `n` nodes: grows the arrays if
    /// needed and invalidates all previous entries in O(1).
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, f64::INFINITY);
            self.prev.resize(n, None);
        }
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                // Generation wrapped: all stamps are stale by definition,
                // reset them so stamp 0 < generation 1 reads unvisited.
                self.stamp.fill(0);
                1
            }
        };
        self.heap.clear();
        self.expanded_total += self.expanded;
        self.expanded = 0;
    }

    #[inline]
    fn dist_of(&self, n: NodeId) -> f64 {
        let i = n.0 as usize;
        if self.stamp[i] == self.generation {
            self.dist[i]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn record(&mut self, n: NodeId, dist: f64, prev: Option<(NodeId, EdgeId)>) {
        let i = n.0 as usize;
        self.stamp[i] = self.generation;
        self.dist[i] = dist;
        self.prev[i] = prev;
    }

    /// Canonical equal-cost tie-break, matching what plain Dijkstra's pop
    /// order produces implicitly: among predecessors achieving the same
    /// `dist[nb]`, keep the one with the smallest `(dist, node id)`; for
    /// several equal-cost edges from that same predecessor, keep the first
    /// in adjacency order (the incumbent).
    #[inline]
    fn tie_update(&mut self, nb: NodeId, cand_dist: f64, cand: NodeId, edge: EdgeId) {
        let i = nb.0 as usize;
        if let Some((held, _)) = self.prev[i] {
            let held_key = (self.dist_of(held), held.0);
            if (cand_dist, cand.0) < held_key {
                self.prev[i] = Some((cand, edge));
            }
        }
    }
}

/// How a budgeted search ended.
///
/// [`astar_bounded`] distinguishes "the goal is unreachable" from "the
/// search ran out of budget before deciding": callers fall back
/// differently (an unreachable pair can be cached forever, an exhausted
/// budget is a property of the budget, not the graph).
#[derive(Debug, Clone, PartialEq)]
pub enum SearchOutcome {
    /// The optimal path, identical to an unbudgeted [`astar_with`] run.
    Found(RoutePath),
    /// The search space was exhausted without reaching the goal; no
    /// budget was hit. The pair is genuinely disconnected.
    Unreachable,
    /// The expansion budget ran out before the goal was settled.
    BudgetExhausted {
        /// Nodes expanded when the search gave up (== the budget).
        expanded: u64,
    },
}

impl SearchOutcome {
    /// The found path, if any — collapses the two failure modes.
    pub fn into_path(self) -> Option<RoutePath> {
        match self {
            SearchOutcome::Found(path) => Some(path),
            SearchOutcome::Unreachable | SearchOutcome::BudgetExhausted { .. } => None,
        }
    }
}

/// Goal-directed shortest path under a standard [`CostModel`], reusing
/// `state` across calls.
///
/// Exactly equivalent to [`shortest_path`] — same cost, same node and
/// edge sequence even when several optimal paths tie — while expanding
/// only nodes whose optimistic estimate does not exceed the optimum.
pub fn astar_with(
    state: &mut SearchState,
    graph: &RoadGraph,
    from: NodeId,
    to: NodeId,
    model: CostModel,
) -> Option<RoutePath> {
    astar_bounded(state, graph, from, to, model, u64::MAX).into_path()
}

/// [`astar_with`] with a hard cap on node expansions.
///
/// With `max_expansions = u64::MAX` the behaviour (including the exact
/// tie-break sequence and the `expanded` counters) is bit-identical to
/// [`astar_with`]. With a finite budget the search stops as soon as it
/// would expand node number `max_expansions + 1`, returning
/// [`SearchOutcome::BudgetExhausted`] instead of looping unbounded on
/// adversarial inputs.
pub fn astar_bounded(
    state: &mut SearchState,
    graph: &RoadGraph,
    from: NodeId,
    to: NodeId,
    model: CostModel,
    max_expansions: u64,
) -> SearchOutcome {
    // Admissible lower bound per metre of straight-line displacement:
    // a metre of distance costs at least 1.0 under `Distance`, and at
    // least 1/v_max seconds under `TravelTime` (no edge is faster than
    // the network-wide speed-limit maximum, and no path is shorter than
    // the straight line).
    let h_scale = match model {
        CostModel::Distance => 1.0,
        CostModel::TravelTime => {
            let v_max_ms = graph.max_speed_limit_kmh() / 3.6;
            if v_max_ms > 0.0 {
                1.0 / v_max_ms
            } else {
                0.0
            }
        }
    };
    astar_weighted_bounded(state, graph, from, to, |e| model.cost(e), h_scale, max_expansions)
}

/// Goal-directed shortest path under a standard [`CostModel`] with
/// one-shot scratch space. Prefer [`astar_with`] on hot paths.
pub fn astar(graph: &RoadGraph, from: NodeId, to: NodeId, model: CostModel) -> Option<RoutePath> {
    astar_with(&mut SearchState::new(), graph, from, to, model)
}

/// Goal-directed shortest path with a caller-supplied edge weight and an
/// admissibility scale for the straight-line heuristic.
///
/// `h_scale` must satisfy `weight(e) ≥ h_scale × straight-line length of
/// e` for every edge, so that `h_scale × straight-line distance to goal`
/// never overestimates the remaining cost. Pass `0.0` to disable the
/// heuristic entirely (plain Dijkstra order with reusable state). The
/// simulator passes perturbed travel-time weights with
/// `h_scale = min over edges of weight(e) / length(e)`.
pub fn astar_weighted_with(
    state: &mut SearchState,
    graph: &RoadGraph,
    from: NodeId,
    to: NodeId,
    weight: impl FnMut(&Edge) -> f64,
    h_scale: f64,
) -> Option<RoutePath> {
    astar_weighted_bounded(state, graph, from, to, weight, h_scale, u64::MAX).into_path()
}

/// [`astar_weighted_with`] with a hard cap on node expansions; see
/// [`astar_bounded`] for the budget semantics.
pub fn astar_weighted_bounded(
    state: &mut SearchState,
    graph: &RoadGraph,
    from: NodeId,
    to: NodeId,
    mut weight: impl FnMut(&Edge) -> f64,
    h_scale: f64,
    max_expansions: u64,
) -> SearchOutcome {
    debug_assert!(h_scale >= 0.0, "heuristic scale must be non-negative");
    state.begin(graph.num_nodes());
    let goal: Point = graph.node_point(to);
    let scale = h_scale * HEURISTIC_SHRINK;
    let h = |n: NodeId| graph.node_point(n).distance(goal) * scale;

    state.record(from, 0.0, None);
    state.heap.push(AstarItem { f: h(from), g: 0.0, node: from });

    while let Some(AstarItem { g, node, .. }) = state.heap.pop() {
        if node == to {
            break;
        }
        if g > state.dist_of(node) {
            continue; // stale entry
        }
        if state.expanded >= max_expansions {
            // The next expansion would blow the budget: give up before
            // settling another node so `expanded` never exceeds the cap.
            state.heap.clear();
            return SearchOutcome::BudgetExhausted { expanded: state.expanded };
        }
        state.expanded += 1;
        for &(eid, nb) in graph.neighbors(node) {
            let w = weight(graph.edge(eid));
            debug_assert!(w >= 0.0, "negative edge weight");
            let next = g + w;
            let cur = state.dist_of(nb);
            if next < cur {
                state.record(nb, next, Some((node, eid)));
                state.heap.push(AstarItem { f: next + h(nb), g: next, node: nb });
            } else if next == cur {
                state.tie_update(nb, g, node, eid);
            }
        }
    }
    state.heap.clear();

    if !state.dist_of(to).is_finite() {
        return SearchOutcome::Unreachable;
    }
    // Reconstruct, identically to the Dijkstra reference.
    let mut nodes = vec![to];
    let mut edges = Vec::new();
    let mut cur = to;
    while cur != from {
        let Some((p, e)) = state.prev[cur.0 as usize] else {
            debug_assert!(false, "reachable node {cur:?} has no predecessor");
            return SearchOutcome::Unreachable;
        };
        nodes.push(p);
        edges.push(e);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    let length_m = edges.iter().map(|&e| graph.edge(e).length_m).sum();
    SearchOutcome::Found(RoutePath { nodes, edges, cost: state.dist_of(to), length_m })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ElementId, FlowDirection, FunctionalClass, TrafficElement};
    use taxitrace_geo::{GeoPoint, LocalProjection, Point, Polyline};

    fn elem(id: u64, pts: &[(f64, f64)], flow: FlowDirection, limit: f64) -> TrafficElement {
        TrafficElement {
            id: ElementId(id),
            geometry: Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
                .unwrap(),
            class: FunctionalClass::Local,
            speed_limit_kmh: limit,
            flow,
        }
    }

    fn proj() -> LocalProjection {
        LocalProjection::new(GeoPoint::new(25.4651, 65.0121))
    }

    /// A square with a diagonal shortcut that has a low speed limit:
    ///
    /// ```text
    /// (0,100) --- (100,100)
    ///    |      /    |
    /// (0,0) ---- (100,0)
    /// ```
    fn square() -> RoadGraph {
        let mut els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::Both, 50.0),
            elem(2, &[(100.0, 0.0), (100.0, 100.0)], FlowDirection::Both, 50.0),
            elem(3, &[(0.0, 0.0), (0.0, 100.0)], FlowDirection::Both, 50.0),
            elem(4, &[(0.0, 100.0), (100.0, 100.0)], FlowDirection::Both, 50.0),
            elem(5, &[(0.0, 0.0), (100.0, 100.0)], FlowDirection::Both, 10.0),
        ];
        els.extend(corner_stubs(10));
        RoadGraph::build(&els, proj()).unwrap()
    }

    /// Short dead-end stubs at the four square corners so every corner is a
    /// junction (otherwise degree-2 corners merge into chains).
    fn corner_stubs(base_id: u64) -> Vec<TrafficElement> {
        [(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)]
            .iter()
            .enumerate()
            .map(|(k, &(x, y))| {
                elem(
                    base_id + k as u64,
                    &[(x, y), (x - 10.0, y - 10.0)],
                    FlowDirection::Both,
                    30.0,
                )
            })
            .collect()
    }

    #[test]
    fn distance_prefers_diagonal() {
        let g = square();
        let a = g.nearest_node(Point::new(0.0, 0.0));
        let b = g.nearest_node(Point::new(100.0, 100.0));
        let p = shortest_path(&g, a, b, CostModel::Distance).unwrap();
        assert_eq!(p.edges.len(), 1);
        assert!((p.length_m - 141.42).abs() < 0.1);
    }

    #[test]
    fn travel_time_avoids_slow_diagonal() {
        let g = square();
        let a = g.nearest_node(Point::new(0.0, 0.0));
        let b = g.nearest_node(Point::new(100.0, 100.0));
        let p = shortest_path(&g, a, b, CostModel::TravelTime).unwrap();
        // Around: 200 m at 50 km/h = 14.4 s; diagonal: 141 m at 10 km/h = 50.9 s.
        assert_eq!(p.edges.len(), 2);
        assert!((p.length_m - 200.0).abs() < 1e-6);
    }

    #[test]
    fn trivial_path() {
        let g = square();
        let a = g.nearest_node(Point::new(0.0, 0.0));
        let p = shortest_path(&g, a, a, CostModel::Distance).unwrap();
        assert!(p.edges.is_empty());
        assert_eq!(p.cost, 0.0);
        assert!(p.polyline(&g).is_none());
    }

    #[test]
    fn unreachable_returns_none() {
        // Two disconnected components.
        let els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::Both, 50.0),
            elem(2, &[(1000.0, 0.0), (1100.0, 0.0)], FlowDirection::Both, 50.0),
        ];
        let g = RoadGraph::build(&els, proj()).unwrap();
        let a = g.nearest_node(Point::new(0.0, 0.0));
        let b = g.nearest_node(Point::new(1100.0, 0.0));
        assert!(shortest_path(&g, a, b, CostModel::Distance).is_none());
    }

    #[test]
    fn bounded_search_distinguishes_unreachable_from_exhausted() {
        let els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::Both, 50.0),
            elem(2, &[(1000.0, 0.0), (1100.0, 0.0)], FlowDirection::Both, 50.0),
        ];
        let g = RoadGraph::build(&els, proj()).unwrap();
        let a = g.nearest_node(Point::new(0.0, 0.0));
        let b = g.nearest_node(Point::new(1100.0, 0.0));
        let mut state = SearchState::new();
        assert_eq!(
            astar_bounded(&mut state, &g, a, b, CostModel::Distance, u64::MAX),
            SearchOutcome::Unreachable
        );
        assert_eq!(
            astar_bounded(&mut state, &g, a, b, CostModel::Distance, 0),
            SearchOutcome::BudgetExhausted { expanded: 0 }
        );
    }

    #[test]
    fn tiny_budget_exhausts_instead_of_searching() {
        let g = square();
        let a = g.nearest_node(Point::new(0.0, 0.0));
        let b = g.nearest_node(Point::new(100.0, 100.0));
        let mut state = SearchState::new();
        let out = astar_bounded(&mut state, &g, a, b, CostModel::TravelTime, 1);
        assert_eq!(out, SearchOutcome::BudgetExhausted { expanded: 1 });
        assert_eq!(state.expanded(), 1);
    }

    #[test]
    fn huge_budget_is_bit_identical_to_unbounded() {
        let g = square();
        let mut state = SearchState::new();
        for a in 0..g.num_nodes() {
            for b in 0..g.num_nodes() {
                let (a, b) = (NodeId(a as u32), NodeId(b as u32));
                let unbounded = astar_with(&mut state, &g, a, b, CostModel::Distance);
                let bounded =
                    astar_bounded(&mut state, &g, a, b, CostModel::Distance, u64::MAX)
                        .into_path();
                assert_eq!(unbounded, bounded);
            }
        }
    }

    #[test]
    fn one_way_respected() {
        // One-way ring: can go clockwise only. Corner stubs make every
        // corner a junction.
        let mut els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::WithDigitization, 50.0),
            elem(2, &[(100.0, 0.0), (100.0, 100.0)], FlowDirection::WithDigitization, 50.0),
            elem(3, &[(100.0, 100.0), (0.0, 100.0)], FlowDirection::WithDigitization, 50.0),
            elem(4, &[(0.0, 100.0), (0.0, 0.0)], FlowDirection::WithDigitization, 50.0),
        ];
        els.extend(corner_stubs(10));
        let els = els;
        let g = RoadGraph::build(&els, proj()).unwrap();
        let a = g.nearest_node(Point::new(0.0, 0.0));
        let b = g.nearest_node(Point::new(0.0, 100.0));
        let p = shortest_path(&g, a, b, CostModel::Distance).unwrap();
        // Direct edge is one-way the wrong way; must go around: 300 m.
        assert!((p.length_m - 300.0).abs() < 1e-6);
    }

    #[test]
    fn polyline_is_contiguous() {
        let g = square();
        let a = g.nearest_node(Point::new(0.0, 100.0));
        let b = g.nearest_node(Point::new(100.0, 0.0));
        let p = shortest_path(&g, a, b, CostModel::Distance).unwrap();
        let line = p.polyline(&g).unwrap();
        assert_eq!(line.start(), Point::new(0.0, 100.0));
        assert_eq!(line.end(), Point::new(100.0, 0.0));
        assert!((line.length() - p.length_m).abs() < 1e-9);
    }

    #[test]
    fn element_ids_in_travel_order() {
        let g = square();
        let a = g.nearest_node(Point::new(0.0, 100.0));
        let b = g.nearest_node(Point::new(100.0, 100.0));
        let p = shortest_path(&g, a, b, CostModel::Distance).unwrap();
        assert_eq!(p.element_ids(&g), vec![ElementId(4)]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // Floyd–Warshall triple loop
    fn matches_brute_force_on_small_graphs() {
        // Exhaustive check against Floyd-Warshall on the square.
        let g = square();
        let n = g.num_nodes();
        let mut d = vec![vec![f64::INFINITY; n]; n];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for e in g.edges() {
            let (f, t) = (e.from.0 as usize, e.to.0 as usize);
            if e.forward_ok {
                d[f][t] = d[f][t].min(e.length_m);
            }
            if e.backward_ok {
                d[t][f] = d[t][f].min(e.length_m);
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = d[i][k] + d[k][j];
                    if via < d[i][j] {
                        d[i][j] = via;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let got = shortest_path(&g, NodeId(i as u32), NodeId(j as u32), CostModel::Distance);
                match got {
                    Some(p) => assert!((p.cost - d[i][j]).abs() < 1e-6, "{i}->{j}"),
                    None => assert!(d[i][j].is_infinite(), "{i}->{j}"),
                }
            }
        }
    }

    /// Asserts A* and the Dijkstra reference agree bit-for-bit: same
    /// reachability, same cost bits, same node and edge sequence.
    fn assert_same_route(
        state: &mut SearchState,
        g: &RoadGraph,
        a: NodeId,
        b: NodeId,
        model: CostModel,
    ) {
        let reference = shortest_path(g, a, b, model);
        let fast = astar_with(state, g, a, b, model);
        match (reference, fast) {
            (None, None) => {}
            (Some(r), Some(f)) => {
                assert_eq!(
                    r.cost.to_bits(),
                    f.cost.to_bits(),
                    "cost differs {a:?}->{b:?} under {model:?}: {} vs {}",
                    r.cost,
                    f.cost
                );
                assert_eq!(r.nodes, f.nodes, "node sequence differs {a:?}->{b:?} {model:?}");
                assert_eq!(r.edges, f.edges, "edge sequence differs {a:?}->{b:?} {model:?}");
                assert_eq!(r.length_m.to_bits(), f.length_m.to_bits());
            }
            (r, f) => panic!(
                "reachability differs {a:?}->{b:?} {model:?}: dijkstra={} astar={}",
                r.is_some(),
                f.is_some()
            ),
        }
    }

    #[test]
    fn astar_matches_dijkstra_exactly_on_square() {
        let g = square();
        let mut state = SearchState::new();
        for i in 0..g.num_nodes() {
            for j in 0..g.num_nodes() {
                for model in [CostModel::Distance, CostModel::TravelTime] {
                    assert_same_route(&mut state, &g, NodeId(i as u32), NodeId(j as u32), model);
                }
            }
        }
    }

    #[test]
    fn astar_matches_dijkstra_exactly_on_grid_city() {
        // The synthetic city is a regular 150 m grid: equal-cost ties are
        // the norm, not the exception, so this exercises the canonical
        // tie-breaking that keeps A* output byte-identical to Dijkstra's.
        let city = crate::synth::generate(&crate::synth::OuluConfig::default());
        let g = &city.graph;
        let n = g.num_nodes() as u32;
        let mut state = SearchState::new();
        let mut pair = 0u32;
        for a in (0..n).step_by(23) {
            for b in (0..n).step_by(17) {
                let model = if pair.is_multiple_of(2) { CostModel::Distance } else { CostModel::TravelTime };
                assert_same_route(&mut state, g, NodeId(a), NodeId(b), model);
                pair += 1;
            }
        }
        assert!(pair > 100, "expected a meaningful sample, got {pair} pairs");
    }

    #[test]
    fn weighted_astar_matches_weighted_dijkstra() {
        // Deterministic per-edge perturbation standing in for the
        // simulator's log-normal route noise.
        let city = crate::synth::generate(&crate::synth::OuluConfig::default());
        let g = &city.graph;
        let noise = |e: &Edge| 1.0 + 0.5 * (((e.id.0 as u64).wrapping_mul(2654435761) % 97) as f64 / 97.0);
        let weight = |e: &Edge| CostModel::TravelTime.cost(e) * noise(e);
        let h_scale = g
            .edges()
            .iter()
            .map(|e| weight(e) / e.length_m)
            .fold(f64::INFINITY, f64::min);
        let mut state = SearchState::new();
        for (a, b) in [(0u32, 140u32), (3, 77), (55, 199), (120, 4), (60, 61)] {
            let a = NodeId(a % g.num_nodes() as u32);
            let b = NodeId(b % g.num_nodes() as u32);
            let reference = shortest_path_weighted(g, a, b, weight);
            let fast = astar_weighted_with(&mut state, g, a, b, weight, h_scale);
            match (reference, fast) {
                (None, None) => {}
                (Some(r), Some(f)) => {
                    assert_eq!(r.cost.to_bits(), f.cost.to_bits());
                    assert_eq!(r.nodes, f.nodes);
                    assert_eq!(r.edges, f.edges);
                }
                _ => panic!("weighted reachability differs {a:?}->{b:?}"),
            }
        }
    }

    #[test]
    fn astar_expands_fewer_nodes_than_dijkstra_order() {
        let city = crate::synth::generate(&crate::synth::OuluConfig::default());
        let g = &city.graph;
        // Cross-city query along one axis: the straight-line bound is
        // tight there, which is the typical gap-fill shape (successive
        // match candidates sit along the travelled road). On a perfect
        // grid a corner-to-corner diagonal is instead the worst case for
        // an l2 heuristic (every monotone staircase ties), so that shape
        // gains much less.
        let a = g.nearest_node(Point::new(-1000.0, 0.0));
        let b = g.nearest_node(Point::new(1000.0, 0.0));
        let mut state = SearchState::new();
        astar_with(&mut state, g, a, b, CostModel::Distance).expect("connected city");
        let goal_directed = state.expanded();
        // h_scale = 0 degrades A* to Dijkstra's expansion order.
        astar_weighted_with(&mut state, g, a, b, |e| CostModel::Distance.cost(e), 0.0)
            .expect("connected city");
        let blind = state.expanded();
        assert!(
            goal_directed * 2 < blind,
            "expected goal direction to at least halve expansions: {goal_directed} vs {blind}"
        );
    }

    #[test]
    fn search_state_reuse_is_clean_across_queries() {
        // Back-to-back queries through one state must match fresh-state
        // results: the generation stamp isolates queries completely.
        let g = square();
        let mut reused = SearchState::new();
        let pairs: Vec<(u32, u32)> =
            (0..g.num_nodes() as u32).flat_map(|i| [(i, 0), (0, i), (i, i)]).collect();
        for &(a, b) in &pairs {
            let fresh = astar(&g, NodeId(a), NodeId(b), CostModel::TravelTime);
            let warm = astar_with(&mut reused, &g, NodeId(a), NodeId(b), CostModel::TravelTime);
            assert_eq!(fresh.is_some(), warm.is_some());
            if let (Some(f), Some(w)) = (fresh, warm) {
                assert_eq!(f.cost.to_bits(), w.cost.to_bits());
                assert_eq!(f.nodes, w.nodes);
                assert_eq!(f.edges, w.edges);
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::synth::{generate, OuluConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// A* returns the same cost as the Dijkstra reference — and a
        /// valid path achieving it — on random synthetic cities under
        /// both cost models.
        #[test]
        fn astar_equals_dijkstra_on_random_cities(
            seed in 0u64..10_000,
            pairs in proptest::collection::vec((0u32..100_000, 0u32..100_000), 8..20),
        ) {
            let city = generate(&OuluConfig { seed, ..OuluConfig::default() });
            let g = &city.graph;
            let n = g.num_nodes() as u32;
            let mut state = SearchState::new();
            for &(raw_a, raw_b) in &pairs {
                let (a, b) = (NodeId(raw_a % n), NodeId(raw_b % n));
                for model in [CostModel::Distance, CostModel::TravelTime] {
                    let reference = shortest_path(g, a, b, model);
                    let fast = astar_with(&mut state, g, a, b, model);
                    prop_assert_eq!(reference.is_some(), fast.is_some());
                    if let (Some(r), Some(f)) = (reference, fast) {
                        prop_assert_eq!(r.cost.to_bits(), f.cost.to_bits());
                        prop_assert_eq!(r.nodes, f.nodes);
                        prop_assert_eq!(r.edges, f.edges);
                        // The returned path is well-formed: consecutive
                        // nodes joined by the listed edges, cost equal to
                        // the sum of edge costs.
                        let mut acc = 0.0f64;
                        for (i, &eid) in f.edges.iter().enumerate() {
                            let e = g.edge(eid);
                            let ok = (e.from == f.nodes[i] && e.to == f.nodes[i + 1])
                                || (e.to == f.nodes[i] && e.from == f.nodes[i + 1]);
                            prop_assert!(ok, "edge {eid:?} does not join nodes {i},{}", i + 1);
                            acc += model.cost(e);
                        }
                        prop_assert!((acc - f.cost).abs() <= 1e-9 * acc.max(1.0));
                    }
                }
            }
        }
    }
}
