//! Road-network substrate: a Digiroad-like digital map.
//!
//! The paper fetches road geometry and attribute data from Digiroad, the
//! Finnish national road and street database. Digiroad models the network as
//! *traffic elements* — the smallest units of road centre-line geometry, each
//! with a unique identifier and characteristic attributes (coordinates,
//! functional type, length, digitisation direction) — plus point objects of
//! the transportation system (traffic lights, bus stops, pedestrian
//! crossings) and segmented line-like attributes (speed restrictions).
//!
//! This crate reproduces that model and the paper's §IV-A map preparation:
//!
//! 1. [`EndpointTable`] classifies traffic-element endpoints as *junctions*
//!    (≥ 3 incident elements), *intermediate points* (exactly 2) or *dead
//!    ends* (1).
//! 2. [`RoadGraph`] reconstructs the road-network graph `G = {V, E}` where
//!    vertices are junctions and each edge is a *chain of traffic elements*
//!    between two junctions — the paper's Table 1 rows ("elements integer[]").
//! 3. [`dijkstra`] provides the shortest-path engine that the paper takes
//!    from pgRouting (used to fill map-matching gaps and, in our simulator,
//!    for route choice).
//! 4. [`synth`] generates a deterministic synthetic "downtown Oulu" with the
//!    paper's named entry/exit roads **T**, **S**, **L** and map-object
//!    populations calibrated to the study area totals {67, 48, 293, 271}.
//!
//! The real Digiroad database is not redistributable; see `DESIGN.md` for the
//! substitution argument.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod attributes;
pub mod digiroad;
pub mod dijkstra;
mod element;
mod graph;
mod junction;
pub mod quality;
pub mod synth;

pub use attributes::{MapObject, MapObjectKind, MapObjects};
pub use dijkstra::{CostModel, RoutePath, SearchOutcome, SearchState};
pub use element::{ElementId, FlowDirection, FunctionalClass, TrafficElement};
pub use graph::{Edge, EdgeId, GraphError, JunctionPair, NodeId, RoadGraph};
pub use junction::{EndpointKey, EndpointKind, EndpointTable};
