use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use taxitrace_geo::{BBox, GeoPoint, LocalProjection, Point, Polyline};

use crate::{
    ElementId, EndpointKey, EndpointTable, FunctionalClass, TrafficElement,
};

/// Vertex identifier in the road graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

/// Edge identifier in the road graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct EdgeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Error during graph construction.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// No traffic elements were supplied.
    Empty,
    /// A chain of one-way elements had inconsistent directions, leaving the
    /// edge impassable both ways.
    ImpassableChain { elements: Vec<ElementId> },
    /// An internal chain-walking invariant did not hold — the endpoint
    /// table and the element list disagree. Indicates corrupt input rather
    /// than a recoverable condition, but callers still get a clean error.
    Inconsistent(&'static str),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "no traffic elements supplied"),
            GraphError::ImpassableChain { elements } => {
                write!(f, "element chain {elements:?} is impassable in both directions")
            }
            GraphError::Inconsistent(what) => {
                write!(f, "inconsistent road-network input: {what}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A road-graph edge: a chain of traffic elements between two junctions
/// merged into a single geometry, exactly as the paper's Table 1 constructs
/// "single elements created from an array of smaller traffic elements".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Edge {
    pub id: EdgeId,
    pub from: NodeId,
    pub to: NodeId,
    /// Contributing traffic-element ids, in chain order from `from` to `to`.
    pub elements: Vec<ElementId>,
    /// Merged centre-line geometry, oriented from `from` to `to`.
    pub geometry: Polyline,
    /// Total length in metres.
    pub length_m: f64,
    /// Most restrictive speed limit along the chain, km/h.
    pub speed_limit_kmh: f64,
    /// Most significant functional class along the chain.
    pub class: FunctionalClass,
    /// Whether traffic may traverse from `from` to `to`.
    pub forward_ok: bool,
    /// Whether traffic may traverse from `to` to `from`.
    pub backward_ok: bool,
}

impl Edge {
    /// Whether the edge carries traffic in both directions.
    #[inline]
    pub fn is_two_way(&self) -> bool {
        self.forward_ok && self.backward_ok
    }
}

/// One row of the paper's Table 1: a junction pair with the contributing
/// element ids, in `EPSG:4326`.
#[derive(Debug, Clone, PartialEq)]
pub struct JunctionPair {
    pub junction1: GeoPoint,
    pub elements: Vec<ElementId>,
    pub junction2: GeoPoint,
}

impl fmt::Display for JunctionPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ids: Vec<String> = self.elements.iter().map(|e| e.to_string()).collect();
        write!(f, "{} {{{}}} {}", self.junction1, ids.join(","), self.junction2)
    }
}

/// The reconstructed road-network graph `G = {V, E}` of §IV-A.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadGraph {
    nodes: Vec<Point>,
    edges: Vec<Edge>,
    /// Outgoing adjacency respecting one-way restrictions:
    /// `out[node] = [(edge, neighbour)]`.
    out: Vec<Vec<(EdgeId, NodeId)>>,
    /// Which edge a traffic element was merged into.
    element_edge: HashMap<ElementId, EdgeId>,
    /// Projection between the planar frame and WGS-84.
    projection: LocalProjection,
    /// Fastest speed limit in the network (km/h), cached at build time for
    /// the A* travel-time heuristic.
    max_speed_limit_kmh: f64,
}

impl RoadGraph {
    /// Reconstructs the graph from traffic elements (§IV-A map preparation).
    ///
    /// Endpoints are classified with [`EndpointTable`]; chains of elements
    /// joined at intermediate points are merged into single edges between
    /// junction/dead-end vertices. Deterministic: vertices and edges are
    /// numbered in sorted endpoint-key order.
    pub fn build(
        elements: &[TrafficElement],
        projection: LocalProjection,
    ) -> Result<Self, GraphError> {
        if elements.is_empty() {
            return Err(GraphError::Empty);
        }
        let table = EndpointTable::build(elements);

        // Collect vertex keys (junctions + dead ends) in deterministic order.
        let mut vertex_keys: Vec<EndpointKey> = table
            .iter()
            .filter(|(_, kind)| kind.is_graph_vertex())
            .map(|(k, _)| k)
            .collect();
        vertex_keys.sort_unstable();
        let mut node_of: HashMap<EndpointKey, NodeId> =
            HashMap::with_capacity(vertex_keys.len());
        let mut nodes = Vec::with_capacity(vertex_keys.len());
        for key in &vertex_keys {
            node_of.insert(*key, NodeId(nodes.len() as u32));
            nodes.push(key.point());
        }

        let mut visited = vec![false; elements.len()];
        let mut edges: Vec<Edge> = Vec::new();
        let mut element_edge = HashMap::with_capacity(elements.len());

        // Walk chains starting from every vertex.
        for key in &vertex_keys {
            let info = table
                .info(*key)
                .ok_or(GraphError::Inconsistent("vertex key missing from endpoint table"))?;
            let mut starts: Vec<(usize, bool)> = info.incident.clone();
            starts.sort_unstable_by_key(|&(i, end)| (elements[i].id, end));
            for (elem_idx, at_end) in starts {
                if visited[elem_idx] {
                    continue;
                }
                let edge = Self::walk_chain(
                    elements,
                    &table,
                    &node_of,
                    &mut visited,
                    elem_idx,
                    at_end,
                    EdgeId(edges.len() as u32),
                )?;
                for eid in &edge.elements {
                    element_edge.insert(*eid, edge.id);
                }
                edges.push(edge);
            }
        }

        // Any still-unvisited elements form pure intermediate-point loops
        // (rare in real maps; we promote one endpoint to a vertex).
        let mut extra: Vec<usize> = (0..elements.len()).filter(|&i| !visited[i]).collect();
        extra.sort_unstable_by_key(|&i| elements[i].id);
        for elem_idx in extra {
            if visited[elem_idx] {
                continue;
            }
            let key = EndpointKey::of(elements[elem_idx].start());
            let node = *node_of.entry(key).or_insert_with(|| {
                nodes.push(key.point());
                NodeId((nodes.len() - 1) as u32)
            });
            let _ = node;
            let edge = Self::walk_chain(
                elements,
                &table,
                &node_of,
                &mut visited,
                elem_idx,
                false,
                EdgeId(edges.len() as u32),
            )?;
            for eid in &edge.elements {
                element_edge.insert(*eid, edge.id);
            }
            edges.push(edge);
        }

        // Adjacency.
        let mut out: Vec<Vec<(EdgeId, NodeId)>> = vec![Vec::new(); nodes.len()];
        for e in &edges {
            if e.forward_ok {
                out[e.from.0 as usize].push((e.id, e.to));
            }
            if e.backward_ok {
                out[e.to.0 as usize].push((e.id, e.from));
            }
        }

        let max_speed_limit_kmh =
            edges.iter().map(|e| e.speed_limit_kmh).fold(0.0f64, f64::max);
        Ok(Self { nodes, edges, out, element_edge, projection, max_speed_limit_kmh })
    }

    /// Walks one chain starting at element `elem_idx`, entering at its
    /// digitisation `start` (`at_end == false`) or `end` (`at_end == true`),
    /// until the far side reaches a graph vertex.
    #[allow(clippy::too_many_arguments)]
    fn walk_chain(
        elements: &[TrafficElement],
        table: &EndpointTable,
        node_of: &HashMap<EndpointKey, NodeId>,
        visited: &mut [bool],
        elem_idx: usize,
        at_end: bool,
        edge_id: EdgeId,
    ) -> Result<Edge, GraphError> {
        let mut chain: Vec<(usize, bool)> = Vec::new(); // (element, reversed?)
        let mut cur = elem_idx;
        // `reversed == true` means we traverse the element from its
        // digitisation end towards its start.
        let mut reversed = at_end;
        let start_key = if at_end {
            EndpointKey::of(elements[elem_idx].end())
        } else {
            EndpointKey::of(elements[elem_idx].start())
        };
        loop {
            visited[cur] = true;
            chain.push((cur, reversed));
            let far = if reversed { elements[cur].start() } else { elements[cur].end() };
            let far_key = EndpointKey::of(far);
            if let Some(kind) = table.kind(far_key) {
                if kind.is_graph_vertex() {
                    break;
                }
            }
            // Intermediate point: continue with the other incident element.
            let info = table
                .info(far_key)
                .ok_or(GraphError::Inconsistent("chain endpoint missing from endpoint table"))?;
            let next = info
                .incident
                .iter()
                .copied()
                .find(|&(i, _)| i != cur && !visited[i]);
            let Some((next_idx, next_at_end)) = next else {
                // A loop closed back on itself: stop here; the far point
                // will have been promoted or the chain ends.
                break;
            };
            cur = next_idx;
            reversed = next_at_end;
        }

        let (&(first_idx, first_rev), &(last_idx, last_rev)) =
            match (chain.first(), chain.last()) {
                (Some(first), Some(last)) => (first, last),
                _ => return Err(GraphError::Inconsistent("chain walk produced no elements")),
            };
        let _ = (first_idx, first_rev);
        let end_key = if last_rev {
            EndpointKey::of(elements[last_idx].start())
        } else {
            EndpointKey::of(elements[last_idx].end())
        };

        let from = *node_of
            .get(&start_key)
            .ok_or(GraphError::Inconsistent("chain start is not a graph vertex"))?;
        // The end may be an intermediate point only in the degenerate loop
        // case; fall back to the start node then.
        let to = node_of.get(&end_key).copied().unwrap_or(from);

        // Merge geometry and attributes.
        let mut geometry: Option<Polyline> = None;
        let mut ids = Vec::with_capacity(chain.len());
        let mut speed_limit = f64::INFINITY;
        let mut class = FunctionalClass::Local;
        let mut forward_ok = true;
        let mut backward_ok = true;
        for &(i, rev) in &chain {
            let e = &elements[i];
            ids.push(e.id);
            speed_limit = speed_limit.min(e.speed_limit_kmh);
            if e.class.level() < class.level() {
                class = e.class;
            }
            let part = if rev { e.geometry.reversed() } else { e.geometry.clone() };
            match &mut geometry {
                None => geometry = Some(part),
                Some(g) => g.extend_with(&part),
            }
            // Traversal in chain direction is "forward" for the edge.
            let (fwd, bwd) = if rev {
                (e.allows_backward(), e.allows_forward())
            } else {
                (e.allows_forward(), e.allows_backward())
            };
            forward_ok &= fwd;
            backward_ok &= bwd;
        }
        if !forward_ok && !backward_ok {
            return Err(GraphError::ImpassableChain { elements: ids });
        }
        let Some(geometry) = geometry else {
            return Err(GraphError::Inconsistent("chain walk produced no geometry"));
        };
        let length_m = geometry.length();
        Ok(Edge {
            id: edge_id,
            from,
            to,
            elements: ids,
            geometry,
            length_m,
            speed_limit_kmh: speed_limit,
            class,
            forward_ok,
            backward_ok,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Vertex position in the planar frame.
    #[inline]
    pub fn node_point(&self, n: NodeId) -> Point {
        self.nodes[n.0 as usize]
    }

    /// All vertices.
    #[inline]
    pub fn nodes(&self) -> &[Point] {
        &self.nodes
    }

    /// Edge by id.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.0 as usize]
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing `(edge, neighbour)` pairs from `n`, honouring one-way
    /// restrictions.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        &self.out[n.0 as usize]
    }

    /// The edge a traffic element was merged into.
    #[inline]
    pub fn edge_of_element(&self, e: ElementId) -> Option<EdgeId> {
        self.element_edge.get(&e).copied()
    }

    /// The planar ↔ WGS-84 projection of this map.
    #[inline]
    pub fn projection(&self) -> &LocalProjection {
        &self.projection
    }

    /// Fastest speed limit anywhere in the network (km/h). Zero for a
    /// graph with no edges.
    #[inline]
    pub fn max_speed_limit_kmh(&self) -> f64 {
        self.max_speed_limit_kmh
    }

    /// Bounding box of all vertices and edge geometries.
    pub fn bbox(&self) -> BBox {
        self.edges
            .iter()
            .fold(BBox::from_points(&self.nodes), |b, e| b.union(e.geometry.bbox()))
    }

    /// The graph vertex closest to `p`.
    pub fn nearest_node(&self, p: Point) -> NodeId {
        // `build` rejects empty inputs, so a constructed graph always has
        // nodes; an impossible empty list falls back to node 0.
        self.nodes
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.distance_sq(p).total_cmp(&b.distance_sq(p)))
            .map_or(NodeId(0), |(i, _)| NodeId(i as u32))
    }

    /// Emits the paper's Table 1 rows: one junction pair per edge,
    /// coordinates in `EPSG:4326`.
    pub fn junction_pairs(&self) -> Vec<JunctionPair> {
        self.edges
            .iter()
            .map(|e| JunctionPair {
                junction1: self.projection.unproject(self.node_point(e.from)),
                elements: e.elements.clone(),
                junction2: self.projection.unproject(self.node_point(e.to)),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowDirection, FunctionalClass};

    fn elem(id: u64, pts: &[(f64, f64)], flow: FlowDirection) -> TrafficElement {
        TrafficElement {
            id: ElementId(id),
            geometry: Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
                .unwrap(),
            class: FunctionalClass::Local,
            speed_limit_kmh: 40.0,
            flow,
        }
    }

    fn projection() -> LocalProjection {
        LocalProjection::new(GeoPoint::new(25.4651, 65.0121))
    }

    /// Cross with one arm split into two elements:
    ///
    /// ```text
    ///            (0,100)
    ///               |
    /// (-100,0) -- (0,0) -- (100,0) -- (200,0)
    ///               |           [e4: intermediate at (100,0)]
    ///            (0,-100)
    /// ```
    fn cross() -> Vec<TrafficElement> {
        vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::Both),
            elem(2, &[(0.0, 0.0), (-100.0, 0.0)], FlowDirection::Both),
            elem(3, &[(0.0, 0.0), (0.0, 100.0)], FlowDirection::Both),
            elem(4, &[(100.0, 0.0), (200.0, 0.0)], FlowDirection::Both),
            elem(5, &[(0.0, -100.0), (0.0, 0.0)], FlowDirection::Both),
        ]
    }

    #[test]
    fn merges_chain_into_single_edge() {
        let g = RoadGraph::build(&cross(), projection()).unwrap();
        // Vertices: the centre junction + 4 dead ends = 5; (100,0) is
        // intermediate and merged away.
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        // One of the edges contains both element 1 and element 4.
        let merged = g
            .edges()
            .iter()
            .find(|e| e.elements.len() == 2)
            .expect("one merged edge");
        assert_eq!(merged.elements, vec![ElementId(1), ElementId(4)]);
        assert_eq!(merged.length_m, 200.0);
        assert_eq!(g.edge_of_element(ElementId(4)), Some(merged.id));
    }

    #[test]
    fn one_way_chain_direction() {
        // Two one-way elements digitised tip-to-tail east.
        let els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::WithDigitization),
            elem(2, &[(100.0, 0.0), (200.0, 0.0)], FlowDirection::WithDigitization),
            // A cross element so (0,0) is a junction.
            elem(3, &[(0.0, 0.0), (0.0, 100.0)], FlowDirection::Both),
            elem(4, &[(0.0, 0.0), (0.0, -100.0)], FlowDirection::Both),
        ];
        let g = RoadGraph::build(&els, projection()).unwrap();
        let e = g
            .edges()
            .iter()
            .find(|e| e.elements.contains(&ElementId(1)))
            .unwrap();
        assert_eq!(e.elements.len(), 2);
        // One-way only in one direction.
        assert!(e.forward_ok ^ e.backward_ok);
        // Traffic must flow from (0,0) towards (200,0).
        let (src, dst) = if e.forward_ok { (e.from, e.to) } else { (e.to, e.from) };
        assert_eq!(g.node_point(src), Point::new(0.0, 0.0));
        assert_eq!(g.node_point(dst), Point::new(200.0, 0.0));
    }

    #[test]
    fn one_way_reversed_digitisation() {
        // Element 2 digitised against travel; flow marked accordingly so the
        // chain is still consistently one-way eastbound.
        let els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::WithDigitization),
            elem(2, &[(200.0, 0.0), (100.0, 0.0)], FlowDirection::AgainstDigitization),
            elem(3, &[(0.0, 0.0), (0.0, 100.0)], FlowDirection::Both),
            elem(4, &[(0.0, 0.0), (0.0, -100.0)], FlowDirection::Both),
        ];
        let g = RoadGraph::build(&els, projection()).unwrap();
        let e = g
            .edges()
            .iter()
            .find(|e| e.elements.contains(&ElementId(2)))
            .unwrap();
        assert!(e.forward_ok ^ e.backward_ok);
    }

    #[test]
    fn impassable_chain_rejected() {
        // Two one-way elements pointing at each other through an
        // intermediate point: impassable both ways.
        let els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::WithDigitization),
            elem(2, &[(200.0, 0.0), (100.0, 0.0)], FlowDirection::WithDigitization),
            elem(3, &[(0.0, 0.0), (0.0, 100.0)], FlowDirection::Both),
            elem(4, &[(0.0, 0.0), (0.0, -100.0)], FlowDirection::Both),
        ];
        assert!(matches!(
            RoadGraph::build(&els, projection()),
            Err(GraphError::ImpassableChain { .. })
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            RoadGraph::build(&[], projection()),
            Err(GraphError::Empty)
        ));
    }

    #[test]
    fn junction_pairs_match_table1_shape() {
        let g = RoadGraph::build(&cross(), projection()).unwrap();
        let pairs = g.junction_pairs();
        assert_eq!(pairs.len(), g.num_edges());
        let merged = pairs.iter().find(|p| p.elements.len() == 2).unwrap();
        let rendered = merged.to_string();
        assert!(rendered.starts_with("POINT("), "{rendered}");
        assert!(rendered.contains("{1,4}") || rendered.contains("{4,1}"), "{rendered}");
    }

    #[test]
    fn adjacency_is_symmetric_for_two_way() {
        let g = RoadGraph::build(&cross(), projection()).unwrap();
        let centre = g.nearest_node(Point::new(0.0, 0.0));
        assert_eq!(g.neighbors(centre).len(), 4);
        for &(eid, nb) in g.neighbors(centre) {
            assert!(g
                .neighbors(nb)
                .iter()
                .any(|&(e2, n2)| e2 == eid && n2 == centre));
        }
    }

    #[test]
    fn nearest_node() {
        let g = RoadGraph::build(&cross(), projection()).unwrap();
        let n = g.nearest_node(Point::new(190.0, 10.0));
        assert_eq!(g.node_point(n), Point::new(200.0, 0.0));
    }

    #[test]
    fn deterministic_construction() {
        let a = RoadGraph::build(&cross(), projection()).unwrap();
        let b = RoadGraph::build(&cross(), projection()).unwrap();
        let ids_a: Vec<_> = a.edges().iter().map(|e| e.elements.clone()).collect();
        let ids_b: Vec<_> = b.edges().iter().map(|e| e.elements.clone()).collect();
        assert_eq!(ids_a, ids_b);
    }
}
