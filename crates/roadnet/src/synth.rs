//! Deterministic synthetic "downtown Oulu" — the Digiroad substitute.
//!
//! The real Digiroad database is licence-gated; this module generates a
//! city with the same *structural* properties the paper's pipeline relies
//! on:
//!
//! * a dense downtown core grid (the paper's study area, where the 200 m
//!   analysis cells live),
//! * three arterial roads leaving the core at the paper's named
//!   entry/exit regions **T** (south), **S** (east) and **L** (north-west),
//! * multi-element edges (so §IV-A junction/intermediate classification and
//!   Table 1 chain merging are exercised),
//! * one-way streets (so direction-aware map-matching is exercised),
//! * dead-end stubs (Fig. 9 discusses dead-end speed effects),
//! * bypass connectors (so taxi drivers have genuine route choice), and
//! * map-object populations calibrated to the paper's study-area totals
//!   {traffic lights 67, bus stops 48, pedestrian crossings 293} with the
//!   junction count emerging near the paper's 271 "crossings".
//!
//! Everything is a pure function of [`OuluConfig`], so studies are
//! reproducible from a single seed.

// `% 2 == 0` parity tests read better than `.is_multiple_of(2)` for the
// lattice-phase patterns below.
#![allow(clippy::manual_is_multiple_of)]

use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use taxitrace_geo::{BBox, GeoPoint, LocalProjection, Point, Polyline};

use crate::{
    ElementId, FlowDirection, FunctionalClass, MapObject, MapObjectKind, MapObjects, NodeId,
    RoadGraph, TrafficElement,
};

/// Small deterministic generator (SplitMix64) for attribute placement; the
/// full simulator RNG lives in `taxitrace-traces`, this one only has to be
/// stable and well-mixed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, n)`.
    pub fn next_below(&mut self, n: usize) -> usize {
        (self.next_f64() * n as f64) as usize % n.max(1)
    }
}

/// Configuration of the synthetic city.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OuluConfig {
    /// Seed for attribute placement.
    pub seed: u64,
    /// Number of traffic lights to place (paper study area: 67).
    pub traffic_lights: usize,
    /// Number of bus stops to place (paper: 48).
    pub bus_stops: usize,
    /// Number of pedestrian crossings to place (paper: 293).
    pub pedestrian_crossings: usize,
}

impl Default for OuluConfig {
    fn default() -> Self {
        Self {
            seed: 0x0071_2022,
            traffic_lights: 67,
            bus_stops: 48,
            pedestrian_crossings: 293,
        }
    }
}

/// A named origin/destination road (the paper's T, S, L road segments at
/// the key enter/exit points of downtown Oulu).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamedRoad {
    /// Region name: "T", "S" or "L".
    pub name: String,
    /// Centre-line of the road segment, oriented core → outskirts.
    pub axis: Polyline,
    /// Traffic elements making up the segment.
    pub elements: Vec<ElementId>,
    /// Graph node at the outer (outskirts) end.
    pub outer_node: NodeId,
    /// Graph node at the inner (towards core) end.
    pub inner_node: NodeId,
}

/// The generated city: road graph, attribute layer, named O-D roads,
/// centre-area polygon, and signalised junctions.
#[derive(Debug, Clone)]
pub struct SyntheticCity {
    pub graph: RoadGraph,
    pub objects: MapObjects,
    /// T, S, L in that order.
    pub od_roads: Vec<NamedRoad>,
    /// The paper's "central area" used to filter transitions (§IV-D).
    pub center_area: BBox,
    /// Junction nodes controlled by traffic lights.
    pub signalized: HashSet<NodeId>,
    /// Raw traffic elements the graph was built from.
    pub elements: Vec<TrafficElement>,
}

struct NetBuilder {
    elements: Vec<TrafficElement>,
    next_id: u64,
}

impl NetBuilder {
    fn new() -> Self {
        // Element ids start near the paper's Table 1 examples (121426…138855).
        Self { elements: Vec::new(), next_id: 121_000 }
    }

    /// Adds a road as `splits` consecutive traffic elements.
    fn add_road(
        &mut self,
        pts: &[Point],
        class: FunctionalClass,
        limit: f64,
        flow: FlowDirection,
        splits: usize,
    ) -> Vec<ElementId> {
        let line = Polyline::new(pts.to_vec()).expect("road needs >= 2 points");
        let splits = splits.max(1);
        let len = line.length();
        let mut ids = Vec::with_capacity(splits);
        for k in 0..splits {
            let a = len * k as f64 / splits as f64;
            let b = len * (k + 1) as f64 / splits as f64;
            // Collect original vertices strictly inside (a, b) plus endpoints.
            let mut verts = vec![line.point_at(a)];
            let mut acc = 0.0;
            for (i, seg) in line.segments().enumerate() {
                let _ = i;
                let v_end = acc + seg.length();
                if v_end > a + 1e-9 && v_end < b - 1e-9 {
                    verts.push(seg.b);
                }
                acc = v_end;
            }
            verts.push(line.point_at(b));
            let id = ElementId(self.next_id);
            self.next_id += 1;
            self.elements.push(TrafficElement {
                id,
                geometry: Polyline::new(verts).expect("split keeps >= 2 points"),
                class,
                speed_limit_kmh: limit,
                flow,
            });
            ids.push(id);
        }
        ids
    }
}

/// Generates the synthetic city.
pub fn generate(config: &OuluConfig) -> SyntheticCity {
    let mut rng = SplitMix64::new(config.seed);
    let mut b = NetBuilder::new();

    // ---- Downtown core grid: streets every 150 m over [-1050, 1050]². ----
    let ticks: Vec<f64> = (0..15).map(|i| -1050.0 + 150.0 * i as f64).collect();
    let p = Point::new;

    for (si, &x) in ticks.iter().enumerate() {
        // North-south street at this x, block by block.
        for w in ticks.windows(2) {
            let (y0, y1) = (w[0], w[1]);
            let flow = one_way_flow_ns(x);
            // Every third block is digitised as two elements to exercise
            // §IV-A chain merging (Table 1's multi-element rows).
            let splits = if (si + w_index(y0)) % 3 == 0 { 2 } else { 1 };
            let class = if x == 0.0 { FunctionalClass::Collector } else { FunctionalClass::Local };
            // Main collectors stay at 45 km/h through the core so the
            // natural O-D routes run through downtown.
            let limit = if x == 0.0 { 45.0 } else { core_limit(x, (y0 + y1) / 2.0) };
            b.add_road(&[p(x, y0), p(x, y1)], class, limit, flow, splits);
        }
    }
    for (si, &y) in ticks.iter().enumerate() {
        for w in ticks.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            let splits = if (si + w_index(x0)) % 4 == 0 { 2 } else { 1 };
            let class = if y == 0.0 { FunctionalClass::Collector } else { FunctionalClass::Local };
            let limit = if y == 0.0 { 45.0 } else { core_limit((x0 + x1) / 2.0, y) };
            b.add_road(&[p(x0, y), p(x1, y)], class, limit, FlowDirection::Both, splits);
        }
    }

    // ---- Dead-end stubs hanging off the boundary streets. ----
    // Mid-block attachment points create degree-3 junctions. Note: the
    // boundary block is replaced by two halves so the stub point is a
    // shared endpoint.
    let mut stub_dir = 1.0;
    let mut stubs = 0usize;
    for &y in &ticks {
        if y.abs() < 1050.0 {
            for &x in &[-1050.0, 1050.0] {
                // stub at mid of block (x boundary street, block starting y)
                let my = y + 75.0;
                if my >= 1050.0 {
                    continue;
                }
                let dir = if x < 0.0 { -1.0 } else { 1.0 };
                b.add_road(
                    &[p(x, my), p(x + dir * (80.0 + 40.0 * rng.next_f64()), my)],
                    FunctionalClass::Local,
                    30.0,
                    FlowDirection::Both,
                    1,
                );
                stubs += 1;
            }
        }
    }
    for &x in &ticks {
        if x.abs() < 1050.0 && w_index(x) % 2 == 0 {
            for &y in &[-1050.0, 1050.0] {
                let mx = x + 75.0;
                if mx >= 1050.0 {
                    continue;
                }
                stub_dir = -stub_dir;
                let dir = if y < 0.0 { -1.0 } else { 1.0 };
                b.add_road(
                    &[p(mx, y), p(mx, y + dir * (80.0 + 40.0 * rng.next_f64()))],
                    FunctionalClass::Local,
                    30.0,
                    FlowDirection::Both,
                    1,
                );
                stubs += 1;
            }
        }
    }
    let _ = stubs;

    // Boundary streets must be split at stub attachment points: rebuild the
    // four boundary streets block-halves. (The grid loop above already added
    // full blocks for the boundary; splitting is achieved automatically
    // because EndpointTable works on shared endpoints — a stub touching the
    // *middle* of an element does NOT split it. So instead of full blocks we
    // must have added half blocks. To keep the builder simple we re-add the
    // boundary with halves and remove the full-block originals.)
    b.elements.retain(|e| !is_unsplit_boundary_block(e, &ticks));
    for &y in &ticks {
        if y < 1050.0 {
            for &x in &[-1050.0, 1050.0] {
                let my = y + 75.0;
                b.add_road(&[p(x, y), p(x, my)], FunctionalClass::Local, 40.0, FlowDirection::Both, 1);
                b.add_road(&[p(x, my), p(x, y + 150.0)], FunctionalClass::Local, 40.0, FlowDirection::Both, 1);
            }
        }
    }
    for &x in &ticks {
        if x < 1050.0 && w_index(x) % 2 == 0 {
            for &y in &[-1050.0, 1050.0] {
                let mx = x + 75.0;
                b.add_road(&[p(x, y), p(mx, y)], FunctionalClass::Local, 40.0, FlowDirection::Both, 1);
                b.add_road(&[p(mx, y), p(x + 150.0, y)], FunctionalClass::Local, 40.0, FlowDirection::Both, 1);
            }
        }
    }

    // ---- Arterials to the named regions. ----
    // T: south. Junctions at -1550 and -2000 where service stubs attach.
    let t_main = b.add_road(
        &[p(0.0, -1050.0), p(0.0, -1550.0)],
        FunctionalClass::Arterial,
        60.0,
        FlowDirection::Both,
        2,
    );
    let _ = t_main;
    b.add_road(&[p(0.0, -1550.0), p(0.0, -2000.0)], FunctionalClass::Arterial, 60.0, FlowDirection::Both, 1);
    b.add_road(&[p(0.0, -1550.0), p(250.0, -1550.0)], FunctionalClass::Local, 40.0, FlowDirection::Both, 1);
    b.add_road(&[p(0.0, -2000.0), p(-250.0, -2000.0)], FunctionalClass::Local, 40.0, FlowDirection::Both, 1);
    let t_road = b.add_road(
        &[p(0.0, -2000.0), p(0.0, -2450.0)],
        FunctionalClass::Arterial,
        60.0,
        FlowDirection::Both,
        2,
    );
    let t_axis = Polyline::new(vec![p(0.0, -2000.0), p(0.0, -2450.0)]).expect("axis");

    // S: east.
    b.add_road(&[p(1050.0, 0.0), p(1550.0, 0.0)], FunctionalClass::Arterial, 60.0, FlowDirection::Both, 2);
    b.add_road(&[p(1550.0, 0.0), p(2000.0, 0.0)], FunctionalClass::Arterial, 60.0, FlowDirection::Both, 1);
    b.add_road(&[p(1550.0, 0.0), p(1550.0, 250.0)], FunctionalClass::Local, 40.0, FlowDirection::Both, 1);
    b.add_road(&[p(2000.0, 0.0), p(2000.0, -250.0)], FunctionalClass::Local, 40.0, FlowDirection::Both, 1);
    let s_road = b.add_road(
        &[p(2000.0, 0.0), p(2450.0, 0.0)],
        FunctionalClass::Arterial,
        60.0,
        FlowDirection::Both,
        2,
    );
    let s_axis = Polyline::new(vec![p(2000.0, 0.0), p(2450.0, 0.0)]).expect("axis");

    // L: north-west diagonal.
    b.add_road(&[p(-1050.0, 750.0), p(-1400.0, 1000.0)], FunctionalClass::Arterial, 60.0, FlowDirection::Both, 1);
    b.add_road(&[p(-1400.0, 1000.0), p(-1750.0, 1250.0)], FunctionalClass::Arterial, 60.0, FlowDirection::Both, 1);
    b.add_road(&[p(-1400.0, 1000.0), p(-1400.0, 1250.0)], FunctionalClass::Local, 40.0, FlowDirection::Both, 1);
    b.add_road(&[p(-1750.0, 1250.0), p(-1950.0, 1100.0)], FunctionalClass::Local, 40.0, FlowDirection::Both, 1);
    let l_road = b.add_road(
        &[p(-1750.0, 1250.0), p(-2100.0, 1500.0)],
        FunctionalClass::Arterial,
        60.0,
        FlowDirection::Both,
        2,
    );
    let l_axis = Polyline::new(vec![p(-1750.0, 1250.0), p(-2100.0, 1500.0)]).expect("axis");

    // ---- Bypass connectors (route-choice alternatives). ----
    // Slow service roads: genuine alternatives under noisy route choice,
    // but the free-flow optimum stays through downtown — matching the
    // paper's setting where the studied transitions cross the centre.
    b.add_road(&[p(1050.0, -1050.0), p(1550.0, 0.0)], FunctionalClass::Local, 30.0, FlowDirection::Both, 1);
    b.add_road(&[p(1050.0, -1050.0), p(0.0, -1550.0)], FunctionalClass::Local, 30.0, FlowDirection::Both, 1);
    b.add_road(&[p(-1050.0, -1050.0), p(0.0, -1550.0)], FunctionalClass::Local, 30.0, FlowDirection::Both, 1);
    b.add_road(&[p(-1050.0, 1050.0), p(-1400.0, 1000.0)], FunctionalClass::Local, 30.0, FlowDirection::Both, 1);
    b.add_road(&[p(1050.0, 1050.0), p(1550.0, 0.0)], FunctionalClass::Local, 30.0, FlowDirection::Both, 1);

    // ---- Build the graph. ----
    let projection = LocalProjection::new(GeoPoint::new(25.4651, 65.0121));
    let elements = b.elements;
    let graph = RoadGraph::build(&elements, projection).expect("synthetic city is well-formed");

    // ---- Attribute placement. ----
    let objects = place_objects(config, &mut rng, &graph, &elements);
    let signalized = signalized_nodes(&graph, &objects);

    // ---- Named O-D roads. ----
    let od_roads = vec![
        named_road("T", t_axis, t_road, &graph),
        named_road("S", s_axis, s_road, &graph),
        named_road("L", l_axis, l_road, &graph),
    ];

    let center_area = BBox::from_corners(p(-1150.0, -1150.0), p(1150.0, 1150.0));

    SyntheticCity { graph, objects, od_roads, center_area, signalized, elements }
}

fn named_road(
    name: &str,
    axis: Polyline,
    elements: Vec<ElementId>,
    graph: &RoadGraph,
) -> NamedRoad {
    NamedRoad {
        name: name.to_string(),
        outer_node: graph.nearest_node(axis.end()),
        inner_node: graph.nearest_node(axis.start()),
        axis,
        elements,
    }
}

/// Index of a tick value in the 150 m lattice (for deterministic patterns).
fn w_index(v: f64) -> usize {
    ((v + 1050.0) / 150.0).round() as usize
}

/// Two central parallel streets are one-way in opposite directions.
fn one_way_flow_ns(x: f64) -> FlowDirection {
    if x == -150.0 {
        FlowDirection::WithDigitization // digitised south→north
    } else if x == 150.0 {
        FlowDirection::AgainstDigitization // digitised south→north, flows north→south
    } else {
        FlowDirection::Both
    }
}

/// Speed limits: 30 km/h in the innermost blocks, 40 km/h outer core.
fn core_limit(x: f64, y: f64) -> f64 {
    if x.abs() <= 450.0 && y.abs() <= 450.0 {
        30.0
    } else {
        40.0
    }
}

/// Identifies the full-block boundary elements that are replaced by halves.
fn is_unsplit_boundary_block(e: &TrafficElement, ticks: &[f64]) -> bool {
    let (a, z) = (e.geometry.start(), e.geometry.end());
    let lo = *ticks.first().expect("ticks");
    let hi = *ticks.last().expect("ticks");
    let on_v_boundary = (a.x - lo).abs() < 1e-6 && (z.x - lo).abs() < 1e-6
        || (a.x - hi).abs() < 1e-6 && (z.x - hi).abs() < 1e-6;
    let on_h_boundary = ((a.y - lo).abs() < 1e-6 && (z.y - lo).abs() < 1e-6
        || (a.y - hi).abs() < 1e-6 && (z.y - hi).abs() < 1e-6)
        && w_index(a.x.min(z.x)) % 2 == 0;
    on_v_boundary || on_h_boundary
}

/// Places the configured numbers of traffic lights, bus stops and pedestrian
/// crossings on graph edges.
fn place_objects(
    config: &OuluConfig,
    rng: &mut SplitMix64,
    graph: &RoadGraph,
    elements: &[TrafficElement],
) -> MapObjects {
    let mut objects = Vec::new();

    // Traffic lights: at the junctions closest to the city centre, on every
    // approach? No — one light object per junction, attached to the nearest
    // incident element end (matching Digiroad, where a signal is a point
    // object on one element).
    let mut junctions: Vec<NodeId> = (0..graph.num_nodes() as u32)
        .map(NodeId)
        .filter(|&n| graph.neighbors(n).len() >= 3)
        .collect();
    // Signals live where real cities put them: along the main collectors
    // (the x = 0 / y = 0 corridors the O-D routes use) and the arterial
    // joints first, then the remaining most-central junctions.
    junctions.sort_by(|&a, &b| {
        let rank = |n: NodeId| {
            let p = graph.node_point(n);
            // Alternate corridor junctions carry signals (every block
            // would over-signal relative to the paper's per-route counts).
            let block = ((p.x + p.y + 2100.0) / 150.0).round() as i64;
            let on_corridor = (p.x.abs() < 75.0 || p.y.abs() < 75.0) && block % 2 == 0;
            let d = p.distance_sq(Point::new(0.0, 0.0));
            (if on_corridor { 0u8 } else { 1u8 }, d)
        };
        let (ca, da) = rank(a);
        let (cb, db) = rank(b);
        ca.cmp(&cb).then(da.total_cmp(&db)).then(a.0.cmp(&b.0))
    });
    for &n in junctions.iter().take(config.traffic_lights) {
        let np = graph.node_point(n);
        // Attach to the first incident edge's nearest element.
        let (eid, _) = graph.neighbors(n)[0];
        let edge = graph.edge(eid);
        let elem_id = if edge.from == n {
            edge.elements[0]
        } else {
            *edge.elements.last().expect("edge has elements")
        };
        let elem = elements
            .iter()
            .find(|e| e.id == elem_id)
            .expect("element exists");
        let proj = elem.geometry.project(np);
        objects.push(MapObject {
            kind: MapObjectKind::TrafficLight,
            location: np,
            element: elem_id,
            offset_m: proj.offset,
        });
    }

    // Bus stops: spread along collector and arterial elements.
    let mut corridor_elems: Vec<&TrafficElement> = elements
        .iter()
        .filter(|e| e.class != FunctionalClass::Local && e.length() > 60.0)
        .collect();
    corridor_elems.sort_by_key(|e| e.id);
    for k in 0..config.bus_stops {
        let e = corridor_elems[k % corridor_elems.len()];
        let off = e.length() * (0.25 + 0.5 * rng.next_f64());
        objects.push(MapObject {
            kind: MapObjectKind::BusStop,
            location: e.geometry.point_at(off),
            element: e.id,
            offset_m: off,
        });
    }

    // Pedestrian crossings: dense in the core, mostly on local streets.
    let mut core_elems: Vec<&TrafficElement> = elements
        .iter()
        .filter(|e| {
            let c = e.geometry.point_at(e.length() / 2.0);
            c.x.abs() <= 1050.0 && c.y.abs() <= 1050.0 && e.length() > 30.0
        })
        .collect();
    core_elems.sort_by_key(|e| e.id);
    for k in 0..config.pedestrian_crossings {
        let e = core_elems[(k * 7 + rng.next_below(3)) % core_elems.len()];
        let off = e.length() * (0.15 + 0.7 * rng.next_f64());
        objects.push(MapObject {
            kind: MapObjectKind::PedestrianCrossing,
            location: e.geometry.point_at(off),
            element: e.id,
            offset_m: off,
        });
    }

    MapObjects::new(objects)
}

/// Junction nodes within 20 m of a traffic light.
fn signalized_nodes(graph: &RoadGraph, objects: &MapObjects) -> HashSet<NodeId> {
    let lights: Vec<Point> = objects
        .all()
        .iter()
        .filter(|o| o.kind == MapObjectKind::TrafficLight)
        .map(|o| o.location)
        .collect();
    (0..graph.num_nodes() as u32)
        .map(NodeId)
        .filter(|&n| {
            let np = graph.node_point(n);
            lights.iter().any(|l| l.distance(np) <= 20.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city() -> SyntheticCity {
        generate(&OuluConfig::default())
    }

    #[test]
    fn object_totals_match_paper() {
        let c = city();
        assert_eq!(c.objects.count_of_kind(MapObjectKind::TrafficLight), 67);
        assert_eq!(c.objects.count_of_kind(MapObjectKind::BusStop), 48);
        assert_eq!(c.objects.count_of_kind(MapObjectKind::PedestrianCrossing), 293);
    }

    #[test]
    fn junction_count_near_paper() {
        let c = city();
        let junctions = (0..c.graph.num_nodes() as u32)
            .map(NodeId)
            .filter(|&n| c.graph.neighbors(n).len() >= 3)
            .count();
        // Paper study area: 271 crossings. Shape target: same order.
        assert!((180..=360).contains(&junctions), "junctions = {junctions}");
    }

    #[test]
    fn od_roads_exist_and_reach_each_other() {
        let c = city();
        assert_eq!(c.od_roads.len(), 3);
        let names: Vec<&str> = c.od_roads.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["T", "S", "L"]);
        // Every OD pair must be routable.
        for a in &c.od_roads {
            for b_ in &c.od_roads {
                if a.name == b_.name {
                    continue;
                }
                let p = crate::dijkstra::shortest_path(
                    &c.graph,
                    a.outer_node,
                    b_.outer_node,
                    crate::CostModel::Distance,
                );
                let p = p.unwrap_or_else(|| panic!("{} -> {} unroutable", a.name, b_.name));
                // Paper Table 4: route distances roughly 1.5–7 km.
                assert!(p.length_m > 1500.0 && p.length_m < 9000.0, "{}", p.length_m);
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = city();
        let b = city();
        assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.objects.all().len(), b.objects.all().len());
        assert_eq!(a.objects.all()[10].location, b.objects.all()[10].location);
    }

    #[test]
    fn multi_element_edges_exist() {
        let c = city();
        let multi = c.graph.edges().iter().filter(|e| e.elements.len() >= 2).count();
        assert!(multi > 20, "got {multi} multi-element edges");
    }

    #[test]
    fn one_way_streets_exist() {
        let c = city();
        let one_way = c.graph.edges().iter().filter(|e| !e.is_two_way()).count();
        assert!(one_way >= 10, "got {one_way} one-way edges");
    }

    #[test]
    fn signalized_junctions_cover_corridors() {
        let c = city();
        assert!(!c.signalized.is_empty());
        // Signals concentrate on the main corridors / centre: most lie on
        // the x = 0 or y = 0 collectors, the rest in the central blocks.
        let on_corridor = c
            .signalized
            .iter()
            .filter(|&&n| {
                let p = c.graph.node_point(n);
                p.x.abs() < 75.0 || p.y.abs() < 75.0
            })
            .count();
        // Alternate corridor junctions are signalised; the remainder fills
        // the central blocks.
        assert!(
            on_corridor >= 12,
            "{on_corridor}/{} on corridors",
            c.signalized.len()
        );
    }

    #[test]
    fn od_outer_nodes_outside_center() {
        let c = city();
        for r in &c.od_roads {
            assert!(
                !c.center_area.contains(c.graph.node_point(r.outer_node)),
                "{} outer node inside centre",
                r.name
            );
        }
    }

    #[test]
    fn dead_ends_exist() {
        let c = city();
        let dead_ends = (0..c.graph.num_nodes() as u32)
            .map(NodeId)
            .filter(|&n| c.graph.neighbors(n).len() == 1)
            .count();
        assert!(dead_ends > 10, "got {dead_ends}");
    }
}
