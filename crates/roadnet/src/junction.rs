use std::collections::BTreeMap;

use taxitrace_geo::Point;

use crate::TrafficElement;

/// Spatially-quantised endpoint key (millimetre resolution).
///
/// Digiroad elements that touch share exact endpoint coordinates; quantising
/// to 1 mm makes the identity robust to floating-point noise introduced by
/// projection while never merging distinct road endpoints (which are metres
/// apart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointKey {
    x_mm: i64,
    y_mm: i64,
}

impl EndpointKey {
    /// Quantises a planar point.
    pub fn of(p: Point) -> Self {
        Self {
            x_mm: (p.x * 1000.0).round() as i64,
            y_mm: (p.y * 1000.0).round() as i64,
        }
    }

    /// The representative point of the key.
    pub fn point(&self) -> Point {
        Point::new(self.x_mm as f64 / 1000.0, self.y_mm as f64 / 1000.0)
    }
}

/// Classification of a traffic-element endpoint per §IV-A of the paper:
/// *junctions* are endpoints where at least three traffic elements meet,
/// *intermediate points* where exactly two meet. Endpoints touched by a
/// single element are *dead ends* (also graph vertices — the paper's Fig. 9
/// discussion explicitly examines dead-end effects on speed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointKind {
    Junction { degree: usize },
    Intermediate,
    DeadEnd,
}

impl EndpointKind {
    /// Whether this endpoint becomes a vertex of the road graph.
    #[inline]
    pub fn is_graph_vertex(&self) -> bool {
        !matches!(self, EndpointKind::Intermediate)
    }
}

/// Incidence record for one endpoint.
#[derive(Debug, Clone)]
pub struct EndpointInfo {
    /// `(element index, which end)` — `false` = digitisation start,
    /// `true` = digitisation end.
    pub incident: Vec<(usize, bool)>,
}

/// The endpoint classification table the paper constructs "to identify the
/// type of the endpoints of the traffic elements".
#[derive(Debug)]
pub struct EndpointTable {
    // BTreeMap so `iter` yields endpoints in key order — graph node ids
    // derive from this order and must not depend on hash seeding.
    map: BTreeMap<EndpointKey, EndpointInfo>,
}

impl EndpointTable {
    /// Builds the table from a set of traffic elements.
    pub fn build(elements: &[TrafficElement]) -> Self {
        let mut map: BTreeMap<EndpointKey, EndpointInfo> = BTreeMap::new();
        for (i, e) in elements.iter().enumerate() {
            map.entry(EndpointKey::of(e.start()))
                .or_insert_with(|| EndpointInfo { incident: Vec::new() })
                .incident
                .push((i, false));
            map.entry(EndpointKey::of(e.end()))
                .or_insert_with(|| EndpointInfo { incident: Vec::new() })
                .incident
                .push((i, true));
        }
        Self { map }
    }

    /// Classifies an endpoint key.
    pub fn kind(&self, key: EndpointKey) -> Option<EndpointKind> {
        // Entries are only created on insertion, so `incident` is never
        // empty and the 0 arm folds into DeadEnd harmlessly.
        self.map.get(&key).map(|info| match info.incident.len() {
            0 | 1 => EndpointKind::DeadEnd,
            2 => EndpointKind::Intermediate,
            d => EndpointKind::Junction { degree: d },
        })
    }

    /// Incidence record for an endpoint key.
    pub fn info(&self, key: EndpointKey) -> Option<&EndpointInfo> {
        self.map.get(&key)
    }

    /// Iterates over `(key, kind)` for every endpoint.
    pub fn iter(&self) -> impl Iterator<Item = (EndpointKey, EndpointKind)> + '_ {
        self.map.iter().map(|(k, info)| {
            let kind = match info.incident.len() {
                1 => EndpointKind::DeadEnd,
                2 => EndpointKind::Intermediate,
                d => EndpointKind::Junction { degree: d },
            };
            (*k, kind)
        })
    }

    /// Number of distinct endpoints.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Count of endpoints classified as junctions.
    pub fn junction_count(&self) -> usize {
        self.iter()
            .filter(|(_, k)| matches!(k, EndpointKind::Junction { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ElementId, FlowDirection, FunctionalClass};
    use taxitrace_geo::Polyline;

    fn elem(id: u64, pts: &[(f64, f64)]) -> TrafficElement {
        TrafficElement {
            id: ElementId(id),
            geometry: Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
                .unwrap(),
            class: FunctionalClass::Local,
            speed_limit_kmh: 40.0,
            flow: FlowDirection::Both,
        }
    }

    /// A "T" of three elements meeting at the origin plus a chain.
    fn t_network() -> Vec<TrafficElement> {
        vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)]),
            elem(2, &[(0.0, 0.0), (-100.0, 0.0)]),
            elem(3, &[(0.0, 0.0), (0.0, 100.0)]),
            // chain continuing east through an intermediate point
            elem(4, &[(100.0, 0.0), (200.0, 0.0)]),
        ]
    }

    #[test]
    fn classification() {
        let els = t_network();
        let t = EndpointTable::build(&els);
        assert_eq!(
            t.kind(EndpointKey::of(Point::new(0.0, 0.0))),
            Some(EndpointKind::Junction { degree: 3 })
        );
        assert_eq!(
            t.kind(EndpointKey::of(Point::new(100.0, 0.0))),
            Some(EndpointKind::Intermediate)
        );
        assert_eq!(
            t.kind(EndpointKey::of(Point::new(200.0, 0.0))),
            Some(EndpointKind::DeadEnd)
        );
        assert_eq!(t.kind(EndpointKey::of(Point::new(55.0, 55.0))), None);
    }

    #[test]
    fn vertex_predicate() {
        assert!(EndpointKind::Junction { degree: 3 }.is_graph_vertex());
        assert!(EndpointKind::DeadEnd.is_graph_vertex());
        assert!(!EndpointKind::Intermediate.is_graph_vertex());
    }

    #[test]
    fn quantisation_merges_float_noise_only() {
        let a = EndpointKey::of(Point::new(100.0, 0.0));
        let b = EndpointKey::of(Point::new(100.0 + 1e-7, -1e-7));
        let c = EndpointKey::of(Point::new(100.01, 0.0));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn counts() {
        let t = EndpointTable::build(&t_network());
        assert_eq!(t.len(), 5);
        assert_eq!(t.junction_count(), 1);
    }
}
