//! Digital-map quality assurance.
//!
//! §VII of the paper: "in data analysis, accuracy and correctness of the
//! digital map information is important". This module audits a road graph
//! for the defects that silently corrupt downstream analyses: unreachable
//! pockets (one-way mistakes), degenerate geometry, duplicate identifiers,
//! and implausible attributes.

use std::collections::BTreeMap;

use crate::{EdgeId, NodeId, RoadGraph, TrafficElement};

/// One detected map defect.
#[derive(Debug, Clone, PartialEq)]
pub enum MapDefect {
    /// Two traffic elements share an id.
    DuplicateElementId(crate::ElementId),
    /// An element shorter than a metre (digitisation noise).
    DegenerateElement { id: crate::ElementId, length_m: f64 },
    /// A speed limit outside the plausible 5–130 km/h range.
    ImplausibleSpeedLimit { id: crate::ElementId, limit_kmh: f64 },
    /// A node that cannot reach the largest strongly connected component
    /// (or be reached from it) — typically a one-way digitisation error.
    UnreachableNode(NodeId),
    /// An edge whose geometry length disagrees with its stored length.
    LengthMismatch { edge: EdgeId, stored_m: f64, geometry_m: f64 },
}

/// Result of a quality audit.
#[derive(Debug, Clone, Default)]
pub struct QualityReport {
    pub defects: Vec<MapDefect>,
    /// Size of the largest strongly connected component (nodes).
    pub largest_scc: usize,
    pub total_nodes: usize,
}

impl QualityReport {
    /// Whether the map is clean.
    pub fn is_clean(&self) -> bool {
        self.defects.is_empty()
    }

    /// Fraction of nodes in the largest strongly connected component.
    pub fn connectivity(&self) -> f64 {
        if self.total_nodes == 0 {
            return 1.0;
        }
        self.largest_scc as f64 / self.total_nodes as f64
    }
}

/// Audits elements + graph.
pub fn audit(elements: &[TrafficElement], graph: &RoadGraph) -> QualityReport {
    let mut report = QualityReport { total_nodes: graph.num_nodes(), ..Default::default() };

    // Element-level checks.
    // BTreeMap: defects are reported in id order, part of the exported
    // QualityReport and therefore of the deterministic output surface.
    let mut seen: BTreeMap<crate::ElementId, usize> = BTreeMap::new();
    for e in elements {
        *seen.entry(e.id).or_insert(0) += 1;
        if e.length() < 1.0 {
            report
                .defects
                .push(MapDefect::DegenerateElement { id: e.id, length_m: e.length() });
        }
        if !(5.0..=130.0).contains(&e.speed_limit_kmh) {
            report.defects.push(MapDefect::ImplausibleSpeedLimit {
                id: e.id,
                limit_kmh: e.speed_limit_kmh,
            });
        }
    }
    for (id, count) in seen {
        if count > 1 {
            report.defects.push(MapDefect::DuplicateElementId(id));
        }
    }

    // Edge-level consistency.
    for e in graph.edges() {
        let geom = e.geometry.length();
        if (geom - e.length_m).abs() > 1.0 {
            report.defects.push(MapDefect::LengthMismatch {
                edge: e.id,
                stored_m: e.length_m,
                geometry_m: geom,
            });
        }
    }

    // Connectivity: largest SCC via Kosaraju.
    let scc = strongly_connected_components(graph);
    let largest: Vec<NodeId> =
        scc.iter().max_by_key(|c| c.len()).cloned().unwrap_or_default();
    report.largest_scc = largest.len();
    let in_largest: std::collections::HashSet<NodeId> = largest.into_iter().collect();
    for n in 0..graph.num_nodes() as u32 {
        let node = NodeId(n);
        if !in_largest.contains(&node) {
            report.defects.push(MapDefect::UnreachableNode(node));
        }
    }

    report.defects.sort_by_key(defect_order);
    report
}

fn defect_order(d: &MapDefect) -> u8 {
    match d {
        MapDefect::DuplicateElementId(_) => 0,
        MapDefect::DegenerateElement { .. } => 1,
        MapDefect::ImplausibleSpeedLimit { .. } => 2,
        MapDefect::LengthMismatch { .. } => 3,
        MapDefect::UnreachableNode(_) => 4,
    }
}

/// Kosaraju's algorithm over the directed road graph (edges respecting
/// one-way restrictions).
pub fn strongly_connected_components(graph: &RoadGraph) -> Vec<Vec<NodeId>> {
    let n = graph.num_nodes();
    // Reverse adjacency.
    let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for u in 0..n as u32 {
        for &(_, v) in graph.neighbors(NodeId(u)) {
            rev[v.0 as usize].push(NodeId(u));
        }
    }

    // First pass: finish order (iterative DFS).
    let mut visited = vec![false; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    for start in 0..n as u32 {
        if visited[start as usize] {
            continue;
        }
        // Stack holds (node, next-neighbor-index).
        let mut stack: Vec<(NodeId, usize)> = vec![(NodeId(start), 0)];
        visited[start as usize] = true;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let neighbors = graph.neighbors(node);
            if *idx < neighbors.len() {
                let (_, next) = neighbors[*idx];
                *idx += 1;
                if !visited[next.0 as usize] {
                    visited[next.0 as usize] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
    }

    // Second pass: reverse graph in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    for &node in order.iter().rev() {
        if comp[node.0 as usize] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut stack = vec![node];
        comp[node.0 as usize] = id;
        while let Some(u) = stack.pop() {
            members.push(u);
            for &v in &rev[u.0 as usize] {
                if comp[v.0 as usize] == usize::MAX {
                    comp[v.0 as usize] = id;
                    stack.push(v);
                }
            }
        }
        components.push(members);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, OuluConfig};
    use crate::{ElementId, FlowDirection, FunctionalClass};
    use taxitrace_geo::{GeoPoint, LocalProjection, Point, Polyline};

    fn elem(id: u64, pts: &[(f64, f64)], flow: FlowDirection, limit: f64) -> TrafficElement {
        TrafficElement {
            id: ElementId(id),
            geometry: Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
                .unwrap(),
            class: FunctionalClass::Local,
            speed_limit_kmh: limit,
            flow,
        }
    }

    fn proj() -> LocalProjection {
        LocalProjection::new(GeoPoint::new(25.0, 65.0))
    }

    #[test]
    fn synthetic_city_is_clean() {
        let city = generate(&OuluConfig::default());
        let report = audit(&city.elements, &city.graph);
        assert!(
            report.is_clean(),
            "defects: {:?}",
            report.defects.iter().take(5).collect::<Vec<_>>()
        );
        assert_eq!(report.connectivity(), 1.0, "whole city mutually reachable");
    }

    #[test]
    fn detects_one_way_trap() {
        // A dead-end reachable only INTO via a one-way: not in the SCC.
        let els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::Both, 40.0),
            elem(2, &[(0.0, 0.0), (0.0, 100.0)], FlowDirection::Both, 40.0),
            elem(3, &[(0.0, 0.0), (-100.0, 0.0)], FlowDirection::Both, 40.0),
            // Trap: can enter, cannot leave.
            elem(4, &[(100.0, 0.0), (200.0, 0.0)], FlowDirection::WithDigitization, 40.0),
            elem(5, &[(100.0, 0.0), (100.0, 100.0)], FlowDirection::Both, 40.0),
        ];
        let graph = RoadGraph::build(&els, proj()).unwrap();
        let report = audit(&els, &graph);
        let traps = report
            .defects
            .iter()
            .filter(|d| matches!(d, MapDefect::UnreachableNode(_)))
            .count();
        assert_eq!(traps, 1, "{:?}", report.defects);
        assert!(report.connectivity() < 1.0);
    }

    #[test]
    fn detects_attribute_defects() {
        let els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::Both, 40.0),
            elem(1, &[(0.0, 0.0), (0.0, 100.0)], FlowDirection::Both, 40.0), // dup id
            elem(3, &[(0.0, 0.0), (0.3, 0.0)], FlowDirection::Both, 40.0), // degenerate
            elem(4, &[(0.0, 0.0), (-100.0, 0.0)], FlowDirection::Both, 250.0), // bad limit
        ];
        let graph = RoadGraph::build(&els, proj()).unwrap();
        let report = audit(&els, &graph);
        assert!(report
            .defects
            .iter()
            .any(|d| matches!(d, MapDefect::DuplicateElementId(ElementId(1)))));
        assert!(report
            .defects
            .iter()
            .any(|d| matches!(d, MapDefect::DegenerateElement { id: ElementId(3), .. })));
        assert!(report
            .defects
            .iter()
            .any(|d| matches!(d, MapDefect::ImplausibleSpeedLimit { id: ElementId(4), .. })));
    }

    #[test]
    fn scc_on_two_way_graph_is_single_component() {
        let els = vec![
            elem(1, &[(0.0, 0.0), (100.0, 0.0)], FlowDirection::Both, 40.0),
            elem(2, &[(0.0, 0.0), (0.0, 100.0)], FlowDirection::Both, 40.0),
            elem(3, &[(0.0, 0.0), (-100.0, 0.0)], FlowDirection::Both, 40.0),
        ];
        let graph = RoadGraph::build(&els, proj()).unwrap();
        let scc = strongly_connected_components(&graph);
        assert_eq!(scc.len(), 1);
        assert_eq!(scc[0].len(), graph.num_nodes());
    }
}
