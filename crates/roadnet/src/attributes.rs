use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use taxitrace_geo::{BBox, CellId, Grid, Point};

use crate::ElementId;

/// Kind of a transportation-system point object (Digiroad's "objects of the
/// transportation system, like bus stops and traffic lights").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MapObjectKind {
    TrafficLight,
    BusStop,
    PedestrianCrossing,
}

impl MapObjectKind {
    /// All object kinds.
    pub const ALL: [MapObjectKind; 3] = [
        MapObjectKind::TrafficLight,
        MapObjectKind::BusStop,
        MapObjectKind::PedestrianCrossing,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            MapObjectKind::TrafficLight => "traffic light",
            MapObjectKind::BusStop => "bus stop",
            MapObjectKind::PedestrianCrossing => "pedestrian crossing",
        }
    }
}

/// A point object attached to a traffic element.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapObject {
    pub kind: MapObjectKind,
    /// Location in the planar frame.
    pub location: Point,
    /// The traffic element the object belongs to.
    pub element: ElementId,
    /// Arc-length offset along the element's digitisation direction, metres.
    pub offset_m: f64,
}

/// The attribute layer of the digital map: all point objects, with per-kind
/// and per-element indexes for the paper's §IV-F attribute fetching and the
/// grid feature counts of Table 5 / Fig. 6.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MapObjects {
    objects: Vec<MapObject>,
    by_element: HashMap<ElementId, Vec<usize>>,
}

impl MapObjects {
    /// Builds the layer from a list of objects.
    pub fn new(objects: Vec<MapObject>) -> Self {
        let mut by_element: HashMap<ElementId, Vec<usize>> = HashMap::new();
        for (i, o) in objects.iter().enumerate() {
            by_element.entry(o.element).or_default().push(i);
        }
        Self { objects, by_element }
    }

    /// All objects.
    #[inline]
    pub fn all(&self) -> &[MapObject] {
        &self.objects
    }

    /// Number of objects of a given kind.
    pub fn count_of_kind(&self, kind: MapObjectKind) -> usize {
        self.objects.iter().filter(|o| o.kind == kind).count()
    }

    /// Objects attached to a traffic element.
    pub fn on_element(&self, e: ElementId) -> impl Iterator<Item = &MapObject> + '_ {
        self.by_element
            .get(&e)
            .into_iter()
            .flatten()
            .map(move |&i| &self.objects[i])
    }

    /// Counts objects of `kind` along a sequence of traversed elements
    /// (the §IV-F "number of … traffic lights for transitions" fetch).
    /// Elements traversed twice are counted twice, matching the paper's
    /// per-route totals.
    pub fn count_along(&self, elements: &[ElementId], kind: MapObjectKind) -> usize {
        elements
            .iter()
            .map(|e| self.on_element(*e).filter(|o| o.kind == kind).count())
            .sum()
    }

    /// Counts objects of each kind per grid cell within `area`
    /// (the per-cell feature statistics behind Table 5 and Fig. 6).
    pub fn counts_per_cell(
        &self,
        grid: &Grid,
        area: &BBox,
    ) -> HashMap<CellId, [usize; 3]> {
        let mut out: HashMap<CellId, [usize; 3]> = HashMap::new();
        for o in &self.objects {
            if !area.contains(o.location) {
                continue;
            }
            let cell = grid.cell_of(o.location);
            let slot = match o.kind {
                MapObjectKind::TrafficLight => 0,
                MapObjectKind::BusStop => 1,
                MapObjectKind::PedestrianCrossing => 2,
            };
            out.entry(cell).or_default()[slot] += 1;
        }
        out
    }

    /// Objects within `radius` metres of `p`.
    pub fn near(&self, p: Point, radius: f64) -> impl Iterator<Item = &MapObject> + '_ {
        let r2 = radius * radius;
        self.objects.iter().filter(move |o| o.location.distance_sq(p) <= r2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(kind: MapObjectKind, x: f64, y: f64, element: u64) -> MapObject {
        MapObject {
            kind,
            location: Point::new(x, y),
            element: ElementId(element),
            offset_m: 0.0,
        }
    }

    fn layer() -> MapObjects {
        MapObjects::new(vec![
            obj(MapObjectKind::TrafficLight, 10.0, 10.0, 1),
            obj(MapObjectKind::TrafficLight, 250.0, 10.0, 2),
            obj(MapObjectKind::BusStop, 50.0, 50.0, 1),
            obj(MapObjectKind::PedestrianCrossing, 90.0, 10.0, 1),
            obj(MapObjectKind::PedestrianCrossing, 300.0, 300.0, 3),
        ])
    }

    #[test]
    fn kind_counts() {
        let l = layer();
        assert_eq!(l.count_of_kind(MapObjectKind::TrafficLight), 2);
        assert_eq!(l.count_of_kind(MapObjectKind::BusStop), 1);
        assert_eq!(l.count_of_kind(MapObjectKind::PedestrianCrossing), 2);
    }

    #[test]
    fn count_along_route() {
        let l = layer();
        let route = vec![ElementId(1), ElementId(2)];
        assert_eq!(l.count_along(&route, MapObjectKind::TrafficLight), 2);
        assert_eq!(l.count_along(&route, MapObjectKind::PedestrianCrossing), 1);
        // Revisited element counts twice.
        let loop_route = vec![ElementId(1), ElementId(2), ElementId(1)];
        assert_eq!(l.count_along(&loop_route, MapObjectKind::TrafficLight), 3);
    }

    #[test]
    fn per_cell_counts() {
        let l = layer();
        let grid = Grid::paper_default();
        let area = BBox::from_corners(Point::new(0.0, 0.0), Point::new(400.0, 400.0));
        let counts = l.counts_per_cell(&grid, &area);
        // Cell (0,0): light + stop + crossing.
        assert_eq!(counts[&CellId { ix: 0, iy: 0 }], [1, 1, 1]);
        // Cell (1,0): the second light.
        assert_eq!(counts[&CellId { ix: 1, iy: 0 }], [1, 0, 0]);
        assert_eq!(counts[&CellId { ix: 1, iy: 1 }], [0, 0, 1]);
    }

    #[test]
    fn area_filter_excludes_outside() {
        let l = layer();
        let grid = Grid::paper_default();
        let area = BBox::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let counts = l.counts_per_cell(&grid, &area);
        assert_eq!(counts.len(), 1);
    }

    #[test]
    fn near_query() {
        let l = layer();
        let hits: Vec<_> = l.near(Point::new(0.0, 0.0), 60.0).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].kind, MapObjectKind::TrafficLight);
    }
}
