use std::fmt;

use serde::{Deserialize, Serialize};
use taxitrace_geo::{Point, Polyline};

/// Unique identifier of a traffic element, as in Digiroad
/// (the paper's Table 1 shows ids like `121499`, `138854`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct ElementId(pub u64);

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Permitted traffic-flow direction relative to the element's digitisation
/// direction (Digiroad stores both the geometry digitisation direction and
/// the allowed flow; the paper's map-matcher uses "information retrieved
/// from the digital map (like road directions)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowDirection {
    /// Two-way traffic.
    Both,
    /// One-way, in the digitisation direction of the geometry.
    WithDigitization,
    /// One-way, against the digitisation direction.
    AgainstDigitization,
}

/// Digiroad-style functional classification of a road.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum FunctionalClass {
    /// Main roads / regional arterials.
    Arterial,
    /// Collector streets (e.g. a downtown ring).
    Collector,
    /// Local streets.
    Local,
}

impl FunctionalClass {
    /// Digiroad-like numeric class (smaller = more significant).
    pub fn level(self) -> u8 {
        match self {
            FunctionalClass::Arterial => 1,
            FunctionalClass::Collector => 2,
            FunctionalClass::Local => 3,
        }
    }
}

/// The smallest unit of road centre-line geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficElement {
    pub id: ElementId,
    /// Centre-line geometry in the planar analysis frame; vertex order is
    /// the digitisation direction.
    pub geometry: Polyline,
    pub class: FunctionalClass,
    /// Posted speed limit, km/h (a segmented line-like attribute in
    /// Digiroad; we attach the constant limit of the element).
    pub speed_limit_kmh: f64,
    pub flow: FlowDirection,
}

impl TrafficElement {
    /// Endpoint at the digitisation start.
    #[inline]
    pub fn start(&self) -> Point {
        self.geometry.start()
    }

    /// Endpoint at the digitisation end.
    #[inline]
    pub fn end(&self) -> Point {
        self.geometry.end()
    }

    /// Element length in metres.
    #[inline]
    pub fn length(&self) -> f64 {
        self.geometry.length()
    }

    /// Whether traffic may traverse from the digitisation start towards the
    /// end.
    #[inline]
    pub fn allows_forward(&self) -> bool {
        matches!(self.flow, FlowDirection::Both | FlowDirection::WithDigitization)
    }

    /// Whether traffic may traverse from the digitisation end towards the
    /// start.
    #[inline]
    pub fn allows_backward(&self) -> bool {
        matches!(self.flow, FlowDirection::Both | FlowDirection::AgainstDigitization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn element(flow: FlowDirection) -> TrafficElement {
        TrafficElement {
            id: ElementId(121_499),
            geometry: Polyline::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)])
                .unwrap(),
            class: FunctionalClass::Local,
            speed_limit_kmh: 40.0,
            flow,
        }
    }

    #[test]
    fn direction_predicates() {
        let both = element(FlowDirection::Both);
        assert!(both.allows_forward() && both.allows_backward());
        let fwd = element(FlowDirection::WithDigitization);
        assert!(fwd.allows_forward() && !fwd.allows_backward());
        let bwd = element(FlowDirection::AgainstDigitization);
        assert!(!bwd.allows_forward() && bwd.allows_backward());
    }

    #[test]
    fn geometry_accessors() {
        let e = element(FlowDirection::Both);
        assert_eq!(e.start(), Point::new(0.0, 0.0));
        assert_eq!(e.end(), Point::new(100.0, 0.0));
        assert_eq!(e.length(), 100.0);
    }

    #[test]
    fn class_levels_ordered() {
        assert!(FunctionalClass::Arterial.level() < FunctionalClass::Local.level());
    }
}
