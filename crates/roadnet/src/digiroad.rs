//! A Digiroad-style text interchange format.
//!
//! Digiroad is published as GIS layers; this module round-trips a complete
//! map (traffic elements with attributes, transportation-system point
//! objects, named O-D roads, the study area) through a line-oriented text
//! format with WKT geometries, so maps can be exported, inspected in GIS
//! tooling, versioned, and re-imported without re-running the generator.
//!
//! ```text
//! DIGIROAD 1
//! PROJECTION POINT(25.4651 65.0121)
//! CENTER -1150 -1150 1150 1150
//! ELEMENT 121000 3 40 B LINESTRING(25.46 65.01, 25.47 65.01)
//! OBJECT TL 121000 12.5 POINT(25.461 65.01)
//! ROAD T 121402,121403 LINESTRING(...)
//! ```

use std::collections::HashSet;
use std::fmt;

use taxitrace_geo::wkt;
use taxitrace_geo::{BBox, GeoPoint, LocalProjection, Point, Polyline};

use crate::synth::{NamedRoad, SyntheticCity};
use crate::{
    ElementId, FlowDirection, FunctionalClass, MapObject, MapObjectKind, MapObjects, NodeId,
    RoadGraph, TrafficElement,
};

/// Import errors.
#[derive(Debug)]
pub enum DigiroadError {
    /// Header missing or wrong version.
    BadHeader(String),
    /// A record line failed to parse.
    BadRecord { line: usize, message: String },
    /// The element set did not form a valid road graph.
    Graph(crate::GraphError),
}

impl fmt::Display for DigiroadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DigiroadError::BadHeader(h) => write!(f, "bad digiroad header {h:?}"),
            DigiroadError::BadRecord { line, message } => {
                write!(f, "line {line}: {message}")
            }
            DigiroadError::Graph(e) => write!(f, "graph reconstruction failed: {e}"),
        }
    }
}

impl std::error::Error for DigiroadError {}

fn flow_code(f: FlowDirection) -> &'static str {
    match f {
        FlowDirection::Both => "B",
        FlowDirection::WithDigitization => "F",
        FlowDirection::AgainstDigitization => "A",
    }
}

fn kind_code(k: MapObjectKind) -> &'static str {
    match k {
        MapObjectKind::TrafficLight => "TL",
        MapObjectKind::BusStop => "BS",
        MapObjectKind::PedestrianCrossing => "PC",
    }
}

/// Exports a city to the text format.
pub fn export_city(city: &SyntheticCity) -> String {
    let proj = city.graph.projection();
    let mut out = String::new();
    out.push_str("DIGIROAD 1\n");
    out.push_str(&format!("PROJECTION {}\n", wkt::point_to_wkt(proj.origin())));
    let c = city.center_area;
    out.push_str(&format!(
        "CENTER {:.1} {:.1} {:.1} {:.1}\n",
        c.min_x, c.min_y, c.max_x, c.max_y
    ));
    for e in &city.elements {
        let coords: Vec<GeoPoint> =
            e.geometry.vertices().iter().map(|p| proj.unproject(*p)).collect();
        out.push_str(&format!(
            "ELEMENT {} {} {} {} {}\n",
            e.id,
            e.class.level(),
            e.speed_limit_kmh,
            flow_code(e.flow),
            wkt::linestring_to_wkt(&coords)
        ));
    }
    for o in city.objects.all() {
        out.push_str(&format!(
            "OBJECT {} {} {:.2} {}\n",
            kind_code(o.kind),
            o.element,
            o.offset_m,
            wkt::point_to_wkt(proj.unproject(o.location))
        ));
    }
    for r in &city.od_roads {
        let ids: Vec<String> = r.elements.iter().map(|e| e.to_string()).collect();
        let coords: Vec<GeoPoint> =
            r.axis.vertices().iter().map(|p| proj.unproject(*p)).collect();
        out.push_str(&format!(
            "ROAD {} {} {}\n",
            r.name,
            ids.join(","),
            wkt::linestring_to_wkt(&coords)
        ));
    }
    out
}

/// Imports a city from the text format, rebuilding the road graph and the
/// signalised-junction set.
pub fn import_city(text: &str) -> Result<SyntheticCity, DigiroadError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| DigiroadError::BadHeader("<empty>".into()))?;
    if header.trim() != "DIGIROAD 1" {
        return Err(DigiroadError::BadHeader(header.into()));
    }

    let mut projection: Option<LocalProjection> = None;
    let mut center_area = BBox::EMPTY;
    let mut elements: Vec<TrafficElement> = Vec::new();
    let mut objects: Vec<MapObject> = Vec::new();
    // (name, ids, axis coords) — geometry resolved once projection is known.
    let mut roads: Vec<(String, Vec<ElementId>, Vec<GeoPoint>)> = Vec::new();

    let bad = |line: usize, message: &str| DigiroadError::BadRecord {
        line: line + 1,
        message: message.to_string(),
    };

    for (ln, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (tag, rest) = line.split_once(' ').ok_or_else(|| bad(ln, "missing record body"))?;
        match tag {
            "PROJECTION" => {
                let origin = wkt::point_from_wkt(rest).map_err(|e| bad(ln, &e.to_string()))?;
                projection = Some(LocalProjection::new(origin));
            }
            "CENTER" => {
                let nums: Vec<f64> = rest
                    .split_whitespace()
                    .map(|s| s.parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| bad(ln, "CENTER needs four numbers"))?;
                if nums.len() != 4 {
                    return Err(bad(ln, "CENTER needs four numbers"));
                }
                center_area = BBox::from_corners(
                    Point::new(nums[0], nums[1]),
                    Point::new(nums[2], nums[3]),
                );
            }
            "ELEMENT" => {
                let proj = projection.ok_or_else(|| bad(ln, "ELEMENT before PROJECTION"))?;
                let mut it = rest.splitn(5, ' ');
                let id = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| bad(ln, "bad element id"))?;
                let class = match it.next() {
                    Some("1") => FunctionalClass::Arterial,
                    Some("2") => FunctionalClass::Collector,
                    Some("3") => FunctionalClass::Local,
                    _ => return Err(bad(ln, "bad functional class")),
                };
                let limit = it
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or_else(|| bad(ln, "bad speed limit"))?;
                let flow = match it.next() {
                    Some("B") => FlowDirection::Both,
                    Some("F") => FlowDirection::WithDigitization,
                    Some("A") => FlowDirection::AgainstDigitization,
                    _ => return Err(bad(ln, "bad flow code")),
                };
                let geom_wkt = it.next().ok_or_else(|| bad(ln, "missing geometry"))?;
                let geometry = wkt::polyline_from_wkt(geom_wkt, |g| proj.project(g))
                    .map_err(|e| bad(ln, &e.to_string()))?;
                elements.push(TrafficElement {
                    id: ElementId(id),
                    geometry,
                    class,
                    speed_limit_kmh: limit,
                    flow,
                });
            }
            "OBJECT" => {
                let proj = projection.ok_or_else(|| bad(ln, "OBJECT before PROJECTION"))?;
                let mut it = rest.splitn(4, ' ');
                let kind = match it.next() {
                    Some("TL") => MapObjectKind::TrafficLight,
                    Some("BS") => MapObjectKind::BusStop,
                    Some("PC") => MapObjectKind::PedestrianCrossing,
                    _ => return Err(bad(ln, "bad object kind")),
                };
                let element = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| bad(ln, "bad object element id"))?;
                let offset_m = it
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or_else(|| bad(ln, "bad object offset"))?;
                let loc_wkt = it.next().ok_or_else(|| bad(ln, "missing object point"))?;
                let g = wkt::point_from_wkt(loc_wkt).map_err(|e| bad(ln, &e.to_string()))?;
                objects.push(MapObject {
                    kind,
                    location: proj.project(g),
                    element: ElementId(element),
                    offset_m,
                });
            }
            "ROAD" => {
                let mut it = rest.splitn(3, ' ');
                let name = it.next().ok_or_else(|| bad(ln, "missing road name"))?.to_string();
                let ids: Vec<ElementId> = it
                    .next()
                    .ok_or_else(|| bad(ln, "missing road elements"))?
                    .split(',')
                    .map(|s| s.parse::<u64>().map(ElementId))
                    .collect::<Result<_, _>>()
                    .map_err(|_| bad(ln, "bad road element ids"))?;
                let geom_wkt = it.next().ok_or_else(|| bad(ln, "missing road geometry"))?;
                let coords =
                    wkt::linestring_from_wkt(geom_wkt).map_err(|e| bad(ln, &e.to_string()))?;
                roads.push((name, ids, coords));
            }
            other => return Err(bad(ln, &format!("unknown record tag {other:?}"))),
        }
    }

    let projection =
        projection.ok_or_else(|| DigiroadError::BadHeader("missing PROJECTION".into()))?;
    let graph = RoadGraph::build(&elements, projection).map_err(DigiroadError::Graph)?;
    let objects = MapObjects::new(objects);

    let od_roads: Vec<NamedRoad> = roads
        .into_iter()
        .map(|(name, elements_ids, coords)| {
            let axis = Polyline::new(
                coords.into_iter().map(|g| projection.project(g)).collect(),
            )
            // lint:allow(panic-free-library): WKT parser rejects < 2 points
            .expect("ROAD geometry validated by WKT parser");
            NamedRoad {
                name,
                outer_node: graph.nearest_node(axis.end()),
                inner_node: graph.nearest_node(axis.start()),
                axis,
                elements: elements_ids,
            }
        })
        .collect();

    // Re-derive signalised junctions from the light objects.
    let lights: Vec<Point> = objects
        .all()
        .iter()
        .filter(|o| o.kind == MapObjectKind::TrafficLight)
        .map(|o| o.location)
        .collect();
    let signalized: HashSet<NodeId> = (0..graph.num_nodes() as u32)
        .map(NodeId)
        .filter(|&n| {
            let np = graph.node_point(n);
            lights.iter().any(|l| l.distance(np) <= 20.0)
        })
        .collect();

    Ok(SyntheticCity { graph, objects, od_roads, center_area, signalized, elements })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, OuluConfig};

    #[test]
    fn full_city_round_trip() {
        let city = generate(&OuluConfig::default());
        let text = export_city(&city);
        assert!(text.starts_with("DIGIROAD 1\n"));
        let back = import_city(&text).expect("import succeeds");

        assert_eq!(back.elements.len(), city.elements.len());
        assert_eq!(back.graph.num_nodes(), city.graph.num_nodes());
        assert_eq!(back.graph.num_edges(), city.graph.num_edges());
        assert_eq!(back.objects.all().len(), city.objects.all().len());
        assert_eq!(back.od_roads.len(), 3);
        assert_eq!(back.signalized.len(), city.signalized.len());
        // Geometry survives within WKT precision (~1 cm at this latitude).
        let a = &city.elements[10];
        let b = back.elements.iter().find(|e| e.id == a.id).expect("same id");
        assert!(a.geometry.start().distance(b.geometry.start()) < 0.05);
        assert!((a.geometry.length() - b.geometry.length()).abs() < 0.1);
        assert_eq!(a.flow, b.flow);
        assert_eq!(a.class, b.class);
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(matches!(import_city(""), Err(DigiroadError::BadHeader(_))));
        assert!(matches!(
            import_city("DIGIROAD 2\n"),
            Err(DigiroadError::BadHeader(_))
        ));
        let bad = "DIGIROAD 1\nPROJECTION POINT(25 65)\nELEMENT x 3 40 B LINESTRING(1 2, 3 4)\n";
        assert!(matches!(import_city(bad), Err(DigiroadError::BadRecord { line: 3, .. })));
        let unknown = "DIGIROAD 1\nWHATEVER 1 2 3\n";
        assert!(matches!(import_city(unknown), Err(DigiroadError::BadRecord { .. })));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let city = generate(&OuluConfig::default());
        let mut text = export_city(&city);
        text.insert_str("DIGIROAD 1\n".len(), "# a comment\n\n");
        assert!(import_city(&text).is_ok());
    }
}
