use std::fmt;

use serde::{Deserialize, Serialize};

/// Six-number summary in the layout of the paper's Table 4
/// (Min / 1st Q. / Med. / Mean / 3rd Q. / Max.), plus variance and count.
///
/// Quantiles follow R's default *type-7* convention (linear interpolation
/// of order statistics at `h = (n-1)p`), matching the `summary()` output
/// the paper's tables were produced with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub mean: f64,
    pub q3: f64,
    pub max: f64,
    /// Sample variance (n − 1 denominator).
    pub var: f64,
}

impl Summary {
    /// Computes the summary of a sample. Returns `None` for an empty
    /// sample. Non-finite values are ignored.
    pub fn of(values: &[f64]) -> Option<Summary> {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(f64::total_cmp);
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Some(Summary {
            n,
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            mean,
            q3: quantile_sorted(&v, 0.75),
            max: v[n - 1],
            var,
        })
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.var.sqrt()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:.3}  q1 {:.3}  med {:.3}  mean {:.3}  q3 {:.3}  max {:.3}  (n={})",
            self.min, self.q1, self.median, self.mean, self.q3, self.max, self.n
        )
    }
}

/// R type-7 quantile of an already-sorted sample.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n - 1) as f64 * p;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_r_summary_for_known_sample() {
        // R: summary(c(1, 2, 4, 8, 16)) → 1.0, 2.0, 4.0, 6.2, 8.0, 16.0
        let s = Summary::of(&[16.0, 1.0, 8.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 4.0);
        assert!((s.mean - 6.2).abs() < 1e-12);
        assert_eq!(s.q3, 8.0);
        assert_eq!(s.max, 16.0);
    }

    #[test]
    fn type7_interpolation() {
        // R: quantile(c(1, 2, 3, 4), 0.25) → 1.75 (type 7)
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile_sorted(&v, 0.25) - 1.75).abs() < 1e-12);
        assert!((quantile_sorted(&v, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 4.0);
    }

    #[test]
    fn variance_sample_convention() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        // Known: population var = 4, sample var = 32/7.
        assert!((s.var - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.sd() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(Summary::of(&[]).is_none());
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.min, 3.5);
        assert_eq!(s.q3, 3.5);
        assert_eq!(s.var, 0.0);
    }

    #[test]
    fn ignores_non_finite() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0, f64::INFINITY]).unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.max, 3.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Summary invariants: min ≤ q1 ≤ median ≤ q3 ≤ max; mean within
        /// [min, max]; var ≥ 0.
        #[test]
        fn ordering_invariants(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::of(&values).unwrap();
            prop_assert!(s.min <= s.q1 + 1e-9);
            prop_assert!(s.q1 <= s.median + 1e-9);
            prop_assert!(s.median <= s.q3 + 1e-9);
            prop_assert!(s.q3 <= s.max + 1e-9);
            prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
            prop_assert!(s.var >= 0.0);
        }

        /// Quantile is monotone in p.
        #[test]
        fn quantile_monotone(
            values in proptest::collection::vec(-1e3f64..1e3, 2..100),
            p1 in 0f64..1.0, p2 in 0f64..1.0,
        ) {
            let mut v = values;
            v.sort_by(f64::total_cmp);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(quantile_sorted(&v, lo) <= quantile_sorted(&v, hi) + 1e-9);
        }
    }
}
