//! Statistical analysis substrate (§V of the paper).
//!
//! The paper's analysis layer needs six-number summaries (Table 4,
//! Table 5), ordinary linear regression (Eq. 1), and linear mixed models
//! with a Gaussian random intercept per 200 m grid cell estimated by REML
//! with BLUP predictions and confidence limits (Eq. 2–3, Figs. 7–9). The
//! original study used R; this crate implements the required estimators
//! from first principles:
//!
//! * [`Summary`] — min / 1st quartile / median / mean / 3rd quartile / max
//!   with R's default (type-7) quantile convention, plus variance;
//! * [`normal`] — standard normal pdf/cdf/quantile (Acklam's inverse);
//! * [`Matrix`] — small dense matrices with Cholesky factorisation;
//! * [`OlsFit`] — ordinary least squares;
//! * [`LmmFit`] — the single-grouping-factor linear mixed model: exact
//!   O(n) profiled REML likelihood via per-group Woodbury identities,
//!   Brent optimisation of the variance ratio, BLUPs with prediction
//!   standard errors;
//! * [`qq`] — normal QQ-plot data (Fig. 7);
//! * [`brent_min`] — 1-D function minimisation.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod corr;
mod histogram;
mod lmm;
mod matrix;
pub mod normal;
mod ols;
mod optimize;
mod qq;
mod summary;

pub use corr::{pearson, spearman};
pub use histogram::Histogram;
pub use lmm::{GroupEffect, LmmError, LmmFit, RandomIntercept};
pub use matrix::{Matrix, MatrixError};
pub use ols::{design_with_intercept, ols_fit, OlsError, OlsFit};
pub use optimize::brent_min;
pub use qq::{qq_points, QqPoint};
pub use summary::Summary;
