use serde::{Deserialize, Serialize};

use crate::normal;

/// One point of a normal QQ plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QqPoint {
    /// Theoretical standard-normal quantile.
    pub theoretical: f64,
    /// Observed sample quantile.
    pub sample: f64,
}

/// Normal QQ-plot data for a sample (the paper's Fig. 7 applies this to the
/// cell-intercept BLUPs to justify the Gaussian regularisation).
///
/// Plotting positions follow R's `ppoints`: `(i − 1/2) / n` for n > 10,
/// `(i − 3/8) / (n + 1/4)` otherwise.
pub fn qq_points(values: &[f64]) -> Vec<QqPoint> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n == 0 {
        return Vec::new();
    }
    let a = if n > 10 { 0.5 } else { 0.375 };
    v.into_iter()
        .enumerate()
        .map(|(i, sample)| QqPoint {
            theoretical: normal::inv_cdf(((i + 1) as f64 - a) / (n as f64 + 1.0 - 2.0 * a)),
            sample,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        assert!(qq_points(&[]).is_empty());
    }

    #[test]
    fn sorted_and_symmetric() {
        let values: Vec<f64> = (0..101).map(|i| (i as f64 - 50.0) / 10.0).collect();
        let pts = qq_points(&values);
        assert_eq!(pts.len(), 101);
        for w in pts.windows(2) {
            assert!(w[0].theoretical <= w[1].theoretical);
            assert!(w[0].sample <= w[1].sample);
        }
        // Median point maps near (0, 0) for a symmetric sample.
        let mid = &pts[50];
        assert!(mid.theoretical.abs() < 1e-9);
        assert!(mid.sample.abs() < 1e-9);
    }

    #[test]
    fn gaussian_sample_is_nearly_linear() {
        // Deterministic normal-ish data via inverse cdf of a stratified grid.
        let values: Vec<f64> = (1..200)
            .map(|i| 3.0 + 2.0 * crate::normal::inv_cdf(i as f64 / 200.0))
            .collect();
        let pts = qq_points(&values);
        // Slope between the quartile points ≈ 2, intercept ≈ 3.
        let p25 = &pts[pts.len() / 4];
        let p75 = &pts[3 * pts.len() / 4];
        let slope = (p75.sample - p25.sample) / (p75.theoretical - p25.theoretical);
        assert!((slope - 2.0).abs() < 0.1, "slope {slope}");
    }
}
