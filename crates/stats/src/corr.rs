//! Correlation and simple association measures.
//!
//! §VI of the paper argues "low speed also correlates to fuel consumption,
//! supporting findings in literature"; this module provides the estimators
//! that quantify such statements.

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `None` when fewer than two pairs remain after dropping
/// non-finite entries or when either sample has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let pairs: Vec<(f64, f64)> = x
        .iter()
        .zip(y)
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(a, b)| (*a, *b))
        .collect();
    let n = pairs.len();
    if n < 2 {
        return None;
    }
    let mx = pairs.iter().map(|(a, _)| a).sum::<f64>() / n as f64;
    let my = pairs.iter().map(|(_, b)| b).sum::<f64>() / n as f64;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (a, b) in &pairs {
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
        sxy += (a - mx) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation (Pearson on ranks, mean ranks for ties).
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Mean ranks (1-based); ties share the average rank. Non-finite values
/// are ranked last (they are filtered by `pearson` afterwards anyway).
fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = mean_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 0.5);
    }

    #[test]
    fn degenerate_cases() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none(), "zero variance");
        assert!(pearson(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0]).is_some());
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0]; // cubic: monotone
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson is below 1 for the nonlinear case.
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn rank_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Correlation is symmetric and bounded.
        #[test]
        fn symmetric_and_bounded(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..60)
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let (Some(a), Some(b)) = (pearson(&x, &y), pearson(&y, &x)) {
                prop_assert!((a - b).abs() < 1e-9);
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&a));
            }
        }

        /// Correlation is invariant under positive affine transforms.
        #[test]
        fn affine_invariant(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..40),
            scale in 0.1f64..10.0, shift in -100f64..100.0,
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let x2: Vec<f64> = x.iter().map(|v| v * scale + shift).collect();
            if let (Some(a), Some(b)) = (pearson(&x, &y), pearson(&x2, &y)) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
