use std::fmt;

use crate::{Matrix, MatrixError};

/// OLS errors.
#[derive(Debug, Clone, PartialEq)]
pub enum OlsError {
    /// Fewer observations than parameters.
    TooFewObservations { n: usize, p: usize },
    /// Mismatched input lengths.
    LengthMismatch,
    /// Design matrix is rank deficient.
    Singular(MatrixError),
}

impl fmt::Display for OlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OlsError::TooFewObservations { n, p } => {
                write!(f, "need more observations ({n}) than parameters ({p})")
            }
            OlsError::LengthMismatch => write!(f, "y length must match design rows"),
            OlsError::Singular(e) => write!(f, "singular design: {e}"),
        }
    }
}

impl std::error::Error for OlsError {}

/// An ordinary-least-squares fit of the paper's Eq. (1):
/// `Y = Xb + ε, ε ~ N(0, σ²I)`.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// Estimated coefficients `b`.
    pub coefficients: Vec<f64>,
    /// Standard errors of the coefficients.
    pub std_errors: Vec<f64>,
    /// Residual variance estimate `σ̂²` (denominator n − p).
    pub sigma2: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Residuals in observation order.
    pub residuals: Vec<f64>,
}

/// Fits `y = X b + ε` by ordinary least squares. `x` is the n × p design
/// matrix (include a column of ones for the intercept).
pub fn ols_fit(y: &[f64], x: &Matrix) -> Result<OlsFit, OlsError> {
    let n = x.rows();
    let p = x.cols();
    if y.len() != n {
        return Err(OlsError::LengthMismatch);
    }
    if n <= p {
        return Err(OlsError::TooFewObservations { n, p });
    }
    // Normal equations via Cholesky: (XᵀX) b = Xᵀy.
    let xt = x.transpose();
    let xtx = xt.mul(x).map_err(OlsError::Singular)?;
    let mut xty = vec![0.0; p];
    for j in 0..p {
        for i in 0..n {
            xty[j] += x[(i, j)] * y[i];
        }
    }
    let coefficients = xtx.solve_spd(&xty).map_err(OlsError::Singular)?;

    let mut residuals = Vec::with_capacity(n);
    let mut rss = 0.0;
    for i in 0..n {
        let fit: f64 = (0..p).map(|j| x[(i, j)] * coefficients[j]).sum();
        let r = y[i] - fit;
        rss += r * r;
        residuals.push(r);
    }
    let sigma2 = rss / (n - p) as f64;

    let mean_y = y.iter().sum::<f64>() / n as f64;
    let tss: f64 = y.iter().map(|v| (v - mean_y) * (v - mean_y)).sum();
    let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 1.0 };

    let xtx_inv = xtx.inverse_spd().map_err(OlsError::Singular)?;
    let std_errors = (0..p).map(|j| (sigma2 * xtx_inv[(j, j)]).sqrt()).collect();

    Ok(OlsFit { coefficients, std_errors, sigma2, r_squared, residuals })
}

/// Convenience: builds a design matrix from an intercept plus predictor
/// columns.
pub fn design_with_intercept(columns: &[&[f64]]) -> Matrix {
    let n = columns.first().map_or(0, |c| c.len());
    let p = columns.len() + 1;
    let mut m = Matrix::zeros(n, p);
    for i in 0..n {
        m[(i, 0)] = 1.0;
        for (j, col) in columns.iter().enumerate() {
            m[(i, j + 1)] = col[i];
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x_vals: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x_vals.iter().map(|x| 2.0 + 3.0 * x).collect();
        let x = design_with_intercept(&[&x_vals]);
        let fit = ols_fit(&y, &x).unwrap();
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[1] - 3.0).abs() < 1e-9);
        assert!(fit.sigma2 < 1e-15);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_close() {
        // Deterministic "noise".
        let x_vals: Vec<f64> = (0..200).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x_vals
            .iter()
            .enumerate()
            .map(|(i, x)| 1.0 + 0.5 * x + ((i * 37 % 11) as f64 - 5.0) / 10.0)
            .collect();
        let x = design_with_intercept(&[&x_vals]);
        let fit = ols_fit(&y, &x).unwrap();
        assert!((fit.coefficients[1] - 0.5).abs() < 0.02, "{}", fit.coefficients[1]);
        assert!(fit.std_errors[1] > 0.0);
        assert!(fit.r_squared > 0.9);
    }

    #[test]
    fn intercept_only_gives_mean() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let x = design_with_intercept(&[]);
        // design_with_intercept with no columns has 0 rows; build manually.
        let x = if x.rows() == 0 { Matrix::from_rows(4, 1, vec![1.0; 4]) } else { x };
        let fit = ols_fit(&y, &x).unwrap();
        assert!((fit.coefficients[0] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn error_cases() {
        let y = [1.0, 2.0];
        let x = Matrix::from_rows(2, 3, vec![1.0; 6]);
        assert!(matches!(ols_fit(&y, &x), Err(OlsError::TooFewObservations { .. })));
        let x2 = Matrix::from_rows(3, 1, vec![1.0; 3]);
        assert!(matches!(ols_fit(&y, &x2), Err(OlsError::LengthMismatch)));
        // Collinear columns.
        let y3 = [1.0, 2.0, 3.0, 4.0];
        let mut x3 = Matrix::zeros(4, 2);
        for i in 0..4 {
            x3[(i, 0)] = 1.0;
            x3[(i, 1)] = 2.0;
        }
        assert!(matches!(ols_fit(&y3, &x3), Err(OlsError::Singular(_))));
    }

    #[test]
    fn residuals_sum_to_zero_with_intercept() {
        let x_vals: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 3.0).collect();
        let y: Vec<f64> = x_vals.iter().enumerate().map(|(i, x)| x * 2.0 + (i % 7) as f64).collect();
        let x = design_with_intercept(&[&x_vals]);
        let fit = ols_fit(&y, &x).unwrap();
        let sum: f64 = fit.residuals.iter().sum();
        assert!(sum.abs() < 1e-8, "{sum}");
    }
}
