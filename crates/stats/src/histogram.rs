//! Fixed-edge histograms for figure data.

use serde::{Deserialize, Serialize};

/// A histogram over explicit bin edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// `edges.len() - 1` bins; bin `i` covers `[edges[i], edges[i+1])`,
    /// the last bin is closed on the right.
    pub edges: Vec<f64>,
    pub counts: Vec<usize>,
    /// Values below the first / above the last edge.
    pub underflow: usize,
    pub overflow: usize,
}

impl Histogram {
    /// Builds a histogram. Panics if fewer than two strictly increasing
    /// edges are supplied.
    pub fn new(values: &[f64], edges: &[f64]) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        let mut counts = vec![0usize; edges.len() - 1];
        let mut underflow = 0;
        let mut overflow = 0;
        let last = edges.len() - 1;
        for &v in values {
            if !v.is_finite() {
                continue;
            }
            if v < edges[0] {
                underflow += 1;
            } else if v > edges[last] {
                overflow += 1;
            } else if v == edges[last] {
                counts[last - 1] += 1; // right-closed final bin
            } else {
                // Binary search for the containing bin.
                let i = edges.partition_point(|e| *e <= v) - 1;
                counts[i] += 1;
            }
        }
        Self { edges: edges.to_vec(), counts, underflow, overflow }
    }

    /// Equal-width histogram over `[lo, hi]` with `bins` bins.
    pub fn uniform(values: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "invalid uniform histogram spec");
        let edges: Vec<f64> = (0..=bins)
            .map(|i| lo + (hi - lo) * i as f64 / bins as f64)
            .collect();
        Self::new(values, &edges)
    }

    /// Total in-range count.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of in-range mass in bin `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.counts[i] as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let h = Histogram::new(&[0.5, 1.5, 1.6, 2.5, 3.0], &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(h.counts, vec![1, 2, 2]); // 3.0 lands in the closed last bin
        assert_eq!(h.underflow, 0);
        assert_eq!(h.overflow, 0);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn under_and_overflow() {
        let h = Histogram::new(&[-1.0, 0.0, 5.0, f64::NAN], &[0.0, 1.0, 2.0]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn uniform_edges() {
        let h = Histogram::uniform(&[0.0, 2.5, 5.0, 7.5, 10.0], 0.0, 10.0, 4);
        assert_eq!(h.counts, vec![1, 1, 1, 2]);
        assert!((h.fraction(3) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_bad_edges() {
        let _ = Histogram::new(&[1.0], &[0.0, 0.0, 1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every finite value lands somewhere: counts + under + over = n.
        #[test]
        fn conservation(values in proptest::collection::vec(-100f64..100.0, 0..200)) {
            let h = Histogram::uniform(&values, -50.0, 50.0, 10);
            prop_assert_eq!(h.total() + h.underflow + h.overflow, values.len());
        }
    }
}
