use std::collections::HashMap;
use std::fmt;

use crate::{brent_min, Matrix, MatrixError};

/// LMM errors.
#[derive(Debug, Clone, PartialEq)]
pub enum LmmError {
    /// Input slices have inconsistent lengths.
    LengthMismatch,
    /// Too few observations for the fixed-effect dimension.
    TooFewObservations { n: usize, p: usize },
    /// The GLS normal-equation matrix was singular.
    Singular(MatrixError),
}

impl fmt::Display for LmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LmmError::LengthMismatch => write!(f, "y, X and groups must have equal lengths"),
            LmmError::TooFewObservations { n, p } => {
                write!(f, "need more observations ({n}) than fixed effects ({p})")
            }
            LmmError::Singular(e) => write!(f, "singular GLS system: {e}"),
        }
    }
}

impl std::error::Error for LmmError {}

/// The random effect of one group (one 200 m cell in the paper's Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupEffect {
    /// Caller-supplied group key.
    pub key: u64,
    /// Number of observations in the group.
    pub n: usize,
    /// BLUP of the group's random intercept.
    pub blup: f64,
    /// Prediction standard error of the BLUP (conditional on the variance
    /// estimates and `b̂` — the `lme4`-style approximation).
    pub se: f64,
}

/// A fitted random-intercept linear mixed model (the paper's Eq. 2–3):
///
/// ```text
/// Y = Xb + Zu + ε,   u ~ N(0, σ²ᵤ I),   ε ~ N(0, σ²ₑ I)
/// ```
///
/// with `Z` the indicator matrix of a single grouping factor.
#[derive(Debug, Clone, PartialEq)]
pub struct LmmFit {
    /// GLS estimates of the fixed effects `b`.
    pub fixed: Vec<f64>,
    /// Standard errors of the fixed effects.
    pub fixed_se: Vec<f64>,
    /// Residual variance `σ̂²ₑ` (REML).
    pub sigma2_e: f64,
    /// Random-intercept variance `σ̂²ᵤ` (REML).
    pub sigma2_u: f64,
    /// Variance ratio `λ = σ²ᵤ / σ²ₑ` at the REML optimum.
    pub lambda: f64,
    /// −2 × restricted log-likelihood at the optimum (up to a constant).
    pub neg2_reml: f64,
    /// −2 × restricted log-likelihood of the null model (λ = 0, no random
    /// intercept), for the variance likelihood-ratio test.
    pub neg2_reml_null: f64,
    /// Per-group effects, sorted by key.
    pub groups: Vec<GroupEffect>,
}

/// Likelihood-ratio test of `σ²ᵤ = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarianceTest {
    /// REML likelihood-ratio statistic.
    pub lrt: f64,
    /// Asymptotic p-value. The null puts the parameter on the boundary, so
    /// the reference distribution is the 50:50 mixture ½χ²₀ + ½χ²₁
    /// (Self & Liang 1987) — the standard test `lme4` users apply to the
    /// paper's Eq. (3).
    pub p_value: f64,
}

impl LmmFit {
    /// Tests whether the random-intercept variance is zero (is there a
    /// geography effect at all?).
    pub fn variance_test(&self) -> VarianceTest {
        let lrt = (self.neg2_reml_null - self.neg2_reml).max(0.0);
        // P(χ²₁ > x) = 2 (1 − Φ(√x)); halve for the boundary mixture.
        let p_chi1 = 2.0 * (1.0 - crate::normal::cdf(lrt.sqrt()));
        VarianceTest { lrt, p_value: (0.5 * p_chi1).min(1.0) }
    }

    /// The BLUP of a given group key.
    pub fn blup(&self, key: u64) -> Option<f64> {
        self.groups
            .binary_search_by_key(&key, |g| g.key)
            .ok()
            .map(|i| self.groups[i].blup)
    }
}

/// Fitter for the single-grouping-factor random-intercept model.
#[derive(Debug, Clone, Copy)]
pub struct RandomIntercept {
    /// Brent tolerance on `ln λ`.
    pub tol: f64,
    /// Brent iteration cap.
    pub max_iter: usize,
    /// Search bracket on `ln λ`.
    pub ln_lambda_range: (f64, f64),
}

impl Default for RandomIntercept {
    fn default() -> Self {
        Self { tol: 1e-8, max_iter: 200, ln_lambda_range: (-12.0, 8.0) }
    }
}

/// Sufficient statistics that make each REML evaluation O(G·p²).
struct Precomputed {
    n: usize,
    p: usize,
    xtx: Matrix,
    xty: Vec<f64>,
    yty: f64,
    /// Per group: (key, n_i, s_i = Xᵢᵀ1, t_i = Σ yᵢ).
    groups: Vec<(u64, usize, Vec<f64>, f64)>,
}

impl RandomIntercept {
    /// Fits the model. `x` is the n × p fixed-effect design (include an
    /// intercept column); `groups[i]` is the grouping key of observation i.
    pub fn fit(&self, y: &[f64], x: &Matrix, groups: &[u64]) -> Result<LmmFit, LmmError> {
        let n = x.rows();
        let p = x.cols();
        if y.len() != n || groups.len() != n {
            return Err(LmmError::LengthMismatch);
        }
        if n <= p {
            return Err(LmmError::TooFewObservations { n, p });
        }
        let pre = precompute(y, x, groups)?;

        // Profile REML over ln λ; also probe the λ = 0 boundary (pure OLS).
        let objective = |ln_lambda: f64| {
            evaluate(&pre, ln_lambda.exp()).map_or(f64::INFINITY, |e| e.neg2_reml)
        };
        let (ln_l_opt, f_opt) = brent_min(
            objective,
            self.ln_lambda_range.0,
            self.ln_lambda_range.1,
            self.tol,
            self.max_iter,
        );
        let boundary = evaluate(&pre, 0.0).map_or(f64::INFINITY, |e| e.neg2_reml);
        let lambda = if boundary <= f_opt { 0.0 } else { ln_l_opt.exp() };
        let neg2_reml_null = boundary;

        let eval = evaluate(&pre, lambda).ok_or(LmmError::Singular(
            MatrixError::NotPositiveDefinite { pivot: 0 },
        ))?;

        // Fixed-effect covariance: σ²ₑ (XᵀV⁻¹X)⁻¹.
        let cov = eval.xtvx.inverse_spd().map_err(LmmError::Singular)?;
        let fixed_se: Vec<f64> =
            (0..p).map(|j| (eval.sigma2_e * cov[(j, j)]).sqrt()).collect();

        // BLUPs: ûᵢ = λ (tᵢ − sᵢᵀb̂) / (1 + λ nᵢ);
        // SE(ûᵢ − uᵢ) ≈ √(σ²ₑ λ / (1 + λ nᵢ)).
        let mut group_effects = Vec::with_capacity(pre.groups.len());
        for (key, n_i, s_i, t_i) in &pre.groups {
            let resid_sum: f64 =
                t_i - s_i.iter().zip(&eval.beta).map(|(s, b)| s * b).sum::<f64>();
            let denom = 1.0 + lambda * *n_i as f64;
            group_effects.push(GroupEffect {
                key: *key,
                n: *n_i,
                blup: lambda * resid_sum / denom,
                se: (eval.sigma2_e * lambda / denom).sqrt(),
            });
        }
        group_effects.sort_by_key(|g| g.key);

        Ok(LmmFit {
            fixed: eval.beta,
            fixed_se,
            sigma2_e: eval.sigma2_e,
            sigma2_u: lambda * eval.sigma2_e,
            lambda,
            neg2_reml: eval.neg2_reml,
            neg2_reml_null,
            groups: group_effects,
        })
    }
}

fn precompute(y: &[f64], x: &Matrix, groups: &[u64]) -> Result<Precomputed, LmmError> {
    let n = x.rows();
    let p = x.cols();
    let xt = x.transpose();
    let xtx = xt.mul(x).map_err(LmmError::Singular)?;
    let mut xty = vec![0.0; p];
    let mut yty = 0.0;
    for i in 0..n {
        yty += y[i] * y[i];
        for j in 0..p {
            xty[j] += x[(i, j)] * y[i];
        }
    }
    let mut map: HashMap<u64, usize> = HashMap::new();
    let mut group_stats: Vec<(u64, usize, Vec<f64>, f64)> = Vec::new();
    for i in 0..n {
        let gi = *map.entry(groups[i]).or_insert_with(|| {
            group_stats.push((groups[i], 0, vec![0.0; p], 0.0));
            group_stats.len() - 1
        });
        let entry = &mut group_stats[gi];
        entry.1 += 1;
        for j in 0..p {
            entry.2[j] += x[(i, j)];
        }
        entry.3 += y[i];
    }
    Ok(Precomputed { n, p, xtx, xty, yty, groups: group_stats })
}

struct Evaluation {
    beta: Vec<f64>,
    sigma2_e: f64,
    neg2_reml: f64,
    xtvx: Matrix,
}

/// Evaluates the profiled REML criterion at a given λ via the per-group
/// Woodbury identity `Vᵢ⁻¹ = I − (λ / (1 + λ nᵢ)) 11ᵀ`.
fn evaluate(pre: &Precomputed, lambda: f64) -> Option<Evaluation> {
    let p = pre.p;
    let mut xtvx = pre.xtx.clone();
    let mut xtvy = pre.xty.clone();
    let mut ytvy = pre.yty;
    let mut ln_det_v = 0.0;
    for (_, n_i, s_i, t_i) in &pre.groups {
        let c = lambda / (1.0 + lambda * *n_i as f64);
        ln_det_v += (1.0 + lambda * *n_i as f64).ln();
        if c != 0.0 {
            for j in 0..p {
                for k in 0..p {
                    xtvx[(j, k)] -= c * s_i[j] * s_i[k];
                }
                xtvy[j] -= c * s_i[j] * t_i;
            }
            ytvy -= c * t_i * t_i;
        }
    }
    let beta = xtvx.solve_spd(&xtvy).ok()?;
    let q = ytvy - beta.iter().zip(&xtvy).map(|(b, v)| b * v).sum::<f64>();
    if q <= 0.0 {
        return None;
    }
    let dof = (pre.n - p) as f64;
    let sigma2_e = q / dof;
    let ln_det_xtvx = xtvx.ln_det_spd().ok()?;
    let neg2_reml = dof * sigma2_e.ln() + ln_det_v + ln_det_xtvx;
    Some(Evaluation { beta, sigma2_e, neg2_reml, xtvx })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-normal via a fixed xorshift + Box-Muller-ish
    /// transform (enough for statistical tests).
    struct TestRng(u64);
    impl TestRng {
        fn f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
        fn normal(&mut self) -> f64 {
            let u1 = self.f64().max(1e-12);
            let u2 = self.f64();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        }
    }

    fn intercept_design(n: usize) -> Matrix {
        Matrix::from_rows(n, 1, vec![1.0; n])
    }

    /// Balanced one-way layout: the REML estimates have the closed form
    /// σ̂²ₑ = MSE, σ̂²ᵤ = (MSB − MSE)/m (when MSB > MSE).
    #[test]
    fn matches_balanced_anova_closed_form() {
        let k = 12; // groups
        let m = 20; // per group
        let mut rng = TestRng(0xDEADBEEF);
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for g in 0..k {
            let u = 3.0 * rng.normal();
            for _ in 0..m {
                y.push(10.0 + u + 1.5 * rng.normal());
                groups.push(g as u64);
            }
        }
        let n = y.len();
        // Closed-form ANOVA estimates.
        let grand = y.iter().sum::<f64>() / n as f64;
        let mut ssb = 0.0;
        let mut sse = 0.0;
        for g in 0..k {
            let slice: Vec<f64> = y
                .iter()
                .zip(&groups)
                .filter(|(_, gg)| **gg == g as u64)
                .map(|(v, _)| *v)
                .collect();
            let mean_g = slice.iter().sum::<f64>() / m as f64;
            ssb += m as f64 * (mean_g - grand) * (mean_g - grand);
            sse += slice.iter().map(|v| (v - mean_g) * (v - mean_g)).sum::<f64>();
        }
        let msb = ssb / (k - 1) as f64;
        let mse = sse / (k * (m - 1)) as f64;
        let sigma2_u_anova = (msb - mse) / m as f64;

        let fit = RandomIntercept::default()
            .fit(&y, &intercept_design(n), &groups)
            .unwrap();
        assert!(
            (fit.sigma2_e - mse).abs() / mse < 0.01,
            "sigma2_e {} vs MSE {}",
            fit.sigma2_e,
            mse
        );
        assert!(
            (fit.sigma2_u - sigma2_u_anova).abs() / sigma2_u_anova < 0.02,
            "sigma2_u {} vs ANOVA {}",
            fit.sigma2_u,
            sigma2_u_anova
        );
        assert!((fit.fixed[0] - grand).abs() < 0.5);
    }

    #[test]
    fn no_group_effect_collapses_to_ols() {
        let mut rng = TestRng(0xABCD);
        let n = 400;
        let y: Vec<f64> = (0..n).map(|_| 5.0 + rng.normal()).collect();
        let groups: Vec<u64> = (0..n).map(|i| (i % 20) as u64).collect();
        let fit = RandomIntercept::default()
            .fit(&y, &intercept_design(n), &groups)
            .unwrap();
        assert!(fit.sigma2_u < 0.1 * fit.sigma2_e, "sigma2_u {}", fit.sigma2_u);
        let mean = y.iter().sum::<f64>() / n as f64;
        assert!((fit.fixed[0] - mean).abs() < 0.05);
        // BLUPs all shrink towards zero.
        for g in &fit.groups {
            assert!(g.blup.abs() < 1.0);
        }
    }

    #[test]
    fn blups_shrink_small_groups_more() {
        let mut rng = TestRng(0x5EED);
        let mut y = Vec::new();
        let mut groups = Vec::new();
        // Group 0: 3 points at +5; group 1: 300 points at +5; many baseline
        // groups at 0.
        for _ in 0..3 {
            y.push(5.0 + 0.1 * rng.normal());
            groups.push(0u64);
        }
        for _ in 0..300 {
            y.push(5.0 + 0.1 * rng.normal());
            groups.push(1u64);
        }
        for g in 2..30u64 {
            for _ in 0..30 {
                y.push(0.0 + 0.1 * rng.normal());
                groups.push(g);
            }
        }
        let n = y.len();
        let fit = RandomIntercept::default()
            .fit(&y, &intercept_design(n), &groups)
            .unwrap();
        let g0 = fit.blup(0).unwrap();
        let g1 = fit.blup(1).unwrap();
        // Both positive, the small group shrunk more relative to the large.
        assert!(g0 > 0.0 && g1 > 0.0);
        assert!(g1 > g0 * 0.99, "large group at least as far out: {g0} vs {g1}");
        // SEs: the small group is less certain.
        let se0 = fit.groups.iter().find(|g| g.key == 0).unwrap().se;
        let se1 = fit.groups.iter().find(|g| g.key == 1).unwrap().se;
        assert!(se0 > se1);
    }

    #[test]
    fn fixed_covariates_recovered() {
        let mut rng = TestRng(0xFEED5EED);
        let mut y = Vec::new();
        let mut xcol = Vec::new();
        let mut groups = Vec::new();
        for g in 0..25u64 {
            let u = 2.0 * rng.normal();
            for _ in 0..25 {
                let x = rng.f64() * 10.0;
                y.push(1.0 + 0.8 * x + u + 0.5 * rng.normal());
                xcol.push(x);
                groups.push(g);
            }
        }
        let n = y.len();
        let mut design = Matrix::zeros(n, 2);
        for i in 0..n {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = xcol[i];
        }
        let fit = RandomIntercept::default().fit(&y, &design, &groups).unwrap();
        assert!((fit.fixed[1] - 0.8).abs() < 0.05, "slope {}", fit.fixed[1]);
        assert!(fit.sigma2_u > 1.0, "group variance found: {}", fit.sigma2_u);
        assert!(fit.fixed_se[1] > 0.0 && fit.fixed_se[1] < 0.1);
    }

    #[test]
    fn variance_test_detects_real_effect() {
        let mut rng = TestRng(0xBEEF);
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for g in 0..20u64 {
            let u = 2.0 * rng.normal();
            for _ in 0..15 {
                y.push(u + rng.normal());
                groups.push(g);
            }
        }
        let n = y.len();
        let fit = RandomIntercept::default()
            .fit(&y, &intercept_design(n), &groups)
            .unwrap();
        let test = fit.variance_test();
        assert!(test.lrt > 10.0, "strong effect: LRT {}", test.lrt);
        assert!(test.p_value < 0.01, "p {}", test.p_value);
    }

    #[test]
    fn variance_test_accepts_null() {
        let mut rng = TestRng(0xFACE);
        let n = 400;
        let y: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let groups: Vec<u64> = (0..n).map(|i| (i % 20) as u64).collect();
        let fit = RandomIntercept::default()
            .fit(&y, &intercept_design(n), &groups)
            .unwrap();
        let test = fit.variance_test();
        assert!(test.p_value > 0.05, "no effect: p {}", test.p_value);
    }

    #[test]
    fn error_cases() {
        let fitter = RandomIntercept::default();
        let x = Matrix::from_rows(3, 1, vec![1.0; 3]);
        assert!(matches!(
            fitter.fit(&[1.0, 2.0], &x, &[0, 0, 0]),
            Err(LmmError::LengthMismatch)
        ));
        let x1 = Matrix::from_rows(1, 1, vec![1.0]);
        assert!(matches!(
            fitter.fit(&[1.0], &x1, &[0]),
            Err(LmmError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn reml_optimum_is_a_minimum() {
        let mut rng = TestRng(0xA11CE);
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for g in 0..15u64 {
            let u = 1.5 * rng.normal();
            for _ in 0..12 {
                y.push(u + rng.normal());
                groups.push(g);
            }
        }
        let n = y.len();
        let fit = RandomIntercept::default()
            .fit(&y, &intercept_design(n), &groups)
            .unwrap();
        // Perturbing λ must not lower the criterion.
        let pre = precompute(&y, &intercept_design(n), &groups).expect("precompute");
        for factor in [0.5, 0.8, 1.25, 2.0] {
            let v = evaluate(&pre, fit.lambda * factor).unwrap().neg2_reml;
            assert!(
                v >= fit.neg2_reml - 1e-6,
                "λ×{factor}: {v} < {}",
                fit.neg2_reml
            );
        }
    }
}
