use std::fmt;

/// Matrix errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Dimensions incompatible for the requested operation.
    DimensionMismatch { expected: (usize, usize), got: (usize, usize) },
    /// Cholesky factorisation failed (matrix not positive definite).
    NotPositiveDefinite { pivot: usize },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected:?}, got {got:?}")
            }
            MatrixError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite at pivot {pivot}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// Small dense row-major matrix — sized for regression design matrices
/// (n × p with small p), not for BLAS-scale work.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row-major data. Panics when the length does not match.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Self { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != other.rows {
            return Err(MatrixError::DimensionMismatch {
                expected: (self.cols, other.cols),
                got: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Cholesky factor `L` (lower triangular, `A = L Lᵀ`) of a symmetric
    /// positive-definite matrix.
    pub fn cholesky(&self) -> Result<Matrix, MatrixError> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(MatrixError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if b.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                expected: (self.rows, 1),
                got: (b.len(), 1),
            });
        }
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward solve L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[(i, k)] * y[k];
            }
            y[i] = sum / l[(i, i)];
        }
        // Back solve Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= l[(k, i)] * x[k];
            }
            x[i] = sum / l[(i, i)];
        }
        Ok(x)
    }

    /// `ln det A` of a symmetric positive-definite matrix via Cholesky.
    pub fn ln_det_spd(&self) -> Result<f64, MatrixError> {
        let l = self.cholesky()?;
        Ok((0..self.rows).map(|i| l[(i, i)].ln()).sum::<f64>() * 2.0)
    }

    /// Inverse of a symmetric positive-definite matrix.
    pub fn inverse_spd(&self) -> Result<Matrix, MatrixError> {
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = self.solve_spd(&e)?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_and_transpose() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.transpose();
        let ab = a.mul(&b).unwrap();
        assert_eq!(ab[(0, 0)], 14.0);
        assert_eq!(ab[(0, 1)], 32.0);
        assert_eq!(ab[(1, 1)], 77.0);
        assert!(a.mul(&a).is_err());
    }

    #[test]
    fn cholesky_known() {
        // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let l = a.cholesky().unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn solve_spd_round_trip() {
        let a = Matrix::from_rows(3, 3, vec![6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0]);
        let x_true = [1.0, -2.0, 3.0];
        let b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a[(i, j)] * x_true[j]).sum())
            .collect();
        let x = a.solve_spd(&b).unwrap();
        for (got, want) in x.iter().zip(x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn not_positive_definite_detected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(a.cholesky(), Err(MatrixError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn ln_det_and_inverse() {
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        // det = 8
        assert!((a.ln_det_spd().unwrap() - 8.0f64.ln()).abs() < 1e-12);
        let inv = a.inverse_spd().unwrap();
        let prod = a.mul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn identity() {
        let i = Matrix::identity(3);
        let a = Matrix::from_rows(3, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0]);
        assert_eq!(i.mul(&a).unwrap(), a);
    }
}
