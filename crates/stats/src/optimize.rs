/// Brent's method for 1-D minimisation on a bracketing interval.
///
/// Combines golden-section steps with parabolic interpolation; converges
/// superlinearly on smooth objectives like the REML profile likelihood.
/// Returns `(x_min, f(x_min))`.
pub fn brent_min(mut f: impl FnMut(f64) -> f64, a: f64, b: f64, tol: f64, max_iter: usize) -> (f64, f64) {
    assert!(a < b, "invalid bracket [{a}, {b}]");
    const GOLD: f64 = 0.381_966_011_250_105; // (3 - sqrt(5)) / 2
    let (mut a, mut b) = (a, b);
    let mut x = a + GOLD * (b - a);
    let mut w = x;
    let mut v = x;
    let mut fx = f(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;

    for _ in 0..max_iter {
        let m = 0.5 * (a + b);
        let tol1 = tol * x.abs() + 1e-12;
        let tol2 = 2.0 * tol1;
        if (x - m).abs() <= tol2 - 0.5 * (b - a) {
            break;
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Parabolic fit through (v, fv), (w, fw), (x, fx).
            let r = (x - w) * (fx - fv);
            let q0 = (x - v) * (fx - fw);
            let mut p = (x - v) * q0 - (x - w) * r;
            let mut q = 2.0 * (q0 - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let e_old = e;
            e = d;
            if p.abs() < (0.5 * q * e_old).abs() && p > q * (a - x) && p < q * (b - x) {
                d = p / q;
                let u = x + d;
                if u - a < tol2 || b - u < tol2 {
                    d = if m > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x < m { b - x } else { a - x };
            d = GOLD * e;
        }
        let u = if d.abs() >= tol1 { x + d } else { x + if d > 0.0 { tol1 } else { -tol1 } };
        let fu = f(u);
        if fu <= fx {
            if u < x {
                b = x;
            } else {
                a = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                a = u;
            } else {
                b = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    (x, fx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_minimum() {
        let (x, fx) = brent_min(|x| (x - 3.0) * (x - 3.0) + 1.0, -10.0, 10.0, 1e-10, 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
        assert!((fx - 1.0).abs() < 1e-10);
    }

    #[test]
    fn asymmetric_function() {
        let (x, _) = brent_min(|x: f64| x.exp() - 2.0 * x, -5.0, 5.0, 1e-10, 200);
        // minimum of e^x - 2x at x = ln 2.
        assert!((x - 2.0f64.ln()).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn boundary_minimum() {
        // Monotone increasing on [1, 4]: minimum near the left edge.
        let (x, _) = brent_min(|x| x, 1.0, 4.0, 1e-8, 200);
        assert!(x < 1.01, "x = {x}");
    }

    #[test]
    fn sin_minimum() {
        let (x, _) = brent_min(|x: f64| x.sin(), 2.0, 6.0, 1e-10, 200);
        assert!((x - 3.0 * std::f64::consts::FRAC_PI_2).abs() < 1e-6);
    }
}
