//! Standard normal distribution functions.

/// Standard normal probability density.
pub fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Error function (Abramowitz & Stegun 7.1.26, |error| < 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile function (Acklam's algorithm, relative error
/// below 1.15e-9). Returns ±∞ at p = 0 / 1; panics outside [0, 1].
pub fn inv_cdf(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        assert!((cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((cdf(1.959_964) - 0.975).abs() < 1e-6);
        assert!((cdf(-1.959_964) - 0.025).abs() < 1e-6);
        assert!(cdf(8.0) > 0.999_999);
        assert!(cdf(-8.0) < 1e-6);
    }

    #[test]
    fn inv_cdf_known_values() {
        assert!((inv_cdf(0.5)).abs() < 1e-9);
        assert!((inv_cdf(0.975) - 1.959_964).abs() < 1e-5);
        assert!((inv_cdf(0.025) + 1.959_964).abs() < 1e-5);
        assert!((inv_cdf(0.841_344_75) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn pdf_properties() {
        assert!((pdf(0.0) - 0.398_942_28).abs() < 1e-7);
        assert!((pdf(1.0) - pdf(-1.0)).abs() < 1e-15);
    }

    #[test]
    fn boundaries() {
        assert_eq!(inv_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_cdf(1.0), f64::INFINITY);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// inv_cdf inverts cdf within the erf approximation's accuracy.
        /// (The A&S erf is good to ~1.5e-7 absolutely, so deep tails lose
        /// relative precision — the analysis only uses |x| ≲ 3.5.)
        #[test]
        fn round_trip(x in -3.5f64..3.5) {
            let back = inv_cdf(cdf(x));
            prop_assert!((back - x).abs() < 1e-3, "x={x}, back={back}");
        }

        /// cdf is monotone and within [0, 1].
        #[test]
        fn cdf_monotone(a in -10f64..10.0, b in -10f64..10.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(cdf(lo) <= cdf(hi) + 1e-12);
            prop_assert!((0.0..=1.0).contains(&cdf(a)));
        }
    }
}
