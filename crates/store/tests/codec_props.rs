//! Property tests of the trip-store codec, plus committed damage fixtures.
//!
//! The properties: an *arbitrary* session population — empty trips,
//! extreme-but-finite coordinates, hostile strings — survives
//! encode → decode bit-identically through both the v3 and the legacy v1
//! container, writing the same population twice produces the same bytes,
//! and the v3 offset-index seek reader returns exactly what the sequential
//! scan returns. Sessions carrying non-finite floats are rejected at
//! encode time with a typed error instead of poisoning a file.
//!
//! The vendored proptest shim has no `Arbitrary` derive, so each case
//! draws one seed and expands it through a deterministic generator that
//! deliberately mixes in representable extremes (`f64::MAX`, `-0.0`, the
//! smallest subnormal) the wire format must carry losslessly.
//!
//! The fixtures: two committed damaged containers (a torn tail, a flipped
//! payload bit) whose salvage outcome is pinned to exact record counts and
//! damage kinds. Regenerate deliberately with
//! `BLESS_FIXTURES=1 cargo test -p taxitrace-store --test codec_props`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use taxitrace_geo::{GeoPoint, Point};
use taxitrace_roadnet::{ElementId, NodeId};
use bytes::Bytes;
use taxitrace_store::codec::{
    load, load_bytes, read_session_indexed, record_spans, salvage_bytes, save_sessions_tagged,
    save_sessions_v1, save_sessions_v2_tagged,
};
use taxitrace_store::{DamageKind, LoadOptions, StoreError};
use taxitrace_timebase::{Duration, Timestamp};
use taxitrace_traces::{CustomerTripTruth, PointTruth, RawTrip, RoutePoint, TaxiId, TripId};

static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_file(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ttrs-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    // sync(FILE_SEQ): scratch-file uniqueness needs only RMW atomicity.
    dir.join(format!("{tag}-{}.tts", FILE_SEQ.fetch_add(1, Ordering::Relaxed)))
}

/// splitmix64 — one seed expands into a whole session population.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Finite floats, biased toward the representable extremes the wire
    /// format must carry bit-exactly.
    fn finite(&mut self) -> f64 {
        match self.below(8) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::MAX,
            3 => f64::MIN,
            4 => f64::MIN_POSITIVE,
            5 => 5e-324, // smallest subnormal
            _ => (self.next() as f64 / u64::MAX as f64 - 0.5) * 2.0e12,
        }
    }
}

fn gen_point(rng: &mut Mix, trip_id: TripId, taxi: TaxiId, seq: u32) -> RoutePoint {
    RoutePoint {
        point_id: rng.next(),
        trip_id,
        taxi,
        geo: GeoPoint::new(rng.finite(), rng.finite()),
        pos: Point::new(rng.finite(), rng.finite()),
        timestamp: Timestamp::from_secs(rng.below(2_000_000_000) as i64 - 1_000_000_000),
        speed_kmh: rng.finite(),
        heading_deg: rng.finite(),
        fuel_ml: rng.finite(),
        truth: PointTruth {
            seq,
            element: if rng.below(2) == 0 { None } else { Some(ElementId(rng.next())) },
        },
    }
}

fn gen_truth(rng: &mut Mix) -> CustomerTripTruth {
    let start_seq = rng.below(10_000) as u32;
    CustomerTripTruth {
        start_seq,
        end_seq: start_seq + rng.below(1000) as u32,
        origin: NodeId(rng.next() as u32),
        destination: NodeId(rng.next() as u32),
        elements: (0..rng.below(5)).map(|_| ElementId(rng.next())).collect(),
        od_pair: if rng.below(2) == 0 {
            None
        } else {
            Some((format!("Z{}", rng.below(100)), format!("area {}", rng.below(100))))
        },
    }
}

fn gen_session(rng: &mut Mix, id: u64) -> RawTrip {
    let trip_id = TripId(id);
    let taxi = TaxiId(u16::from(rng.next() as u8));
    let start = rng.below(2_000_000_000) as i64 - 1_000_000_000;
    let dur = rng.below(10_000_000) as i64;
    // Empty trips are legal on the wire; generate them often.
    let n_points = rng.below(10) as u32;
    RawTrip {
        id: trip_id,
        taxi,
        start_time: Timestamp::from_secs(start),
        end_time: Timestamp::from_secs(start + dur),
        points: (0..n_points).map(|seq| gen_point(rng, trip_id, taxi, seq)).collect(),
        total_time: Duration::from_secs(dur),
        total_distance_m: rng.finite(),
        total_fuel_ml: rng.finite(),
        truth_trips: (0..rng.below(3)).map(|_| gen_truth(rng)).collect(),
    }
}

/// Up to four sessions with distinct ids (the trip store rejects
/// duplicates); zero sessions is a legal, interesting population.
fn gen_sessions(seed: u64) -> Vec<RawTrip> {
    let mut rng = Mix(seed);
    let base = rng.next();
    let count = rng.below(4);
    (0..count).map(|i| gen_session(&mut rng, base.wrapping_add(i))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn v3_files_round_trip_bit_identically(seed in 0u64..u64::MAX, fp in 0u64..u64::MAX) {
        let sessions = gen_sessions(seed);
        let path = scratch_file("v3");
        save_sessions_tagged(&path, &sessions, fp).expect("save v3");
        let loaded = load(&path, &LoadOptions::strict()).expect("strict load").sessions;
        prop_assert_eq!(&loaded, &sessions);

        // Salvage agrees with the strict reader on healthy data.
        let salvage = load(&path, &LoadOptions::salvage()).expect("salvage");
        prop_assert!(salvage.report.is_clean());
        prop_assert_eq!(salvage.report.version, 3);
        prop_assert_eq!(salvage.report.fingerprint, fp);
        prop_assert_eq!(salvage.report.records_valid, sessions.len() as u64);
        prop_assert_eq!(&salvage.sessions, &sessions);

        // Bit identity: re-encoding the decoded population reproduces the
        // file byte for byte.
        let again = scratch_file("v3-again");
        save_sessions_tagged(&again, &loaded, fp).expect("re-save");
        prop_assert_eq!(
            std::fs::read(&path).expect("read a"),
            std::fs::read(&again).expect("read b")
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&again);
    }

    #[test]
    fn indexed_seek_equals_sequential_scan(seed in 0u64..u64::MAX, fp in 0u64..u64::MAX) {
        let sessions = gen_sessions(seed);
        let path = scratch_file("v3-seek");
        save_sessions_tagged(&path, &sessions, fp).expect("save v3");
        let raw = Bytes::from(std::fs::read(&path).expect("read"));

        let salvage = salvage_bytes(&raw);
        prop_assert!(salvage.report.is_clean());

        // Whole-file fast path agrees with the sequential scan.
        let indexed = load_bytes(&raw, &LoadOptions::strict()).expect("indexed load");
        prop_assert!(indexed.indexed, "a v3 file must take the fast path");
        prop_assert_eq!(indexed.report.fingerprint, fp);
        prop_assert_eq!(&indexed.sessions, &salvage.sessions);

        // Every single-record seek agrees with the scan, in any order.
        for i in (0..sessions.len()).rev() {
            let one = read_session_indexed(&raw, i).expect("seek").expect("in range");
            prop_assert_eq!(&one, &sessions[i]);
        }
        prop_assert!(read_session_indexed(&raw, sessions.len()).expect("seek").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v1_files_round_trip(seed in 0u64..u64::MAX) {
        let sessions = gen_sessions(seed);
        let path = scratch_file("v1");
        save_sessions_v1(&path, &sessions).expect("save v1");
        let loaded = load(&path, &LoadOptions::strict()).expect("v1 load").sessions;
        prop_assert_eq!(&loaded, &sessions);
        let salvage = load(&path, &LoadOptions::salvage()).expect("v1 salvage");
        prop_assert!(salvage.report.is_clean());
        prop_assert_eq!(salvage.report.version, 1);
        prop_assert_eq!(&salvage.sessions, &sessions);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_finite_floats_never_reach_disk(seed in 0u64..u64::MAX, pick in 0u64..9) {
        let mut session = gen_session(&mut Mix(seed), 7);
        let bad = match pick % 3 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        match pick / 3 {
            0 => session.total_distance_m = bad,
            1 => session.total_fuel_ml = bad,
            _ => {
                if let Some(p) = session.points.first_mut() {
                    p.speed_kmh = bad;
                } else {
                    session.total_distance_m = bad;
                }
            }
        }
        let path = scratch_file("poison");
        let err = save_sessions_tagged(&path, &[session], 0).expect_err("must reject");
        prop_assert!(matches!(err, StoreError::BadFormat(_)), "got {:?}", err);
        // The atomic writer must not leave the target or its temp sibling.
        prop_assert!(!path.exists());
        prop_assert!(!path.with_extension("tmp").exists());
    }
}

// ------------------------------------------------------- damage fixtures

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The deterministic three-session population behind both fixtures.
fn fixture_sessions() -> Vec<RawTrip> {
    (0..3u64)
        .map(|i| {
            let points = (0..4u64)
                .map(|j| RoutePoint {
                    point_id: i * 10 + j,
                    trip_id: TripId(i),
                    taxi: TaxiId(i as u16 + 1),
                    geo: GeoPoint::new(25.4 + j as f64 * 0.001, 65.0),
                    pos: Point::new(j as f64 * 50.0, i as f64 * 25.0),
                    timestamp: Timestamp::from_secs(1_349_000_000 + (i * 600 + j * 30) as i64),
                    speed_kmh: 30.0 + j as f64,
                    heading_deg: 90.0,
                    fuel_ml: 40.0 * j as f64,
                    truth: PointTruth { seq: j as u32, element: None },
                })
                .collect();
            RawTrip {
                id: TripId(i),
                taxi: TaxiId(i as u16 + 1),
                start_time: Timestamp::from_secs(1_349_000_000 + (i * 600) as i64),
                end_time: Timestamp::from_secs(1_349_000_000 + (i * 600 + 90) as i64),
                points,
                total_time: Duration::from_secs(90),
                total_distance_m: 1500.0,
                total_fuel_ml: 120.0,
                truth_trips: Vec::new(),
            }
        })
        .collect()
}

/// Builds the clean container plus its two damaged variants. Pure function
/// of [`fixture_sessions`], so blessing is reproducible. Deliberately uses
/// the pre-index v2 writer: the committed fixtures pin that salvage of
/// old-format files keeps working after the v3 index was introduced.
fn fixture_bytes() -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let path = scratch_file("fixture-base");
    save_sessions_v2_tagged(&path, &fixture_sessions(), 0xF1C5).expect("save fixture");
    let clean = std::fs::read(&path).expect("read fixture");
    let _ = std::fs::remove_file(&path);

    // Torn tail: the final record's last 5 bytes never hit the disk.
    let torn = clean[..clean.len() - 5].to_vec();

    // Bit flip: one payload bit of the middle record.
    let spans = record_spans(&clean).expect("spans");
    let mut flipped = clean.clone();
    flipped[spans[1].payload_start + 10] ^= 0x20;
    (clean, torn, flipped)
}

#[test]
fn damage_fixtures_salvage_exactly() {
    let dir = fixture_dir();
    let torn_path = dir.join("torn_tail_v2.tts");
    let flip_path = dir.join("bit_flip_v2.tts");
    if std::env::var_os("BLESS_FIXTURES").is_some() {
        let (_, torn, flipped) = fixture_bytes();
        std::fs::create_dir_all(&dir).expect("fixture dir");
        std::fs::write(&torn_path, torn).expect("write torn fixture");
        std::fs::write(&flip_path, flipped).expect("write flip fixture");
        return;
    }
    let torn = std::fs::read(&torn_path)
        .expect("fixture missing — run once with BLESS_FIXTURES=1 to create it");
    let flipped = std::fs::read(&flip_path).expect("bit-flip fixture");

    // Committed bytes match the deterministic generator (drift alarm).
    let (_, gen_torn, gen_flipped) = fixture_bytes();
    assert_eq!(torn, gen_torn, "torn fixture drifted from its generator");
    assert_eq!(flipped, gen_flipped, "flip fixture drifted from its generator");

    // Torn tail: the first two records survive, the lost one is reported
    // as exactly one torn-tail damage entry.
    let salvage = salvage_bytes(&torn);
    assert_eq!(salvage.sessions.len(), 2);
    assert_eq!(salvage.report.records_valid, 2);
    assert_eq!(salvage.report.records_declared, 3);
    assert_eq!(salvage.report.damage.len(), 1);
    assert_eq!(salvage.report.damage[0].kind, DamageKind::TornTail);
    assert_eq!(salvage.report.damage[0].index, 2);
    assert_eq!(&salvage.sessions[..], &fixture_sessions()[..2]);

    // Bit flip: record 1 fails its CRC, records 0 and 2 survive intact.
    let salvage = salvage_bytes(&flipped);
    assert_eq!(salvage.sessions.len(), 2);
    assert_eq!(salvage.report.records_valid, 2);
    assert_eq!(salvage.report.damage.len(), 1);
    assert_eq!(salvage.report.damage[0].kind, DamageKind::CorruptRecord);
    assert_eq!(salvage.report.damage[0].index, 1);
    let expected: Vec<RawTrip> = fixture_sessions().into_iter().step_by(2).collect();
    assert_eq!(salvage.sessions, expected);

    // The strict reader reports both damages as typed errors.
    let dir = std::env::temp_dir().join(format!("ttrs-fixture-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("dir");
    let p = dir.join("torn.tts");
    std::fs::write(&p, &torn).expect("write");
    let err = load(&p, &LoadOptions::strict()).expect_err("torn must fail strict load");
    assert!(err.to_string().contains("torn_tail"), "{err}");
    std::fs::write(&p, &flipped).expect("write");
    let err = load(&p, &LoadOptions::strict()).expect_err("flip must fail strict load");
    assert!(err.to_string().contains("corrupt_record"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
