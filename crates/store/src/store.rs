use std::collections::HashMap;
use std::fmt;
use std::path::Path;

use taxitrace_geo::{BBox, CellId, Grid, Point};
use taxitrace_traces::{RawTrip, RoutePoint, TaxiId, TripId};
use taxitrace_timebase::Timestamp;

use crate::codec::{self, LoadOptions};
use crate::{Query, QueryError};

/// Store errors.
#[derive(Debug)]
pub enum StoreError {
    /// A session with this trip id is already stored.
    DuplicateTrip(TripId),
    /// I/O failure during persistence.
    Io(std::io::Error),
    /// The file is not a trip-store file or has an unsupported version.
    BadFormat(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateTrip(id) => write!(f, "duplicate trip id {id}"),
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadFormat(m) => write!(f, "bad store file: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Aggregate statistics of the store contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    pub sessions: usize,
    pub points: usize,
    pub taxis: usize,
}

/// In-memory trip database with secondary indexes.
///
/// Sessions are immutable once inserted (the device uploads whole engine-on
/// sessions), which keeps the indexes append-only.
#[derive(Debug)]
pub struct TripStore {
    sessions: Vec<RawTrip>,
    by_taxi: HashMap<TaxiId, Vec<usize>>,
    by_id: HashMap<TripId, usize>,
    /// `(session start, index)`, kept sorted for range scans.
    time_index: Vec<(Timestamp, usize)>,
    /// Spatial bucket index: cell → (session index, point index).
    grid: Grid,
    spatial: HashMap<CellId, Vec<(u32, u32)>>,
}

impl Default for TripStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TripStore {
    /// Empty store with the default 200 m spatial bucket size.
    pub fn new() -> Self {
        Self::with_grid(Grid::paper_default())
    }

    /// Empty store with a custom spatial bucket grid.
    pub fn with_grid(grid: Grid) -> Self {
        Self {
            sessions: Vec::new(),
            by_taxi: HashMap::new(),
            by_id: HashMap::new(),
            time_index: Vec::new(),
            grid,
            spatial: HashMap::new(),
        }
    }

    /// Inserts one session; all indexes are updated.
    pub fn insert(&mut self, session: RawTrip) -> Result<(), StoreError> {
        if self.by_id.contains_key(&session.id) {
            return Err(StoreError::DuplicateTrip(session.id));
        }
        let idx = self.sessions.len();
        self.by_id.insert(session.id, idx);
        self.by_taxi.entry(session.taxi).or_default().push(idx);
        let pos = self
            .time_index
            .partition_point(|&(t, _)| t <= session.start_time);
        self.time_index.insert(pos, (session.start_time, idx));
        for (pi, p) in session.points.iter().enumerate() {
            self.spatial
                .entry(self.grid.cell_of(p.pos))
                .or_default()
                .push((idx as u32, pi as u32));
        }
        self.sessions.push(session);
        Ok(())
    }

    /// Bulk insert.
    pub fn insert_all(
        &mut self,
        sessions: impl IntoIterator<Item = RawTrip>,
    ) -> Result<(), StoreError> {
        for s in sessions {
            self.insert(s)?;
        }
        Ok(())
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the store holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Store statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            sessions: self.sessions.len(),
            points: self.sessions.iter().map(|s| s.points.len()).sum(),
            taxis: self.by_taxi.len(),
        }
    }

    /// Session by trip id.
    pub fn get(&self, id: TripId) -> Option<&RawTrip> {
        self.by_id.get(&id).map(|&i| &self.sessions[i])
    }

    /// All sessions in insertion order.
    pub fn sessions(&self) -> &[RawTrip] {
        &self.sessions
    }

    /// Sessions of one taxi, in insertion order.
    pub fn of_taxi(&self, taxi: TaxiId) -> impl Iterator<Item = &RawTrip> + '_ {
        self.by_taxi
            .get(&taxi)
            .into_iter()
            .flatten()
            .map(move |&i| &self.sessions[i])
    }

    /// Taxis present, sorted.
    pub fn taxis(&self) -> Vec<TaxiId> {
        // lint:allow(determinism): hash order is erased by the sort below
        let mut t: Vec<TaxiId> = self.by_taxi.keys().copied().collect();
        t.sort_unstable();
        t
    }

    /// Sessions whose start time lies in `[from, to)`, in start order.
    pub fn in_time_range(
        &self,
        from: Timestamp,
        to: Timestamp,
    ) -> impl Iterator<Item = &RawTrip> + '_ {
        let lo = self.time_index.partition_point(|&(t, _)| t < from);
        let hi = self.time_index.partition_point(|&(t, _)| t < to);
        self.time_index[lo..hi].iter().map(move |&(_, i)| &self.sessions[i])
    }

    /// Route points whose position lies inside `bbox`
    /// (via the spatial bucket index).
    pub fn points_in_bbox(&self, bbox: &BBox) -> Vec<&RoutePoint> {
        let mut out = Vec::new();
        for cell in self.grid.cells_in_bbox(bbox) {
            if let Some(entries) = self.spatial.get(&cell) {
                for &(si, pi) in entries {
                    let p = &self.sessions[si as usize].points[pi as usize];
                    if bbox.contains(p.pos) {
                        out.push(p);
                    }
                }
            }
        }
        out
    }

    /// Route points within `radius` metres of `center`.
    pub fn points_near(&self, center: Point, radius: f64) -> Vec<&RoutePoint> {
        let bbox = BBox::from_point(center).expand(radius);
        let r2 = radius * radius;
        self.points_in_bbox(&bbox)
            .into_iter()
            .filter(|p| p.pos.distance_sq(center) <= r2)
            .collect()
    }

    /// Runs a composed [`Query`], yielding matching sessions lazily in
    /// insertion order — no per-call `Vec` allocation. Contradictory
    /// filters (inverted ranges) are a typed [`QueryError`] instead of a
    /// silently empty result.
    pub fn query(&self, q: &Query) -> Result<impl Iterator<Item = &RawTrip> + '_, QueryError> {
        q.validate()?;
        let q = q.clone();
        Ok(self.sessions.iter().filter(move |s| q.matches(s)))
    }

    /// Persists the store to a file (versioned binary format).
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        codec::save_sessions(path, &self.sessions)
    }

    /// Loads a store from a file written by [`Self::save`].
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        Ok(Self::load_stats(path)?.0)
    }

    /// [`Self::load`] plus provenance: the flag is `true` when the v3
    /// offset index served the read (seek + zero-copy payloads) without a
    /// sequential scan.
    pub fn load_stats(path: &Path) -> Result<(Self, bool), StoreError> {
        let out = codec::load(path, &LoadOptions::strict())?;
        let mut store = Self::new();
        store.insert_all(out.sessions)?;
        Ok((store, out.indexed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::GeoPoint;
    use taxitrace_timebase::Duration;
    use taxitrace_traces::PointTruth;

    fn point(trip: u64, taxi: u16, t: i64, x: f64, y: f64) -> RoutePoint {
        RoutePoint {
            point_id: t as u64,
            trip_id: TripId(trip),
            taxi: TaxiId(taxi),
            geo: GeoPoint::new(25.0, 65.0),
            pos: Point::new(x, y),
            timestamp: Timestamp::from_secs(t),
            speed_kmh: 30.0,
            heading_deg: 0.0,
            fuel_ml: 1.0,
            truth: PointTruth { seq: t as u32, element: None },
        }
    }

    fn session(trip: u64, taxi: u16, t0: i64, xs: &[f64]) -> RawTrip {
        let points: Vec<RoutePoint> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| point(trip, taxi, t0 + i as i64 * 10, x, 0.0))
            .collect();
        RawTrip {
            id: TripId(trip),
            taxi: TaxiId(taxi),
            start_time: Timestamp::from_secs(t0),
            end_time: Timestamp::from_secs(t0 + xs.len() as i64 * 10),
            points,
            total_time: Duration::from_secs(xs.len() as i64 * 10),
            total_distance_m: 100.0,
            total_fuel_ml: 50.0,
            truth_trips: Vec::new(),
        }
    }

    fn filled() -> TripStore {
        let mut s = TripStore::new();
        s.insert(session(1, 1, 0, &[0.0, 100.0, 300.0])).unwrap();
        s.insert(session(2, 1, 1000, &[500.0, 700.0])).unwrap();
        s.insert(session(3, 2, 500, &[100.0])).unwrap();
        s
    }

    #[test]
    fn insert_and_get() {
        let s = filled();
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(TripId(2)).unwrap().taxi, TaxiId(1));
        assert!(s.get(TripId(9)).is_none());
        assert_eq!(s.stats(), StoreStats { sessions: 3, points: 6, taxis: 2 });
    }

    #[test]
    fn duplicate_rejected() {
        let mut s = filled();
        assert!(matches!(
            s.insert(session(1, 1, 0, &[0.0])),
            Err(StoreError::DuplicateTrip(TripId(1)))
        ));
    }

    #[test]
    fn taxi_index() {
        let s = filled();
        assert_eq!(s.of_taxi(TaxiId(1)).count(), 2);
        assert_eq!(s.of_taxi(TaxiId(2)).count(), 1);
        assert_eq!(s.of_taxi(TaxiId(5)).count(), 0);
        assert_eq!(s.taxis(), vec![TaxiId(1), TaxiId(2)]);
    }

    #[test]
    fn time_range_scan() {
        let s = filled();
        let hits: Vec<u64> = s
            .in_time_range(Timestamp::from_secs(100), Timestamp::from_secs(1001))
            .map(|t| t.id.0)
            .collect();
        assert_eq!(hits, vec![3, 2]);
    }

    #[test]
    fn spatial_queries() {
        let s = filled();
        let bbox = BBox::from_corners(Point::new(-10.0, -10.0), Point::new(150.0, 10.0));
        let mut xs: Vec<f64> = s.points_in_bbox(&bbox).iter().map(|p| p.pos.x).collect();
        xs.sort_by(f64::total_cmp);
        assert_eq!(xs, vec![0.0, 100.0, 100.0]);

        let near = s.points_near(Point::new(690.0, 0.0), 15.0);
        assert_eq!(near.len(), 1);
        assert_eq!(near[0].pos.x, 700.0);
    }

    #[test]
    fn composed_query_is_lazy_and_validated() {
        let s = filled();
        let q = Query::new().taxi(TaxiId(1));
        let hits: Vec<u64> = s.query(&q).unwrap().map(|t| t.id.0).collect();
        assert_eq!(hits, vec![1, 2]);
        let inverted = Query::new()
            .started_after(Timestamp::from_secs(100))
            .started_before(Timestamp::from_secs(0));
        assert!(matches!(
            s.query(&inverted),
            Err(QueryError::EmptyRange { field: "time", .. })
        ));
    }

    #[test]
    fn persistence_round_trip() {
        let s = filled();
        let dir = std::env::temp_dir().join("taxitrace_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.tts");
        s.save(&path).unwrap();
        let loaded = TripStore::load(&path).unwrap();
        assert_eq!(loaded.stats(), s.stats());
        assert_eq!(
            loaded.get(TripId(1)).unwrap().points,
            s.get(TripId(1)).unwrap().points
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("taxitrace_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.tts");
        std::fs::write(&path, b"not a store file at all").unwrap();
        assert!(matches!(TripStore::load(&path), Err(StoreError::BadFormat(_))));
        std::fs::remove_file(&path).ok();
    }
}
