//! Byte-level integrity primitives shared by every on-disk container:
//! a dependency-free CRC-32 and an atomic publish-by-rename writer.
//!
//! The v2 container formats ([`crate::codec`], [`crate::checkpoint`])
//! frame every record with a length and a CRC-32 of its payload, the
//! standard durability recipe of write-ahead logs and log-structured
//! stores: a flipped bit fails the record's checksum instead of
//! producing silently wrong decodes, and a torn tail fails the length
//! check instead of reading garbage. Checksums make damage *detectable*;
//! [`write_atomic`] makes fresh damage *unlikely* — data reaches the
//! final name only after a full write, an fsync, and a rename, so a
//! mid-write kill leaves the previous file (or none), never half of the
//! new one.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// CRC-32 (IEEE 802.3 polynomial, reflected — the same parametrisation
/// as zlib/PNG/gzip), table-driven and computed without any dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(CRC32_INIT, bytes) ^ CRC32_XOROUT
}

/// Streaming form of [`crc32`]: seed with [`CRC32_INIT`], fold chunks,
/// finish by XOR-ing [`CRC32_XOROUT`].
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Initial CRC-32 state (all ones).
pub const CRC32_INIT: u32 = 0xFFFF_FFFF;
/// Final XOR applied to the CRC-32 state.
pub const CRC32_XOROUT: u32 = 0xFFFF_FFFF;

/// The reflected CRC-32 lookup table, built at compile time.
static CRC32_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Writes `bytes` to `path` atomically: the data goes to a `.tmp`
/// sibling, is flushed *and fsynced*, and only then renamed over the
/// final name. A kill at any instant leaves either the previous file or
/// no file under `path` — never a torn one. Every store/checkpoint
/// writer in this crate publishes through here.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Best-effort directory fsync so the rename itself is durable; not
    // all platforms/filesystems support syncing a directory handle.
    if let Some(dir) = path.parent() {
        if let Ok(handle) = fs::File::open(dir) {
            let _ = handle.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        // Streaming folds equal the one-shot digest.
        let state = crc32_update(CRC32_INIT, b"12345");
        let state = crc32_update(state, b"6789");
        assert_eq!(state ^ CRC32_XOROUT, crc32(b"123456789"));
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let mut data = vec![0u8; 256];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8;
        }
        let clean = crc32(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn write_atomic_leaves_no_tmp_and_replaces_content() {
        let dir = std::env::temp_dir().join("taxitrace-integrity-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer payload");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
