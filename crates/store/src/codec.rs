//! Versioned binary file format for trip data.
//!
//! Layout: an 8-byte magic (`b"TTRS\x00\x00\x00\x01"`), a session count,
//! then each session length-prefixed. All integers little-endian; floats as
//! IEEE-754 bits. The format is hand-rolled (rather than `serde_json` etc.)
//! because a simulated year is ~10⁶ route points and the store is reloaded
//! repeatedly while iterating on analyses.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use taxitrace_geo::{GeoPoint, Point};
use taxitrace_roadnet::{ElementId, NodeId};
use taxitrace_timebase::{Duration, Timestamp};
use taxitrace_traces::{
    CustomerTripTruth, PointTruth, RawTrip, RoutePoint, TaxiId, TripId,
};

use crate::StoreError;

const MAGIC: [u8; 8] = *b"TTRS\x00\x00\x00\x01";

/// Writes sessions to `path`.
pub fn save_sessions(path: &Path, sessions: &[RawTrip]) -> Result<(), StoreError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&MAGIC)?;
    w.write_all(&(sessions.len() as u64).to_le_bytes())?;
    let mut buf = BytesMut::new();
    for s in sessions {
        buf.clear();
        encode_session(&mut buf, s);
        w.write_all(&(buf.len() as u64).to_le_bytes())?;
        w.write_all(&buf)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads sessions from `path`.
pub fn load_sessions(path: &Path) -> Result<Vec<RawTrip>, StoreError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| StoreError::BadFormat("file too short for magic".into()))?;
    if magic != MAGIC {
        return Err(StoreError::BadFormat("magic mismatch".into()));
    }
    let count = read_u64(&mut r)? as usize;
    let mut sessions = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let len = read_u64(&mut r)? as usize;
        let mut raw = vec![0u8; len];
        r.read_exact(&mut raw)
            .map_err(|_| StoreError::BadFormat("truncated session record".into()))?;
        let mut bytes = Bytes::from(raw);
        sessions.push(decode_session(&mut bytes)?);
    }
    Ok(sessions)
}

fn read_u64(r: &mut impl Read) -> Result<u64, StoreError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)
        .map_err(|_| StoreError::BadFormat("truncated integer".into()))?;
    Ok(u64::from_le_bytes(b))
}

/// Encodes one session in the store's wire format (exposed so stage
/// checkpoints can embed session payloads; see `checkpoint`).
pub fn encode_session(buf: &mut BytesMut, s: &RawTrip) {
    buf.put_u64_le(s.id.0);
    buf.put_u8(s.taxi.0);
    buf.put_i64_le(s.start_time.secs());
    buf.put_i64_le(s.end_time.secs());
    buf.put_i64_le(s.total_time.secs());
    buf.put_f64_le(s.total_distance_m);
    buf.put_f64_le(s.total_fuel_ml);
    buf.put_u32_le(s.points.len() as u32);
    for p in &s.points {
        encode_point(buf, p);
    }
    buf.put_u32_le(s.truth_trips.len() as u32);
    for t in &s.truth_trips {
        encode_truth(buf, t);
    }
}

/// Encodes one route point (wire primitive for stage checkpoints).
pub fn encode_point(buf: &mut BytesMut, p: &RoutePoint) {
    buf.put_u64_le(p.point_id);
    buf.put_f64_le(p.geo.lon);
    buf.put_f64_le(p.geo.lat);
    buf.put_f64_le(p.pos.x);
    buf.put_f64_le(p.pos.y);
    buf.put_i64_le(p.timestamp.secs());
    buf.put_f64_le(p.speed_kmh);
    buf.put_f64_le(p.heading_deg);
    buf.put_f64_le(p.fuel_ml);
    buf.put_u32_le(p.truth.seq);
    match p.truth.element {
        Some(e) => {
            buf.put_u8(1);
            buf.put_u64_le(e.0);
        }
        None => buf.put_u8(0),
    }
}

fn encode_truth(buf: &mut BytesMut, t: &CustomerTripTruth) {
    buf.put_u32_le(t.start_seq);
    buf.put_u32_le(t.end_seq);
    buf.put_u32_le(t.origin.0);
    buf.put_u32_le(t.destination.0);
    buf.put_u32_le(t.elements.len() as u32);
    for e in &t.elements {
        buf.put_u64_le(e.0);
    }
    match &t.od_pair {
        Some((a, b)) => {
            buf.put_u8(1);
            put_str(buf, a);
            put_str(buf, b);
        }
        None => buf.put_u8(0),
    }
}

/// Writes a u16-length-prefixed UTF-8 string (wire primitive).
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

/// Decodes one session from the store's wire format.
pub fn decode_session(b: &mut Bytes) -> Result<RawTrip, StoreError> {
    let id = TripId(take_u64(b)?);
    let taxi = TaxiId(take_u8(b)?);
    let start_time = Timestamp::from_secs(take_i64(b)?);
    let end_time = Timestamp::from_secs(take_i64(b)?);
    let total_time = Duration::from_secs(take_i64(b)?);
    let total_distance_m = take_f64(b)?;
    let total_fuel_ml = take_f64(b)?;
    let np = take_u32(b)? as usize;
    let mut points = Vec::with_capacity(np);
    for _ in 0..np {
        points.push(decode_point(b, id, taxi)?);
    }
    let nt = take_u32(b)? as usize;
    let mut truth_trips = Vec::with_capacity(nt);
    for _ in 0..nt {
        truth_trips.push(decode_truth(b)?);
    }
    Ok(RawTrip {
        id,
        taxi,
        start_time,
        end_time,
        points,
        total_time,
        total_distance_m,
        total_fuel_ml,
        truth_trips,
    })
}

/// Decodes one route point; `trip_id`/`taxi` come from the enclosing
/// record (points do not repeat them on the wire).
pub fn decode_point(b: &mut Bytes, trip_id: TripId, taxi: TaxiId) -> Result<RoutePoint, StoreError> {
    Ok(RoutePoint {
        point_id: take_u64(b)?,
        trip_id,
        taxi,
        geo: GeoPoint::new(take_f64(b)?, take_f64(b)?),
        pos: Point::new(take_f64(b)?, take_f64(b)?),
        timestamp: Timestamp::from_secs(take_i64(b)?),
        speed_kmh: take_f64(b)?,
        heading_deg: take_f64(b)?,
        fuel_ml: take_f64(b)?,
        truth: PointTruth {
            seq: take_u32(b)?,
            element: if take_u8(b)? == 1 { Some(ElementId(take_u64(b)?)) } else { None },
        },
    })
}

fn decode_truth(b: &mut Bytes) -> Result<CustomerTripTruth, StoreError> {
    let start_seq = take_u32(b)?;
    let end_seq = take_u32(b)?;
    let origin = NodeId(take_u32(b)?);
    let destination = NodeId(take_u32(b)?);
    let ne = take_u32(b)? as usize;
    let mut elements = Vec::with_capacity(ne);
    for _ in 0..ne {
        elements.push(ElementId(take_u64(b)?));
    }
    let od_pair = if take_u8(b)? == 1 {
        let a = take_str(b)?;
        let bb = take_str(b)?;
        Some((a, bb))
    } else {
        None
    };
    Ok(CustomerTripTruth { start_seq, end_seq, origin, destination, elements, od_pair })
}

macro_rules! take_impl {
    ($name:ident, $ty:ty, $get:ident, $size:expr) => {
        /// Truncation-checked scalar read (wire primitive).
        pub fn $name(b: &mut Bytes) -> Result<$ty, StoreError> {
            if b.remaining() < $size {
                return Err(StoreError::BadFormat(concat!("truncated ", stringify!($ty)).into()));
            }
            Ok(b.$get())
        }
    };
}

take_impl!(take_u64, u64, get_u64_le, 8);
take_impl!(take_i64, i64, get_i64_le, 8);
take_impl!(take_f64, f64, get_f64_le, 8);
take_impl!(take_u32, u32, get_u32_le, 4);
take_impl!(take_u8, u8, get_u8, 1);

/// Reads a u16-length-prefixed UTF-8 string (wire primitive).
pub fn take_str(b: &mut Bytes) -> Result<String, StoreError> {
    if b.remaining() < 2 {
        return Err(StoreError::BadFormat("truncated string length".into()));
    }
    let len = b.get_u16_le() as usize;
    if b.remaining() < len {
        return Err(StoreError::BadFormat("truncated string body".into()));
    }
    let raw = b.split_to(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| StoreError::BadFormat("invalid utf-8 in string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_session() -> RawTrip {
        let mk = |i: u32| RoutePoint {
            point_id: i as u64,
            trip_id: TripId(9),
            taxi: TaxiId(3),
            geo: GeoPoint::new(25.4 + i as f64 * 0.001, 65.0),
            pos: Point::new(i as f64 * 10.0, -5.0),
            timestamp: Timestamp::from_secs(1000 + i as i64 * 15),
            speed_kmh: 20.0 + i as f64,
            heading_deg: 90.0,
            fuel_ml: i as f64 * 2.0,
            truth: PointTruth {
                seq: i,
                element: if i.is_multiple_of(2) { Some(ElementId(121_000 + i as u64)) } else { None },
            },
        };
        RawTrip {
            id: TripId(9),
            taxi: TaxiId(3),
            start_time: Timestamp::from_secs(1000),
            end_time: Timestamp::from_secs(1100),
            points: (0..6).map(mk).collect(),
            total_time: Duration::from_secs(100),
            total_distance_m: 60.0,
            total_fuel_ml: 11.5,
            truth_trips: vec![CustomerTripTruth {
                start_seq: 0,
                end_seq: 5,
                origin: NodeId(1),
                destination: NodeId(4),
                elements: vec![ElementId(121_000), ElementId(121_001)],
                od_pair: Some(("T".into(), "S".into())),
            }],
        }
    }

    #[test]
    fn round_trip_in_memory() {
        let s = sample_session();
        let mut buf = BytesMut::new();
        encode_session(&mut buf, &s);
        let mut bytes = buf.freeze();
        let back = decode_session(&mut bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(bytes.remaining(), 0, "no trailing bytes");
    }

    #[test]
    fn truncation_is_detected() {
        let s = sample_session();
        let mut buf = BytesMut::new();
        encode_session(&mut buf, &s);
        for cut in [1usize, 8, 20, buf.len() / 2, buf.len() - 1] {
            let mut bytes = Bytes::copy_from_slice(&buf[..cut]);
            assert!(
                decode_session(&mut bytes).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn file_round_trip_many_sessions() {
        let dir = std::env::temp_dir().join("taxitrace_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("many.tts");
        let sessions: Vec<RawTrip> = (0..10)
            .map(|i| {
                let mut s = sample_session();
                s.id = TripId(100 + i);
                for p in &mut s.points {
                    p.trip_id = s.id;
                }
                s
            })
            .collect();
        save_sessions(&path, &sessions).unwrap();
        let loaded = load_sessions(&path).unwrap();
        assert_eq!(loaded, sessions);
        std::fs::remove_file(&path).ok();
    }
}
