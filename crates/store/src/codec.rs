//! Versioned binary file format for trip data.
//!
//! Three container versions exist. **v1** (`b"TTRS\x00\x00\x00\x01"`) is a
//! magic, a session count, then each session length-prefixed — no
//! checksums, accepted read-only for files written by older builds.
//! **v2** (`b"TTRS\x00\x00\x00\x02"`) adds a self-describing header and
//! per-record CRC framing. **v3** (`b"TTRS\x00\x00\x00\x03"`), the only
//! format written today, keeps the v2 header and record framing unchanged
//! and inserts an offset index between them:
//!
//! ```text
//! magic         8 bytes  b"TTRS\x00\x00\x00\x03"
//! fingerprint   u64      config fingerprint (0 = untagged)
//! record count  u64
//! header crc    u32      CRC-32 of the 24 header bytes above
//! offset index  count × u64   absolute frame-start offset per record   (v3 only)
//! index crc     u32      CRC-32 of the offset-index bytes              (v3 only)
//! per record:
//!   len         u64      payload length in bytes
//!   crc         u32      CRC-32 of the payload
//!   payload     len bytes (one session in the wire format below)
//! ```
//!
//! All integers little-endian; floats as IEEE-754 bits. The format is
//! hand-rolled (rather than `serde_json` etc.) because a simulated year is
//! ~10⁶ route points and the store is reloaded repeatedly while iterating
//! on analyses. The length+CRC framing buys torn-write *salvage*: a
//! flipped bit fails one record's checksum and a truncated tail fails the
//! length check, so [`load`] with [`LoadOptions::salvage`] recovers every
//! record that still verifies instead of aborting (see [`SalvageReport`]).
//!
//! The v3 index buys *seek reads*: [`load`] jumps straight to each record
//! and decodes a borrowed (zero-copy) slice of the file image, and
//! [`read_session_indexed`] fetches one record without walking the frames
//! before it. The record-count field is covered by the header CRC, so the
//! body start `28 + count*8 + 4` stays computable even when the index
//! bytes themselves are damaged — salvage then falls back to exactly the
//! v2 sequential scan and recovers every verifiable record. Writes are
//! atomic everywhere via [`crate::integrity::write_atomic`].

use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use taxitrace_geo::{GeoPoint, Point};
use taxitrace_roadnet::{ElementId, NodeId};
use taxitrace_timebase::{Duration, Timestamp};
use taxitrace_traces::{
    CustomerTripTruth, PointTruth, RawTrip, RecordSpan, RoutePoint, TaxiId, TripId,
};

use crate::integrity::{crc32, write_atomic};
use crate::StoreError;

/// Magic prefix of legacy v1 store files (read-only support).
pub const MAGIC_V1: [u8; 8] = *b"TTRS\x00\x00\x00\x01";
/// Magic prefix of pre-index v2 store files (read-only support).
pub const MAGIC_V2: [u8; 8] = *b"TTRS\x00\x00\x00\x02";
/// Magic prefix of v3 store files (the format written today).
pub const MAGIC_V3: [u8; 8] = *b"TTRS\x00\x00\x00\x03";

/// v2/v3 fixed header size: magic + fingerprint + record count + CRC.
const V2_HEADER_LEN: usize = 8 + 8 + 8 + 4;
/// CRC-32 trailer after the v3 offset index.
const V3_INDEX_CRC_LEN: usize = 4;
/// v2 per-record frame: payload length + payload CRC.
const V2_FRAME_LEN: usize = 8 + 4;
/// v1 per-record frame: payload length only.
const V1_FRAME_LEN: usize = 8;
/// Cap on individually reported torn-tail records; a torn tail that loses
/// more is summarised in the final damage entry so a corrupt header count
/// cannot balloon the report.
const MAX_TORN_DAMAGE: u64 = 4096;

/// What went wrong with one damaged record (or the file header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DamageKind {
    /// The record's framing was intact but its payload failed the CRC or
    /// did not decode; the record was skipped and reading continued.
    CorruptRecord,
    /// The file ended mid-record (truncation / torn write); everything
    /// from this record to the declared end is lost.
    TornTail,
    /// The header is unusable (bad magic, failed header CRC) or disagrees
    /// with the file body (declared count vs. records present).
    HeaderMismatch,
    /// The v3 offset index failed its CRC. The records themselves are
    /// unaffected — salvage recovers them by sequential scan — but seek
    /// reads are off the table until the file is rewritten.
    CorruptIndex,
}

impl DamageKind {
    /// Stable lowercase label (quarantine reasons, fsck output, metrics).
    pub fn label(self) -> &'static str {
        match self {
            DamageKind::CorruptRecord => "corrupt_record",
            DamageKind::TornTail => "torn_tail",
            DamageKind::HeaderMismatch => "header_mismatch",
            DamageKind::CorruptIndex => "corrupt_index",
        }
    }
}

/// One damaged record (or header problem) found while reading a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordDamage {
    /// Zero-based record index the damage was found at. For header-level
    /// damage this is the index reading stopped at (0 for a bad magic).
    pub index: u64,
    /// Classification of the damage.
    pub kind: DamageKind,
    /// Human-readable specifics for the quarantine ledger / fsck report.
    pub detail: String,
}

/// Integrity summary of one store file: what the header claims, what was
/// actually recovered, and every piece of damage encountered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// Container version (1, 2 or 3; 0 when the magic was unrecognised).
    pub version: u32,
    /// Config fingerprint from the header (0 for v1 / untagged files).
    pub fingerprint: u64,
    /// Record count the header declares.
    pub records_declared: u64,
    /// Records that verified and decoded.
    pub records_valid: u64,
    /// Damage entries in file order; empty means the file is clean.
    pub damage: Vec<RecordDamage>,
}

impl SalvageReport {
    /// True when every declared record verified and nothing else was wrong.
    pub fn is_clean(&self) -> bool {
        self.damage.is_empty()
    }
}

/// Result of a salvage read: every recoverable session plus the report.
#[derive(Debug, Clone)]
pub struct Salvage {
    /// Sessions that verified and decoded, in file order.
    pub sessions: Vec<RawTrip>,
    /// Per-file integrity report.
    pub report: SalvageReport,
}

/// Writes sessions to `path` as an untagged v3 container (fingerprint 0).
pub fn save_sessions(path: &Path, sessions: &[RawTrip]) -> Result<(), StoreError> {
    save_sessions_tagged(path, sessions, 0)
}

/// Writes sessions to `path` as a v3 container (offset index + CRC'd
/// record frames) stamped with the given config fingerprint. The write is
/// atomic: temp file + fsync + rename.
pub fn save_sessions_tagged(
    path: &Path,
    sessions: &[RawTrip],
    fingerprint: u64,
) -> Result<(), StoreError> {
    let count = checked_u64(sessions.len(), "session count")?;
    let mut out = BytesMut::new();
    out.put_slice(&MAGIC_V3);
    out.put_u64_le(fingerprint);
    out.put_u64_le(count);
    let header_crc = crc32(&out);
    out.put_u32_le(header_crc);

    // Frame the records first so the index can be laid down before them.
    let body_start = V2_HEADER_LEN + sessions.len() * 8 + V3_INDEX_CRC_LEN;
    let mut index = BytesMut::with_capacity(sessions.len() * 8);
    let mut body = BytesMut::new();
    let mut buf = BytesMut::new();
    for s in sessions {
        index.put_u64_le(checked_u64(body_start + body.len(), "record offset")?);
        buf.clear();
        encode_session(&mut buf, s)?;
        body.put_u64_le(checked_u64(buf.len(), "session record length")?);
        body.put_u32_le(crc32(&buf));
        body.put_slice(&buf);
    }
    out.put_slice(&index);
    out.put_u32_le(crc32(&index));
    out.put_slice(&body);
    write_atomic(path, &out)?;
    Ok(())
}

/// Writes sessions in the pre-index v2 layout (header + CRC'd frames, no
/// offset index). Kept for compatibility fixtures and the scan-vs-seek
/// benchmarks — new data should always go through [`save_sessions`].
pub fn save_sessions_v2_tagged(
    path: &Path,
    sessions: &[RawTrip],
    fingerprint: u64,
) -> Result<(), StoreError> {
    let count = checked_u64(sessions.len(), "session count")?;
    let mut out = BytesMut::new();
    out.put_slice(&MAGIC_V2);
    out.put_u64_le(fingerprint);
    out.put_u64_le(count);
    let header_crc = crc32(&out);
    out.put_u32_le(header_crc);
    let mut buf = BytesMut::new();
    for s in sessions {
        buf.clear();
        encode_session(&mut buf, s)?;
        out.put_u64_le(checked_u64(buf.len(), "session record length")?);
        out.put_u32_le(crc32(&buf));
        out.put_slice(&buf);
    }
    write_atomic(path, &out)?;
    Ok(())
}

/// Writes sessions in the legacy v1 layout (no checksums). Kept for
/// compatibility fixtures and migration tests — new data should always go
/// through [`save_sessions`]. Still published atomically.
pub fn save_sessions_v1(path: &Path, sessions: &[RawTrip]) -> Result<(), StoreError> {
    let mut out = BytesMut::new();
    out.put_slice(&MAGIC_V1);
    out.put_u64_le(checked_u64(sessions.len(), "session count")?);
    let mut buf = BytesMut::new();
    for s in sessions {
        buf.clear();
        encode_session(&mut buf, s)?;
        out.put_u64_le(checked_u64(buf.len(), "session record length")?);
        out.put_slice(&buf);
    }
    write_atomic(path, &out)?;
    Ok(())
}

/// How [`load`] treats damage found in a container.
///
/// The default (and [`LoadOptions::strict`]) fails on the first damaged
/// record; [`LoadOptions::salvage`] recovers every record that verifies
/// and reports the rest as typed damage in the [`LoadOutcome`] report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadOptions {
    /// Recover verifiable records from a damaged file instead of failing.
    pub salvage: bool,
}

impl LoadOptions {
    /// Fail on any damage (CRC mismatch, truncation, header disagreement).
    pub fn strict() -> Self {
        Self { salvage: false }
    }

    /// Recover every verifiable record; damage goes in the report.
    pub fn salvage() -> Self {
        Self { salvage: true }
    }
}

/// Result of a [`load`]: the sessions plus full provenance — the
/// integrity report and whether the v3 offset index served the read
/// (seek + zero-copy payloads) rather than the sequential scan.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// Sessions that verified and decoded, in file order.
    pub sessions: Vec<RawTrip>,
    /// Per-file integrity report; clean v3 reads synthesize a clean one.
    pub report: SalvageReport,
    /// True when the v3 offset index served the read. The pipeline
    /// reports this as the `store.indexed_reads` counter.
    pub indexed: bool,
}

impl LoadOutcome {
    /// The outcome reshaped as a [`Salvage`] (sessions + report).
    pub fn into_salvage(self) -> Salvage {
        Salvage { sessions: self.sessions, report: self.report }
    }
}

/// Reads sessions from `path`, accepting v1, v2 and v3 containers. The
/// single entry point behind the deprecated `load_sessions*` family: a
/// clean v3 file is served through the offset-index fast path; older
/// layouts and files with *any* verification failure go through the
/// sequential salvage scan so damage is named precisely. With
/// [`LoadOptions::strict`] the first damage entry becomes a
/// [`StoreError::BadFormat`]; with [`LoadOptions::salvage`] damage never
/// fails the read — the worst case (unrecognised magic, failed header
/// CRC) yields zero sessions and one [`DamageKind::HeaderMismatch`]
/// entry in the report. Only I/O errors reading the file are fatal in
/// salvage mode.
pub fn load(path: &Path, opts: &LoadOptions) -> Result<LoadOutcome, StoreError> {
    let raw = Bytes::from(std::fs::read(path)?);
    load_bytes(&raw, opts)
}

/// [`load`] over an in-memory image (serving snapshots, fsck, tests).
pub fn load_bytes(raw: &Bytes, opts: &LoadOptions) -> Result<LoadOutcome, StoreError> {
    // Any verification failure on the fast path falls through to the
    // scan, whose salvage report names the damage precisely.
    if let Ok(Some(loaded)) = indexed_load_bytes(raw) {
        let n = loaded.sessions.len() as u64;
        let report = SalvageReport {
            version: 3,
            fingerprint: loaded.fingerprint,
            records_declared: n,
            records_valid: n,
            damage: Vec::new(),
        };
        return Ok(LoadOutcome { sessions: loaded.sessions, report, indexed: true });
    }
    let salvage = salvage_bytes(raw);
    match salvage.report.damage.first() {
        Some(d) if !opts.salvage => Err(StoreError::BadFormat(format!(
            "{} at record {}: {}",
            d.kind.label(),
            d.index,
            d.detail
        ))),
        _ => Ok(LoadOutcome {
            sessions: salvage.sessions,
            report: salvage.report,
            indexed: false,
        }),
    }
}

/// Reads sessions from `path`, accepting v1, v2 and v3 containers.
/// Strict: any damage — CRC mismatch, truncation, header disagreement —
/// is a [`StoreError::BadFormat`].
#[deprecated(since = "0.1.0", note = "use codec::load(path, &LoadOptions::strict())")]
pub fn load_sessions(path: &Path) -> Result<Vec<RawTrip>, StoreError> {
    Ok(load(path, &LoadOptions::strict())?.sessions)
}

/// Strict load plus provenance: the flag is `true` when the v3 offset
/// index served the read.
#[deprecated(since = "0.1.0", note = "use codec::load(path, &LoadOptions::strict())")]
pub fn load_sessions_stats(path: &Path) -> Result<(Vec<RawTrip>, bool), StoreError> {
    let out = load(path, &LoadOptions::strict())?;
    Ok((out.sessions, out.indexed))
}

/// Reads sessions from `path`, recovering every record that verifies and
/// reporting the rest as typed damage.
#[deprecated(since = "0.1.0", note = "use codec::load(path, &LoadOptions::salvage())")]
pub fn load_sessions_salvage(path: &Path) -> Result<Salvage, StoreError> {
    Ok(load(path, &LoadOptions::salvage())?.into_salvage())
}

/// Salvage load plus provenance: the flag is `true` when the v3 offset
/// index served the read.
#[deprecated(since = "0.1.0", note = "use codec::load(path, &LoadOptions::salvage())")]
pub fn load_sessions_salvage_stats(path: &Path) -> Result<(Salvage, bool), StoreError> {
    let out = load(path, &LoadOptions::salvage())?;
    let indexed = out.indexed;
    Ok((out.into_salvage(), indexed))
}

/// [`load_sessions_salvage`] over an in-memory image (fsck, tests).
pub fn salvage_bytes(raw: &[u8]) -> Salvage {
    let mut report = SalvageReport {
        version: 0,
        fingerprint: 0,
        records_declared: 0,
        records_valid: 0,
        damage: Vec::new(),
    };
    let header = match parse_header(raw, &mut report) {
        Some(h) => h,
        None => return Salvage { sessions: Vec::new(), report },
    };
    let sessions = salvage_records(raw, header, &mut report);
    report.records_valid = sessions.len() as u64;
    Salvage { sessions, report }
}

/// Byte extents of each framed record in a store image (frame and
/// payload offsets; see [`taxitrace_traces::RecordSpan`]). Fails on an
/// unreadable header; used by the on-disk chaos injector to aim bit
/// flips at record payloads and duplicate whole frames deterministically.
pub fn record_spans(raw: &[u8]) -> Result<Vec<RecordSpan>, StoreError> {
    let mut report = SalvageReport {
        version: 0,
        fingerprint: 0,
        records_declared: 0,
        records_valid: 0,
        damage: Vec::new(),
    };
    let header = parse_header(raw, &mut report)
        .ok_or_else(|| StoreError::BadFormat("unreadable store header".into()))?;
    let frame = if header.version >= 2 { V2_FRAME_LEN } else { V1_FRAME_LEN };
    let mut spans = Vec::new();
    let mut offset = header.body_start;
    while raw.len() - offset >= frame {
        let len = read_u64_at(raw, offset);
        let payload_at = offset + frame;
        let Some(end) = payload_end(payload_at, len, raw.len()) else { break };
        spans.push(RecordSpan { frame_start: offset, payload_start: payload_at, end });
        offset = end;
    }
    Ok(spans)
}

/// Result of a v3 indexed load: the sessions plus the header fingerprint.
#[derive(Debug, Clone)]
pub struct IndexedLoad {
    /// Sessions in file order.
    pub sessions: Vec<RawTrip>,
    /// Config fingerprint from the header (0 = untagged).
    pub fingerprint: u64,
}

/// Verified v3 header + offset index of an image.
struct V3Index {
    fingerprint: u64,
    declared: usize,
    body_start: usize,
}

/// Parses and CRC-verifies the v3 header and offset index of `raw`.
/// `Ok(None)` when the image is not v3; an error when it is v3 but the
/// header or index fails verification.
fn parse_v3_index(raw: &[u8]) -> Result<Option<V3Index>, StoreError> {
    if raw.len() < 8 || raw[..8] != MAGIC_V3 {
        return Ok(None);
    }
    if raw.len() < V2_HEADER_LEN {
        return Err(StoreError::BadFormat("file too short for v3 header".into()));
    }
    let stored = u32::from_le_bytes([raw[24], raw[25], raw[26], raw[27]]);
    if stored != crc32(&raw[..24]) {
        return Err(StoreError::BadFormat("v3 header CRC mismatch".into()));
    }
    let fingerprint = read_u64_at(raw, 8);
    let declared64 = read_u64_at(raw, 16);
    let body_start = v3_body_start(declared64, raw.len())
        .ok_or_else(|| StoreError::BadFormat("file too short for v3 offset index".into()))?;
    let index_end = body_start - V3_INDEX_CRC_LEN;
    let stored_idx = u32::from_le_bytes([
        raw[index_end],
        raw[index_end + 1],
        raw[index_end + 2],
        raw[index_end + 3],
    ]);
    if stored_idx != crc32(&raw[V2_HEADER_LEN..index_end]) {
        return Err(StoreError::BadFormat("v3 offset index CRC mismatch".into()));
    }
    // v3_body_start verified declared fits usize.
    let declared = declared64 as usize;
    Ok(Some(V3Index { fingerprint, declared, body_start }))
}

/// Decodes the framed record at absolute offset `off` of a v3 image,
/// borrowing the payload from `raw` (zero-copy: the returned session is
/// built from a refcounted slice, not a fresh buffer). Strict: CRC
/// failure, truncation or trailing payload bytes are errors.
fn decode_record_at(raw: &Bytes, off: usize, index: u64) -> Result<(RawTrip, usize), StoreError> {
    if raw.len().saturating_sub(off) < V2_FRAME_LEN {
        return Err(StoreError::BadFormat(format!("record {index} frame overruns file")));
    }
    let len = read_u64_at(raw, off);
    let stored = u32::from_le_bytes([raw[off + 8], raw[off + 9], raw[off + 10], raw[off + 11]]);
    let payload_at = off + V2_FRAME_LEN;
    let end = payload_end(payload_at, len, raw.len())
        .ok_or_else(|| StoreError::BadFormat(format!("record {index} payload overruns file")))?;
    let mut payload = raw.slice(payload_at..end);
    if crc32(&payload) != stored {
        return Err(StoreError::BadFormat(format!("record {index} payload CRC mismatch")));
    }
    let session = decode_session(&mut payload)?;
    if payload.remaining() != 0 {
        return Err(StoreError::BadFormat(format!(
            "record {index} has {} undecoded payload bytes",
            payload.remaining()
        )));
    }
    Ok((session, end))
}

/// Zero-copy indexed read of a whole v3 image: seeks each record via the
/// offset index and decodes payload slices borrowed from `raw` — no
/// full-file scan, no per-payload copies.
#[deprecated(since = "0.1.0", note = "use codec::load_bytes(raw, &LoadOptions::strict())")]
pub fn load_sessions_indexed_bytes(raw: &Bytes) -> Result<Option<IndexedLoad>, StoreError> {
    indexed_load_bytes(raw)
}

/// Zero-copy indexed read of a whole v3 image: seeks each record via the
/// offset index and decodes payload slices borrowed from `raw` — no
/// full-file scan, no per-payload copies. Strict: offsets must tile the
/// body exactly through to the end of the file, and every record must
/// verify. Returns `Ok(None)` for v1/v2 images (use the scan path) and
/// an error on any damage, so [`load_bytes`] can fall back to
/// [`salvage_bytes`] for a typed report.
fn indexed_load_bytes(raw: &Bytes) -> Result<Option<IndexedLoad>, StoreError> {
    let Some(index) = parse_v3_index(raw)? else { return Ok(None) };
    let mut sessions = Vec::with_capacity(index.declared.min(1 << 20));
    let mut expected = index.body_start;
    for i in 0..index.declared {
        let off64 = read_u64_at(raw, V2_HEADER_LEN + i * 8);
        let off = usize::try_from(off64)
            .map_err(|_| StoreError::BadFormat(format!("record {i} offset {off64} overflows")))?;
        if off != expected {
            return Err(StoreError::BadFormat(format!(
                "record {i} offset {off} disagrees with record layout ({expected})"
            )));
        }
        let (session, end) = decode_record_at(raw, off, i as u64)?;
        sessions.push(session);
        expected = end;
    }
    if expected != raw.len() {
        return Err(StoreError::BadFormat(format!(
            "{} trailing bytes after the last indexed record",
            raw.len() - expected
        )));
    }
    Ok(Some(IndexedLoad { sessions, fingerprint: index.fingerprint }))
}

/// Seek-reads record `i` of a v3 image via the offset index, decoding
/// only that record — the frames before it are never walked. `Ok(None)`
/// when the image is not v3 or `i` is out of range.
pub fn read_session_indexed(raw: &Bytes, i: usize) -> Result<Option<RawTrip>, StoreError> {
    let Some(index) = parse_v3_index(raw)? else { return Ok(None) };
    if i >= index.declared {
        return Ok(None);
    }
    let off64 = read_u64_at(raw, V2_HEADER_LEN + i * 8);
    let off = usize::try_from(off64)
        .map_err(|_| StoreError::BadFormat(format!("record {i} offset {off64} overflows")))?;
    if off < index.body_start {
        return Err(StoreError::BadFormat(format!(
            "record {i} offset {off} points before the body ({})",
            index.body_start
        )));
    }
    let (session, _) = decode_record_at(raw, off, i as u64)?;
    Ok(Some(session))
}

/// Parsed, verified container header.
struct Header {
    version: u32,
    declared: u64,
    body_start: usize,
}

fn parse_header(raw: &[u8], report: &mut SalvageReport) -> Option<Header> {
    if raw.len() < 8 {
        report.damage.push(RecordDamage {
            index: 0,
            kind: DamageKind::HeaderMismatch,
            detail: format!("file too short for magic ({} bytes)", raw.len()),
        });
        return None;
    }
    let magic = &raw[..8];
    if magic == MAGIC_V3 {
        report.version = 3;
        if raw.len() < V2_HEADER_LEN {
            report.damage.push(RecordDamage {
                index: 0,
                kind: DamageKind::HeaderMismatch,
                detail: format!("file too short for v3 header ({} bytes)", raw.len()),
            });
            return None;
        }
        let stored = u32::from_le_bytes([raw[24], raw[25], raw[26], raw[27]]);
        let actual = crc32(&raw[..24]);
        if stored != actual {
            report.damage.push(RecordDamage {
                index: 0,
                kind: DamageKind::HeaderMismatch,
                detail: format!("header CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"),
            });
            return None;
        }
        report.fingerprint = read_u64_at(raw, 8);
        report.records_declared = read_u64_at(raw, 16);
        // The CRC-protected count fixes where the body starts even when
        // the index bytes themselves are damaged.
        let Some(body_start) = v3_body_start(report.records_declared, raw.len()) else {
            report.damage.push(RecordDamage {
                index: 0,
                kind: DamageKind::HeaderMismatch,
                detail: format!(
                    "file too short for {}-entry offset index ({} bytes)",
                    report.records_declared,
                    raw.len()
                ),
            });
            return None;
        };
        let index_end = body_start - V3_INDEX_CRC_LEN;
        let stored_idx = u32::from_le_bytes([
            raw[index_end],
            raw[index_end + 1],
            raw[index_end + 2],
            raw[index_end + 3],
        ]);
        let actual_idx = crc32(&raw[V2_HEADER_LEN..index_end]);
        if stored_idx != actual_idx {
            // Index damage does not stop the read: records are still
            // recovered by the sequential scan below.
            report.damage.push(RecordDamage {
                index: 0,
                kind: DamageKind::CorruptIndex,
                detail: format!(
                    "offset index CRC mismatch (stored {stored_idx:#010x}, computed {actual_idx:#010x})"
                ),
            });
        }
        Some(Header { version: 3, declared: report.records_declared, body_start })
    } else if magic == MAGIC_V2 {
        if raw.len() < V2_HEADER_LEN {
            report.version = 2;
            report.damage.push(RecordDamage {
                index: 0,
                kind: DamageKind::HeaderMismatch,
                detail: format!("file too short for v2 header ({} bytes)", raw.len()),
            });
            return None;
        }
        report.version = 2;
        let stored = u32::from_le_bytes([raw[24], raw[25], raw[26], raw[27]]);
        let actual = crc32(&raw[..24]);
        if stored != actual {
            report.damage.push(RecordDamage {
                index: 0,
                kind: DamageKind::HeaderMismatch,
                detail: format!("header CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"),
            });
            return None;
        }
        report.fingerprint = read_u64_at(raw, 8);
        report.records_declared = read_u64_at(raw, 16);
        Some(Header { version: 2, declared: report.records_declared, body_start: V2_HEADER_LEN })
    } else if magic == MAGIC_V1 {
        report.version = 1;
        if raw.len() < 16 {
            report.damage.push(RecordDamage {
                index: 0,
                kind: DamageKind::HeaderMismatch,
                detail: format!("file too short for v1 header ({} bytes)", raw.len()),
            });
            return None;
        }
        report.records_declared = read_u64_at(raw, 8);
        Some(Header { version: 1, declared: report.records_declared, body_start: 16 })
    } else {
        report.damage.push(RecordDamage {
            index: 0,
            kind: DamageKind::HeaderMismatch,
            detail: "magic mismatch".into(),
        });
        None
    }
}

/// Body offset of a v3 container with `declared` records, or `None` when
/// the file cannot hold that index (overflow or truncation inside it).
fn v3_body_start(declared: u64, file_len: usize) -> Option<usize> {
    let index_bytes = usize::try_from(declared).ok()?.checked_mul(8)?;
    let body_start = V2_HEADER_LEN.checked_add(index_bytes)?.checked_add(V3_INDEX_CRC_LEN)?;
    (body_start <= file_len).then_some(body_start)
}

/// Walks the record frames from `body_start`, decoding every record that
/// verifies and classifying the rest. Reading continues past a corrupt
/// record (its frame still delimits it) and stops only at a torn tail,
/// where the frame itself can no longer be trusted.
fn salvage_records(raw: &[u8], header: Header, report: &mut SalvageReport) -> Vec<RawTrip> {
    let frame = if header.version >= 2 { V2_FRAME_LEN } else { V1_FRAME_LEN };
    let mut sessions = Vec::with_capacity(header.declared.min(1 << 20) as usize);
    let mut offset = header.body_start;
    let mut index: u64 = 0;
    let mut torn: Option<String> = None;
    // v1 readers always ignored bytes past the declared count (there is
    // no trailing-content check to preserve), so only v2+ reads on.
    while offset < raw.len() && (header.version >= 2 || index < header.declared) {
        let remaining = raw.len() - offset;
        if remaining < frame {
            torn = Some(format!("{remaining} bytes left, record frame needs {frame}"));
            break;
        }
        let len = read_u64_at(raw, offset);
        let payload_at = offset + frame;
        let Some(end) = payload_end(payload_at, len, raw.len()) else {
            torn = Some(format!(
                "record claims {len} bytes, only {} remain",
                raw.len() - payload_at
            ));
            break;
        };
        let payload = &raw[payload_at..end];
        if header.version >= 2 {
            let stored = u32::from_le_bytes([
                raw[offset + 8],
                raw[offset + 9],
                raw[offset + 10],
                raw[offset + 11],
            ]);
            let actual = crc32(payload);
            if stored != actual {
                report.damage.push(RecordDamage {
                    index,
                    kind: DamageKind::CorruptRecord,
                    detail: format!(
                        "payload CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"
                    ),
                });
                offset = end;
                index += 1;
                continue;
            }
        }
        let mut bytes = Bytes::copy_from_slice(payload);
        match decode_session(&mut bytes) {
            Ok(s) if header.version == 1 || bytes.remaining() == 0 => sessions.push(s),
            Ok(_) => report.damage.push(RecordDamage {
                index,
                kind: DamageKind::CorruptRecord,
                detail: format!("{} undecoded payload bytes", bytes.remaining()),
            }),
            Err(e) => report.damage.push(RecordDamage {
                index,
                kind: DamageKind::CorruptRecord,
                detail: format!("payload does not decode: {e}"),
            }),
        }
        offset = end;
        index += 1;
    }
    if let Some(detail) = torn {
        push_torn_tail(report, index, header.declared, &detail);
    } else if index < header.declared {
        // The file ends cleanly on a record boundary but short of the
        // declared count — a truncation that happened to land between
        // records is still a torn tail.
        push_torn_tail(report, index, header.declared, "file ends before declared count");
    } else if index > header.declared {
        // v2-only by construction of the loop bound: the CRC-protected
        // header disagrees with the body, which gained whole records
        // (e.g. a duplicated record).
        report.damage.push(RecordDamage {
            index,
            kind: DamageKind::HeaderMismatch,
            detail: format!(
                "header declares {} records, file holds {index}",
                header.declared
            ),
        });
    }
    sessions
}

/// Reports every record from `index` to the declared end as lost (capped
/// at [`MAX_TORN_DAMAGE`] entries so a corrupt count cannot balloon the
/// report), keeping the quarantine ledger 1:1 with lost records.
fn push_torn_tail(report: &mut SalvageReport, index: u64, declared: u64, detail: &str) {
    let lost = declared.saturating_sub(index).max(1);
    let reported = lost.min(MAX_TORN_DAMAGE);
    for i in 0..reported {
        let last = i + 1 == reported;
        report.damage.push(RecordDamage {
            index: index + i,
            kind: DamageKind::TornTail,
            detail: if i == 0 {
                format!("torn tail: {detail}")
            } else if last && lost > reported {
                format!("lost in torn tail (+{} more records)", lost - reported)
            } else {
                "lost in torn tail".into()
            },
        });
    }
}

fn read_u64_at(raw: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&raw[at..at + 8]);
    u64::from_le_bytes(b)
}

/// End offset of a payload of `len` bytes starting at `payload_at`, or
/// `None` when the declared length overruns the file (so a corrupt length
/// can never trigger an allocation beyond the file size).
fn payload_end(payload_at: usize, len: u64, file_len: usize) -> Option<usize> {
    let len = usize::try_from(len).ok()?;
    let end = payload_at.checked_add(len)?;
    (end <= file_len).then_some(end)
}

fn checked_u64(n: usize, what: &str) -> Result<u64, StoreError> {
    u64::try_from(n).map_err(|_| StoreError::BadFormat(format!("{what} {n} exceeds u64")))
}

fn checked_u32(n: usize, what: &str) -> Result<u32, StoreError> {
    u32::try_from(n).map_err(|_| StoreError::BadFormat(format!("{what} {n} exceeds u32")))
}

/// The wire format carries taxi ids in one byte; a wider in-memory id is
/// a typed encode error rather than silent truncation.
pub fn checked_taxi(taxi: TaxiId) -> Result<u8, StoreError> {
    u8::try_from(taxi.0).map_err(|_| {
        StoreError::BadFormat(format!(
            "taxi id {} exceeds the wire format's cap of {}",
            taxi.0,
            TaxiId::MAX_PERSISTABLE
        ))
    })
}

fn finite(v: f64, what: &str) -> Result<f64, StoreError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(StoreError::BadFormat(format!("non-finite {what}: {v}")))
    }
}

/// Encodes one session in the store's wire format (exposed so stage
/// checkpoints can embed session payloads; see `checkpoint`). Rejects
/// non-finite floats and counts that overflow their wire width rather
/// than writing a record that cannot round-trip.
pub fn encode_session(buf: &mut BytesMut, s: &RawTrip) -> Result<(), StoreError> {
    buf.put_u64_le(s.id.0);
    buf.put_u8(checked_taxi(s.taxi)?);
    buf.put_i64_le(s.start_time.secs());
    buf.put_i64_le(s.end_time.secs());
    buf.put_i64_le(s.total_time.secs());
    buf.put_f64_le(finite(s.total_distance_m, "total_distance_m")?);
    buf.put_f64_le(finite(s.total_fuel_ml, "total_fuel_ml")?);
    buf.put_u32_le(checked_u32(s.points.len(), "point count")?);
    for p in &s.points {
        encode_point(buf, p)?;
    }
    buf.put_u32_le(checked_u32(s.truth_trips.len(), "truth trip count")?);
    for t in &s.truth_trips {
        encode_truth(buf, t)?;
    }
    Ok(())
}

/// Encodes one route point (wire primitive for stage checkpoints).
pub fn encode_point(buf: &mut BytesMut, p: &RoutePoint) -> Result<(), StoreError> {
    buf.put_u64_le(p.point_id);
    buf.put_f64_le(finite(p.geo.lon, "geo.lon")?);
    buf.put_f64_le(finite(p.geo.lat, "geo.lat")?);
    buf.put_f64_le(finite(p.pos.x, "pos.x")?);
    buf.put_f64_le(finite(p.pos.y, "pos.y")?);
    buf.put_i64_le(p.timestamp.secs());
    buf.put_f64_le(finite(p.speed_kmh, "speed_kmh")?);
    buf.put_f64_le(finite(p.heading_deg, "heading_deg")?);
    buf.put_f64_le(finite(p.fuel_ml, "fuel_ml")?);
    buf.put_u32_le(p.truth.seq);
    match p.truth.element {
        Some(e) => {
            buf.put_u8(1);
            buf.put_u64_le(e.0);
        }
        None => buf.put_u8(0),
    }
    Ok(())
}

fn encode_truth(buf: &mut BytesMut, t: &CustomerTripTruth) -> Result<(), StoreError> {
    buf.put_u32_le(t.start_seq);
    buf.put_u32_le(t.end_seq);
    buf.put_u32_le(t.origin.0);
    buf.put_u32_le(t.destination.0);
    buf.put_u32_le(checked_u32(t.elements.len(), "truth element count")?);
    for e in &t.elements {
        buf.put_u64_le(e.0);
    }
    match &t.od_pair {
        Some((a, b)) => {
            buf.put_u8(1);
            put_str(buf, a)?;
            put_str(buf, b)?;
        }
        None => buf.put_u8(0),
    }
    Ok(())
}

/// Writes a u16-length-prefixed UTF-8 string (wire primitive). Fails on
/// strings longer than the u16 width can frame.
pub fn put_str(buf: &mut BytesMut, s: &str) -> Result<(), StoreError> {
    let len = u16::try_from(s.len())
        .map_err(|_| StoreError::BadFormat(format!("string length {} exceeds u16", s.len())))?;
    buf.put_u16_le(len);
    buf.put_slice(s.as_bytes());
    Ok(())
}

/// Decodes one session from the store's wire format.
pub fn decode_session(b: &mut Bytes) -> Result<RawTrip, StoreError> {
    let id = TripId(take_u64(b)?);
    let taxi = TaxiId(take_u8(b)?.into());
    let start_time = Timestamp::from_secs(take_i64(b)?);
    let end_time = Timestamp::from_secs(take_i64(b)?);
    let total_time = Duration::from_secs(take_i64(b)?);
    let total_distance_m = take_f64(b)?;
    let total_fuel_ml = take_f64(b)?;
    let np = take_count(b, 77, "point count")?;
    let mut points = Vec::with_capacity(np);
    for _ in 0..np {
        points.push(decode_point(b, id, taxi)?);
    }
    let nt = take_count(b, 21, "truth trip count")?;
    let mut truth_trips = Vec::with_capacity(nt);
    for _ in 0..nt {
        truth_trips.push(decode_truth(b)?);
    }
    Ok(RawTrip {
        id,
        taxi,
        start_time,
        end_time,
        points,
        total_time,
        total_distance_m,
        total_fuel_ml,
        truth_trips,
    })
}

/// Reads a u32 element count and validates it against the bytes that
/// remain, given a minimum encoded size per element — a corrupt count can
/// therefore never drive an allocation past the record it came from.
fn take_count(b: &mut Bytes, min_elem_size: usize, what: &str) -> Result<usize, StoreError> {
    let n = take_u32(b)? as usize;
    if n.saturating_mul(min_elem_size) > b.remaining() {
        return Err(StoreError::BadFormat(format!(
            "{what} {n} exceeds remaining {} bytes",
            b.remaining()
        )));
    }
    Ok(n)
}

/// Decodes one route point; `trip_id`/`taxi` come from the enclosing
/// record (points do not repeat them on the wire).
pub fn decode_point(b: &mut Bytes, trip_id: TripId, taxi: TaxiId) -> Result<RoutePoint, StoreError> {
    Ok(RoutePoint {
        point_id: take_u64(b)?,
        trip_id,
        taxi,
        geo: GeoPoint::new(take_f64(b)?, take_f64(b)?),
        pos: Point::new(take_f64(b)?, take_f64(b)?),
        timestamp: Timestamp::from_secs(take_i64(b)?),
        speed_kmh: take_f64(b)?,
        heading_deg: take_f64(b)?,
        fuel_ml: take_f64(b)?,
        truth: PointTruth {
            seq: take_u32(b)?,
            element: if take_u8(b)? == 1 { Some(ElementId(take_u64(b)?)) } else { None },
        },
    })
}

fn decode_truth(b: &mut Bytes) -> Result<CustomerTripTruth, StoreError> {
    let start_seq = take_u32(b)?;
    let end_seq = take_u32(b)?;
    let origin = NodeId(take_u32(b)?);
    let destination = NodeId(take_u32(b)?);
    let ne = take_count(b, 8, "truth element count")?;
    let mut elements = Vec::with_capacity(ne);
    for _ in 0..ne {
        elements.push(ElementId(take_u64(b)?));
    }
    let od_pair = if take_u8(b)? == 1 {
        let a = take_str(b)?;
        let bb = take_str(b)?;
        Some((a, bb))
    } else {
        None
    };
    Ok(CustomerTripTruth { start_seq, end_seq, origin, destination, elements, od_pair })
}

macro_rules! take_impl {
    ($name:ident, $ty:ty, $get:ident, $size:expr) => {
        /// Truncation-checked scalar read (wire primitive).
        pub fn $name(b: &mut Bytes) -> Result<$ty, StoreError> {
            if b.remaining() < $size {
                return Err(StoreError::BadFormat(concat!("truncated ", stringify!($ty)).into()));
            }
            Ok(b.$get())
        }
    };
}

take_impl!(take_u64, u64, get_u64_le, 8);
take_impl!(take_i64, i64, get_i64_le, 8);
take_impl!(take_f64, f64, get_f64_le, 8);
take_impl!(take_u32, u32, get_u32_le, 4);
take_impl!(take_u8, u8, get_u8, 1);

/// Reads a u16-length-prefixed UTF-8 string (wire primitive).
pub fn take_str(b: &mut Bytes) -> Result<String, StoreError> {
    if b.remaining() < 2 {
        return Err(StoreError::BadFormat("truncated string length".into()));
    }
    let len = b.get_u16_le() as usize;
    if b.remaining() < len {
        return Err(StoreError::BadFormat("truncated string body".into()));
    }
    let raw = b.split_to(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| StoreError::BadFormat("invalid utf-8 in string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_session() -> RawTrip {
        let mk = |i: u32| RoutePoint {
            point_id: i as u64,
            trip_id: TripId(9),
            taxi: TaxiId(3),
            geo: GeoPoint::new(25.4 + i as f64 * 0.001, 65.0),
            pos: Point::new(i as f64 * 10.0, -5.0),
            timestamp: Timestamp::from_secs(1000 + i as i64 * 15),
            speed_kmh: 20.0 + i as f64,
            heading_deg: 90.0,
            fuel_ml: i as f64 * 2.0,
            truth: PointTruth {
                seq: i,
                element: if i.is_multiple_of(2) { Some(ElementId(121_000 + i as u64)) } else { None },
            },
        };
        RawTrip {
            id: TripId(9),
            taxi: TaxiId(3),
            start_time: Timestamp::from_secs(1000),
            end_time: Timestamp::from_secs(1100),
            points: (0..6).map(mk).collect(),
            total_time: Duration::from_secs(100),
            total_distance_m: 60.0,
            total_fuel_ml: 11.5,
            truth_trips: vec![CustomerTripTruth {
                start_seq: 0,
                end_seq: 5,
                origin: NodeId(1),
                destination: NodeId(4),
                elements: vec![ElementId(121_000), ElementId(121_001)],
                od_pair: Some(("T".into(), "S".into())),
            }],
        }
    }

    fn sample_sessions(n: u64) -> Vec<RawTrip> {
        (0..n)
            .map(|i| {
                let mut s = sample_session();
                s.id = TripId(100 + i);
                for p in &mut s.points {
                    p.trip_id = s.id;
                }
                s
            })
            .collect()
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("taxitrace_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_in_memory() {
        let s = sample_session();
        let mut buf = BytesMut::new();
        encode_session(&mut buf, &s).unwrap();
        let mut bytes = buf.freeze();
        let back = decode_session(&mut bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(bytes.remaining(), 0, "no trailing bytes");
    }

    #[test]
    fn truncation_is_detected() {
        let s = sample_session();
        let mut buf = BytesMut::new();
        encode_session(&mut buf, &s).unwrap();
        for cut in [1usize, 8, 20, buf.len() / 2, buf.len() - 1] {
            let mut bytes = Bytes::copy_from_slice(&buf[..cut]);
            assert!(
                decode_session(&mut bytes).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn file_round_trip_many_sessions() {
        let path = tmp_path("many.tts");
        let sessions = sample_sessions(10);
        save_sessions(&path, &sessions).unwrap();
        let loaded = load(&path, &LoadOptions::strict()).unwrap();
        assert_eq!(loaded.sessions, sessions);
        assert!(loaded.indexed, "clean v3 file should take the index path");
        // A clean file salvages to the same content with a clean report.
        let salvage = load(&path, &LoadOptions::salvage()).unwrap();
        assert!(salvage.report.is_clean());
        assert_eq!(salvage.report.version, 3);
        assert_eq!(salvage.report.records_declared, 10);
        assert_eq!(salvage.report.records_valid, 10);
        assert_eq!(salvage.sessions, sessions);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pre_index_v2_files_still_load() {
        let path = tmp_path("v2.tts");
        let sessions = sample_sessions(4);
        save_sessions_v2_tagged(&path, &sessions, 0xBEEF).unwrap();
        assert_eq!(load(&path, &LoadOptions::strict()).unwrap().sessions, sessions);
        let salvage = load(&path, &LoadOptions::salvage()).unwrap();
        assert!(salvage.report.is_clean());
        assert_eq!(salvage.report.version, 2);
        assert_eq!(salvage.report.fingerprint, 0xBEEF);
        assert!(!salvage.indexed, "v2 files go through the scan path");
        // No index to seek for single-record reads either.
        let raw = Bytes::from(std::fs::read(&path).unwrap());
        assert!(read_session_indexed(&raw, 0).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn indexed_load_matches_scan() {
        let path = tmp_path("indexed.tts");
        let sessions = sample_sessions(9);
        save_sessions_tagged(&path, &sessions, 0xCAFE).unwrap();
        let raw = Bytes::from(std::fs::read(&path).unwrap());
        let indexed = load_bytes(&raw, &LoadOptions::strict()).unwrap();
        assert!(indexed.indexed);
        assert_eq!(indexed.report.fingerprint, 0xCAFE);
        assert_eq!(indexed.sessions, sessions);
        let scanned = salvage_bytes(&raw);
        assert!(scanned.report.is_clean());
        assert_eq!(indexed.sessions, scanned.sessions);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn indexed_single_record_seek() {
        let path = tmp_path("seek.tts");
        let sessions = sample_sessions(7);
        save_sessions(&path, &sessions).unwrap();
        let raw = Bytes::from(std::fs::read(&path).unwrap());
        for (i, expect) in sessions.iter().enumerate() {
            let got = read_session_indexed(&raw, i).unwrap().unwrap();
            assert_eq!(&got, expect);
        }
        assert!(read_session_indexed(&raw, 7).unwrap().is_none(), "out of range");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_index_still_salvages_every_record() {
        let path = tmp_path("badindex.tts");
        let sessions = sample_sessions(5);
        save_sessions(&path, &sessions).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        // Flip a bit inside the offset index (first entry).
        raw[V2_HEADER_LEN + 2] ^= 0x40;
        // Fast path refuses...
        let bytes = Bytes::from(raw.clone());
        assert!(indexed_load_bytes(&bytes).is_err());
        // ...but the sequential scan recovers everything, flagging the index.
        let salvage = salvage_bytes(&raw);
        assert_eq!(salvage.report.version, 3);
        assert_eq!(salvage.report.records_valid, 5);
        assert_eq!(salvage.sessions, sessions);
        assert_eq!(salvage.report.damage.len(), 1);
        assert_eq!(salvage.report.damage[0].kind, DamageKind::CorruptIndex);
        // Strict load reports the damage rather than trusting the file;
        // a salvage load recovers everything and keeps the report.
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            load(&path, &LoadOptions::strict()),
            Err(StoreError::BadFormat(_))
        ));
        let out = load(&path, &LoadOptions::salvage()).unwrap();
        assert!(!out.indexed);
        assert_eq!(out.sessions, sessions);
        assert_eq!(out.report.damage[0].kind, DamageKind::CorruptIndex);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_taxi_id_is_rejected_on_encode() {
        let mut s = sample_session();
        s.taxi = TaxiId(TaxiId::MAX_PERSISTABLE + 1);
        let mut buf = BytesMut::new();
        let err = encode_session(&mut buf, &s).unwrap_err();
        assert!(err.to_string().contains("taxi id"), "{err}");
        // The cap itself still round-trips.
        let mut s = sample_session();
        s.taxi = TaxiId(TaxiId::MAX_PERSISTABLE);
        for p in &mut s.points {
            p.taxi = s.taxi;
        }
        buf.clear();
        encode_session(&mut buf, &s).unwrap();
        let mut bytes = buf.freeze();
        assert_eq!(decode_session(&mut bytes).unwrap(), s);
    }

    #[test]
    fn v1_files_still_load() {
        let path = tmp_path("legacy.tts");
        let sessions = sample_sessions(4);
        save_sessions_v1(&path, &sessions).unwrap();
        assert_eq!(load(&path, &LoadOptions::strict()).unwrap().sessions, sessions);
        let salvage = load(&path, &LoadOptions::salvage()).unwrap();
        assert!(salvage.report.is_clean());
        assert_eq!(salvage.report.version, 1);
        assert_eq!(salvage.report.fingerprint, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_round_trips() {
        let path = tmp_path("tagged.tts");
        save_sessions_tagged(&path, &sample_sessions(2), 0xFEED_F00D).unwrap();
        let out = load(&path, &LoadOptions::salvage()).unwrap();
        assert_eq!(out.report.fingerprint, 0xFEED_F00D);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_finite_floats_are_rejected_on_encode() {
        let mut s = sample_session();
        s.total_distance_m = f64::NAN;
        let mut buf = BytesMut::new();
        assert!(matches!(encode_session(&mut buf, &s), Err(StoreError::BadFormat(_))));
        let mut s = sample_session();
        s.points[2].speed_kmh = f64::INFINITY;
        buf.clear();
        assert!(matches!(encode_session(&mut buf, &s), Err(StoreError::BadFormat(_))));
    }

    #[test]
    fn corrupt_count_does_not_overallocate() {
        // A session header declaring u32::MAX points must fail the
        // count-vs-remaining check instead of allocating gigabytes.
        let mut buf = BytesMut::new();
        encode_session(&mut buf, &sample_session()).unwrap();
        let mut raw = buf.to_vec();
        // Point count lives after id(8)+taxi(1)+3×i64(24)+2×f64(16) = 49.
        raw[49..53].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut bytes = Bytes::from(raw);
        let err = decode_session(&mut bytes).unwrap_err();
        assert!(matches!(err, StoreError::BadFormat(_)));
        assert!(err.to_string().contains("point count"), "{err}");
    }

    #[test]
    fn bit_flip_salvages_all_but_one_record() {
        let path = tmp_path("flip.tts");
        let sessions = sample_sessions(8);
        save_sessions(&path, &sessions).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let spans = record_spans(&raw).unwrap();
        assert_eq!(spans.len(), 8);
        // Flip one bit in the middle of record 3's payload.
        let mid = (spans[3].payload_start + spans[3].end) / 2;
        raw[mid] ^= 0x10;
        let salvage = salvage_bytes(&raw);
        assert_eq!(salvage.report.records_valid, 7);
        assert_eq!(salvage.report.damage.len(), 1);
        assert_eq!(salvage.report.damage[0].index, 3);
        assert_eq!(salvage.report.damage[0].kind, DamageKind::CorruptRecord);
        let kept: Vec<_> = salvage.sessions.iter().map(|s| s.id.0).collect();
        assert_eq!(kept, [100, 101, 102, 104, 105, 106, 107]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_salvages_prefix() {
        let path = tmp_path("torn.tts");
        let sessions = sample_sessions(5);
        save_sessions(&path, &sessions).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let spans = record_spans(&raw).unwrap();
        // Chop mid-way through the final record's payload.
        let cut = spans[4].payload_start + (spans[4].end - spans[4].payload_start) / 2;
        let salvage = salvage_bytes(&raw[..cut]);
        assert_eq!(salvage.report.records_valid, 4);
        assert_eq!(salvage.report.damage.len(), 1);
        assert_eq!(salvage.report.damage[0].index, 4);
        assert_eq!(salvage.report.damage[0].kind, DamageKind::TornTail);
        // Strict load refuses the same bytes.
        std::fs::write(&path, &raw[..cut]).unwrap();
        assert!(matches!(
            load(&path, &LoadOptions::strict()),
            Err(StoreError::BadFormat(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_reports_every_lost_record() {
        let path = tmp_path("torn-many.tts");
        let sessions = sample_sessions(6);
        save_sessions(&path, &sessions).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let spans = record_spans(&raw).unwrap();
        // Chop inside record 2: records 2..6 are lost, 4 damage entries.
        let cut = spans[2].payload_start + 3;
        let salvage = salvage_bytes(&raw[..cut]);
        assert_eq!(salvage.report.records_valid, 2);
        assert_eq!(salvage.report.damage.len(), 4);
        for (i, d) in salvage.report.damage.iter().enumerate() {
            assert_eq!(d.kind, DamageKind::TornTail);
            assert_eq!(d.index, 2 + i as u64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_header_is_header_mismatch() {
        let path = tmp_path("garbage.tts");
        save_sessions(&path, &sample_sessions(3)).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[0] = b'X';
        let salvage = salvage_bytes(&raw);
        assert_eq!(salvage.report.records_valid, 0);
        assert_eq!(salvage.report.damage.len(), 1);
        assert_eq!(salvage.report.damage[0].kind, DamageKind::HeaderMismatch);
        // A flipped bit *inside* the v2 header (count field) fails the
        // header CRC rather than being trusted.
        let mut raw2 = std::fs::read(&path).unwrap();
        raw2[16] ^= 0x01;
        let salvage2 = salvage_bytes(&raw2);
        assert_eq!(salvage2.report.damage[0].kind, DamageKind::HeaderMismatch);
        assert!(salvage2.report.damage[0].detail.contains("header CRC"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicated_record_is_flagged_not_fatal() {
        let path = tmp_path("dup.tts");
        let sessions = sample_sessions(3);
        save_sessions(&path, &sessions).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let spans = record_spans(&raw).unwrap();
        // Duplicate record 1 (frame + payload) in place.
        let mut dup = raw[..spans[1].end].to_vec();
        dup.extend_from_slice(&raw[spans[1].frame_start..spans[1].end]);
        dup.extend_from_slice(&raw[spans[1].end..]);
        let salvage = salvage_bytes(&dup);
        // All four physical records decode; the count disagreement is
        // reported as header damage.
        assert_eq!(salvage.report.records_valid, 4);
        assert_eq!(salvage.report.damage.len(), 1);
        assert_eq!(salvage.report.damage[0].kind, DamageKind::HeaderMismatch);
        let ids: Vec<_> = salvage.sessions.iter().map(|s| s.id.0).collect();
        assert_eq!(ids, [100, 101, 101, 102]);
        std::fs::remove_file(&path).ok();
    }

    /// The deprecated `load_sessions*` wrappers must stay behaviourally
    /// identical to [`load`] until the last external caller migrates.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_agree_with_load() {
        let path = tmp_path("wrappers.tts");
        let sessions = sample_sessions(6);
        save_sessions_tagged(&path, &sessions, 0xD00D).unwrap();
        let strict = load(&path, &LoadOptions::strict()).unwrap();
        assert_eq!(load_sessions(&path).unwrap(), strict.sessions);
        assert_eq!(load_sessions_stats(&path).unwrap(), (strict.sessions.clone(), strict.indexed));
        let salv = load(&path, &LoadOptions::salvage()).unwrap();
        let wrapped = load_sessions_salvage(&path).unwrap();
        assert_eq!(wrapped.sessions, salv.sessions);
        assert_eq!(wrapped.report, salv.report);
        let (wrapped2, indexed) = load_sessions_salvage_stats(&path).unwrap();
        assert_eq!(wrapped2.report, salv.report);
        assert_eq!(indexed, salv.indexed);
        let raw = Bytes::from(std::fs::read(&path).unwrap());
        let via_wrapper = load_sessions_indexed_bytes(&raw).unwrap().unwrap();
        assert_eq!(via_wrapper.sessions, strict.sessions);
        // Damaged file: strict wrapper and strict load fail identically.
        let mut dmg = std::fs::read(&path).unwrap();
        let spans = record_spans(&dmg).unwrap();
        dmg[(spans[2].payload_start + spans[2].end) / 2] ^= 0x08;
        std::fs::write(&path, &dmg).unwrap();
        let e1 = load(&path, &LoadOptions::strict()).unwrap_err().to_string();
        let e2 = load_sessions(&path).unwrap_err().to_string();
        assert_eq!(e1, e2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_torn_tail_salvages_prefix() {
        let path = tmp_path("torn-v1.tts");
        let sessions = sample_sessions(4);
        save_sessions_v1(&path, &sessions).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let salvage = salvage_bytes(&raw[..raw.len() - 7]);
        assert_eq!(salvage.report.version, 1);
        assert_eq!(salvage.report.records_valid, 3);
        assert!(salvage
            .report
            .damage
            .iter()
            .all(|d| d.kind == DamageKind::TornTail));
        std::fs::remove_file(&path).ok();
    }
}
