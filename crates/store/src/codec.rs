//! Versioned binary file format for trip data.
//!
//! Two container versions exist. **v1** (`b"TTRS\x00\x00\x00\x01"`) is a
//! magic, a session count, then each session length-prefixed — no
//! checksums, accepted read-only for files written by older builds.
//! **v2** (`b"TTRS\x00\x00\x00\x02"`), the only format written today, adds
//! a self-describing header and per-record CRC framing:
//!
//! ```text
//! magic         8 bytes  b"TTRS\x00\x00\x00\x02"
//! fingerprint   u64      config fingerprint (0 = untagged)
//! record count  u64
//! header crc    u32      CRC-32 of the 24 header bytes above
//! per record:
//!   len         u64      payload length in bytes
//!   crc         u32      CRC-32 of the payload
//!   payload     len bytes (one session in the wire format below)
//! ```
//!
//! All integers little-endian; floats as IEEE-754 bits. The format is
//! hand-rolled (rather than `serde_json` etc.) because a simulated year is
//! ~10⁶ route points and the store is reloaded repeatedly while iterating
//! on analyses. The length+CRC framing buys torn-write *salvage*: a
//! flipped bit fails one record's checksum and a truncated tail fails the
//! length check, so [`load_sessions_salvage`] recovers every record that
//! still verifies instead of aborting the run (see [`SalvageReport`]).
//! Writes are atomic everywhere via [`crate::integrity::write_atomic`].

use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use taxitrace_geo::{GeoPoint, Point};
use taxitrace_roadnet::{ElementId, NodeId};
use taxitrace_timebase::{Duration, Timestamp};
use taxitrace_traces::{
    CustomerTripTruth, PointTruth, RawTrip, RecordSpan, RoutePoint, TaxiId, TripId,
};

use crate::integrity::{crc32, write_atomic};
use crate::StoreError;

/// Magic prefix of legacy v1 store files (read-only support).
pub const MAGIC_V1: [u8; 8] = *b"TTRS\x00\x00\x00\x01";
/// Magic prefix of v2 store files (the format written today).
pub const MAGIC_V2: [u8; 8] = *b"TTRS\x00\x00\x00\x02";

/// v2 header size: magic + fingerprint + record count + header CRC.
const V2_HEADER_LEN: usize = 8 + 8 + 8 + 4;
/// v2 per-record frame: payload length + payload CRC.
const V2_FRAME_LEN: usize = 8 + 4;
/// v1 per-record frame: payload length only.
const V1_FRAME_LEN: usize = 8;
/// Cap on individually reported torn-tail records; a torn tail that loses
/// more is summarised in the final damage entry so a corrupt header count
/// cannot balloon the report.
const MAX_TORN_DAMAGE: u64 = 4096;

/// What went wrong with one damaged record (or the file header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DamageKind {
    /// The record's framing was intact but its payload failed the CRC or
    /// did not decode; the record was skipped and reading continued.
    CorruptRecord,
    /// The file ended mid-record (truncation / torn write); everything
    /// from this record to the declared end is lost.
    TornTail,
    /// The header is unusable (bad magic, failed header CRC) or disagrees
    /// with the file body (declared count vs. records present).
    HeaderMismatch,
}

impl DamageKind {
    /// Stable lowercase label (quarantine reasons, fsck output, metrics).
    pub fn label(self) -> &'static str {
        match self {
            DamageKind::CorruptRecord => "corrupt_record",
            DamageKind::TornTail => "torn_tail",
            DamageKind::HeaderMismatch => "header_mismatch",
        }
    }
}

/// One damaged record (or header problem) found while reading a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordDamage {
    /// Zero-based record index the damage was found at. For header-level
    /// damage this is the index reading stopped at (0 for a bad magic).
    pub index: u64,
    /// Classification of the damage.
    pub kind: DamageKind,
    /// Human-readable specifics for the quarantine ledger / fsck report.
    pub detail: String,
}

/// Integrity summary of one store file: what the header claims, what was
/// actually recovered, and every piece of damage encountered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// Container version (1 or 2; 0 when the magic was unrecognised).
    pub version: u32,
    /// Config fingerprint from the header (0 for v1 / untagged files).
    pub fingerprint: u64,
    /// Record count the header declares.
    pub records_declared: u64,
    /// Records that verified and decoded.
    pub records_valid: u64,
    /// Damage entries in file order; empty means the file is clean.
    pub damage: Vec<RecordDamage>,
}

impl SalvageReport {
    /// True when every declared record verified and nothing else was wrong.
    pub fn is_clean(&self) -> bool {
        self.damage.is_empty()
    }
}

/// Result of a salvage read: every recoverable session plus the report.
#[derive(Debug, Clone)]
pub struct Salvage {
    /// Sessions that verified and decoded, in file order.
    pub sessions: Vec<RawTrip>,
    /// Per-file integrity report.
    pub report: SalvageReport,
}

/// Writes sessions to `path` as an untagged v2 container (fingerprint 0).
pub fn save_sessions(path: &Path, sessions: &[RawTrip]) -> Result<(), StoreError> {
    save_sessions_tagged(path, sessions, 0)
}

/// Writes sessions to `path` as a v2 container stamped with the given
/// config fingerprint. The write is atomic: temp file + fsync + rename.
pub fn save_sessions_tagged(
    path: &Path,
    sessions: &[RawTrip],
    fingerprint: u64,
) -> Result<(), StoreError> {
    let count = checked_u64(sessions.len(), "session count")?;
    let mut out = BytesMut::new();
    out.put_slice(&MAGIC_V2);
    out.put_u64_le(fingerprint);
    out.put_u64_le(count);
    let header_crc = crc32(&out);
    out.put_u32_le(header_crc);
    let mut buf = BytesMut::new();
    for s in sessions {
        buf.clear();
        encode_session(&mut buf, s)?;
        out.put_u64_le(checked_u64(buf.len(), "session record length")?);
        out.put_u32_le(crc32(&buf));
        out.put_slice(&buf);
    }
    write_atomic(path, &out)?;
    Ok(())
}

/// Writes sessions in the legacy v1 layout (no checksums). Kept for
/// compatibility fixtures and migration tests — new data should always go
/// through [`save_sessions`]. Still published atomically.
pub fn save_sessions_v1(path: &Path, sessions: &[RawTrip]) -> Result<(), StoreError> {
    let mut out = BytesMut::new();
    out.put_slice(&MAGIC_V1);
    out.put_u64_le(checked_u64(sessions.len(), "session count")?);
    let mut buf = BytesMut::new();
    for s in sessions {
        buf.clear();
        encode_session(&mut buf, s)?;
        out.put_u64_le(checked_u64(buf.len(), "session record length")?);
        out.put_slice(&buf);
    }
    write_atomic(path, &out)?;
    Ok(())
}

/// Reads sessions from `path`, accepting v1 and v2 containers. Strict:
/// any damage — CRC mismatch, truncation, header disagreement — is a
/// [`StoreError::BadFormat`]. Use [`load_sessions_salvage`] to recover
/// the verifiable records from a damaged file instead.
pub fn load_sessions(path: &Path) -> Result<Vec<RawTrip>, StoreError> {
    let salvage = load_sessions_salvage(path)?;
    match salvage.report.damage.first() {
        None => Ok(salvage.sessions),
        Some(d) => Err(StoreError::BadFormat(format!(
            "{} at record {}: {}",
            d.kind.label(),
            d.index,
            d.detail
        ))),
    }
}

/// Reads sessions from `path`, recovering every record that verifies and
/// reporting the rest as typed damage. Never fails on corrupt *content* —
/// only on I/O errors reading the file. The worst case (unrecognised
/// magic, failed header CRC) yields zero sessions and one
/// [`DamageKind::HeaderMismatch`] entry.
pub fn load_sessions_salvage(path: &Path) -> Result<Salvage, StoreError> {
    let raw = std::fs::read(path)?;
    Ok(salvage_bytes(&raw))
}

/// [`load_sessions_salvage`] over an in-memory image (fsck, tests).
pub fn salvage_bytes(raw: &[u8]) -> Salvage {
    let mut report = SalvageReport {
        version: 0,
        fingerprint: 0,
        records_declared: 0,
        records_valid: 0,
        damage: Vec::new(),
    };
    let header = match parse_header(raw, &mut report) {
        Some(h) => h,
        None => return Salvage { sessions: Vec::new(), report },
    };
    let sessions = salvage_records(raw, header, &mut report);
    report.records_valid = sessions.len() as u64;
    Salvage { sessions, report }
}

/// Byte extents of each framed record in a store image (frame and
/// payload offsets; see [`taxitrace_traces::RecordSpan`]). Fails on an
/// unreadable header; used by the on-disk chaos injector to aim bit
/// flips at record payloads and duplicate whole frames deterministically.
pub fn record_spans(raw: &[u8]) -> Result<Vec<RecordSpan>, StoreError> {
    let mut report = SalvageReport {
        version: 0,
        fingerprint: 0,
        records_declared: 0,
        records_valid: 0,
        damage: Vec::new(),
    };
    let header = parse_header(raw, &mut report)
        .ok_or_else(|| StoreError::BadFormat("unreadable store header".into()))?;
    let frame = if header.version == 2 { V2_FRAME_LEN } else { V1_FRAME_LEN };
    let mut spans = Vec::new();
    let mut offset = header.body_start;
    while raw.len() - offset >= frame {
        let len = read_u64_at(raw, offset);
        let payload_at = offset + frame;
        let Some(end) = payload_end(payload_at, len, raw.len()) else { break };
        spans.push(RecordSpan { frame_start: offset, payload_start: payload_at, end });
        offset = end;
    }
    Ok(spans)
}

/// Parsed, verified container header.
struct Header {
    version: u32,
    declared: u64,
    body_start: usize,
}

fn parse_header(raw: &[u8], report: &mut SalvageReport) -> Option<Header> {
    if raw.len() < 8 {
        report.damage.push(RecordDamage {
            index: 0,
            kind: DamageKind::HeaderMismatch,
            detail: format!("file too short for magic ({} bytes)", raw.len()),
        });
        return None;
    }
    let magic = &raw[..8];
    if magic == MAGIC_V2 {
        if raw.len() < V2_HEADER_LEN {
            report.version = 2;
            report.damage.push(RecordDamage {
                index: 0,
                kind: DamageKind::HeaderMismatch,
                detail: format!("file too short for v2 header ({} bytes)", raw.len()),
            });
            return None;
        }
        report.version = 2;
        let stored = u32::from_le_bytes([raw[24], raw[25], raw[26], raw[27]]);
        let actual = crc32(&raw[..24]);
        if stored != actual {
            report.damage.push(RecordDamage {
                index: 0,
                kind: DamageKind::HeaderMismatch,
                detail: format!("header CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"),
            });
            return None;
        }
        report.fingerprint = read_u64_at(raw, 8);
        report.records_declared = read_u64_at(raw, 16);
        Some(Header { version: 2, declared: report.records_declared, body_start: V2_HEADER_LEN })
    } else if magic == MAGIC_V1 {
        report.version = 1;
        if raw.len() < 16 {
            report.damage.push(RecordDamage {
                index: 0,
                kind: DamageKind::HeaderMismatch,
                detail: format!("file too short for v1 header ({} bytes)", raw.len()),
            });
            return None;
        }
        report.records_declared = read_u64_at(raw, 8);
        Some(Header { version: 1, declared: report.records_declared, body_start: 16 })
    } else {
        report.damage.push(RecordDamage {
            index: 0,
            kind: DamageKind::HeaderMismatch,
            detail: "magic mismatch".into(),
        });
        None
    }
}

/// Walks the record frames from `body_start`, decoding every record that
/// verifies and classifying the rest. Reading continues past a corrupt
/// record (its frame still delimits it) and stops only at a torn tail,
/// where the frame itself can no longer be trusted.
fn salvage_records(raw: &[u8], header: Header, report: &mut SalvageReport) -> Vec<RawTrip> {
    let frame = if header.version == 2 { V2_FRAME_LEN } else { V1_FRAME_LEN };
    let mut sessions = Vec::with_capacity(header.declared.min(1 << 20) as usize);
    let mut offset = header.body_start;
    let mut index: u64 = 0;
    let mut torn: Option<String> = None;
    // v1 readers always ignored bytes past the declared count (there is
    // no trailing-content check to preserve), so only v2 reads on.
    while offset < raw.len() && (header.version == 2 || index < header.declared) {
        let remaining = raw.len() - offset;
        if remaining < frame {
            torn = Some(format!("{remaining} bytes left, record frame needs {frame}"));
            break;
        }
        let len = read_u64_at(raw, offset);
        let payload_at = offset + frame;
        let Some(end) = payload_end(payload_at, len, raw.len()) else {
            torn = Some(format!(
                "record claims {len} bytes, only {} remain",
                raw.len() - payload_at
            ));
            break;
        };
        let payload = &raw[payload_at..end];
        if header.version == 2 {
            let stored = u32::from_le_bytes([
                raw[offset + 8],
                raw[offset + 9],
                raw[offset + 10],
                raw[offset + 11],
            ]);
            let actual = crc32(payload);
            if stored != actual {
                report.damage.push(RecordDamage {
                    index,
                    kind: DamageKind::CorruptRecord,
                    detail: format!(
                        "payload CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"
                    ),
                });
                offset = end;
                index += 1;
                continue;
            }
        }
        let mut bytes = Bytes::copy_from_slice(payload);
        match decode_session(&mut bytes) {
            Ok(s) if header.version == 1 || bytes.remaining() == 0 => sessions.push(s),
            Ok(_) => report.damage.push(RecordDamage {
                index,
                kind: DamageKind::CorruptRecord,
                detail: format!("{} undecoded payload bytes", bytes.remaining()),
            }),
            Err(e) => report.damage.push(RecordDamage {
                index,
                kind: DamageKind::CorruptRecord,
                detail: format!("payload does not decode: {e}"),
            }),
        }
        offset = end;
        index += 1;
    }
    if let Some(detail) = torn {
        push_torn_tail(report, index, header.declared, &detail);
    } else if index < header.declared {
        // The file ends cleanly on a record boundary but short of the
        // declared count — a truncation that happened to land between
        // records is still a torn tail.
        push_torn_tail(report, index, header.declared, "file ends before declared count");
    } else if index > header.declared {
        // v2-only by construction of the loop bound: the CRC-protected
        // header disagrees with the body, which gained whole records
        // (e.g. a duplicated record).
        report.damage.push(RecordDamage {
            index,
            kind: DamageKind::HeaderMismatch,
            detail: format!(
                "header declares {} records, file holds {index}",
                header.declared
            ),
        });
    }
    sessions
}

/// Reports every record from `index` to the declared end as lost (capped
/// at [`MAX_TORN_DAMAGE`] entries so a corrupt count cannot balloon the
/// report), keeping the quarantine ledger 1:1 with lost records.
fn push_torn_tail(report: &mut SalvageReport, index: u64, declared: u64, detail: &str) {
    let lost = declared.saturating_sub(index).max(1);
    let reported = lost.min(MAX_TORN_DAMAGE);
    for i in 0..reported {
        let last = i + 1 == reported;
        report.damage.push(RecordDamage {
            index: index + i,
            kind: DamageKind::TornTail,
            detail: if i == 0 {
                format!("torn tail: {detail}")
            } else if last && lost > reported {
                format!("lost in torn tail (+{} more records)", lost - reported)
            } else {
                "lost in torn tail".into()
            },
        });
    }
}

fn read_u64_at(raw: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&raw[at..at + 8]);
    u64::from_le_bytes(b)
}

/// End offset of a payload of `len` bytes starting at `payload_at`, or
/// `None` when the declared length overruns the file (so a corrupt length
/// can never trigger an allocation beyond the file size).
fn payload_end(payload_at: usize, len: u64, file_len: usize) -> Option<usize> {
    let len = usize::try_from(len).ok()?;
    let end = payload_at.checked_add(len)?;
    (end <= file_len).then_some(end)
}

fn checked_u64(n: usize, what: &str) -> Result<u64, StoreError> {
    u64::try_from(n).map_err(|_| StoreError::BadFormat(format!("{what} {n} exceeds u64")))
}

fn checked_u32(n: usize, what: &str) -> Result<u32, StoreError> {
    u32::try_from(n).map_err(|_| StoreError::BadFormat(format!("{what} {n} exceeds u32")))
}

fn finite(v: f64, what: &str) -> Result<f64, StoreError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(StoreError::BadFormat(format!("non-finite {what}: {v}")))
    }
}

/// Encodes one session in the store's wire format (exposed so stage
/// checkpoints can embed session payloads; see `checkpoint`). Rejects
/// non-finite floats and counts that overflow their wire width rather
/// than writing a record that cannot round-trip.
pub fn encode_session(buf: &mut BytesMut, s: &RawTrip) -> Result<(), StoreError> {
    buf.put_u64_le(s.id.0);
    buf.put_u8(s.taxi.0);
    buf.put_i64_le(s.start_time.secs());
    buf.put_i64_le(s.end_time.secs());
    buf.put_i64_le(s.total_time.secs());
    buf.put_f64_le(finite(s.total_distance_m, "total_distance_m")?);
    buf.put_f64_le(finite(s.total_fuel_ml, "total_fuel_ml")?);
    buf.put_u32_le(checked_u32(s.points.len(), "point count")?);
    for p in &s.points {
        encode_point(buf, p)?;
    }
    buf.put_u32_le(checked_u32(s.truth_trips.len(), "truth trip count")?);
    for t in &s.truth_trips {
        encode_truth(buf, t)?;
    }
    Ok(())
}

/// Encodes one route point (wire primitive for stage checkpoints).
pub fn encode_point(buf: &mut BytesMut, p: &RoutePoint) -> Result<(), StoreError> {
    buf.put_u64_le(p.point_id);
    buf.put_f64_le(finite(p.geo.lon, "geo.lon")?);
    buf.put_f64_le(finite(p.geo.lat, "geo.lat")?);
    buf.put_f64_le(finite(p.pos.x, "pos.x")?);
    buf.put_f64_le(finite(p.pos.y, "pos.y")?);
    buf.put_i64_le(p.timestamp.secs());
    buf.put_f64_le(finite(p.speed_kmh, "speed_kmh")?);
    buf.put_f64_le(finite(p.heading_deg, "heading_deg")?);
    buf.put_f64_le(finite(p.fuel_ml, "fuel_ml")?);
    buf.put_u32_le(p.truth.seq);
    match p.truth.element {
        Some(e) => {
            buf.put_u8(1);
            buf.put_u64_le(e.0);
        }
        None => buf.put_u8(0),
    }
    Ok(())
}

fn encode_truth(buf: &mut BytesMut, t: &CustomerTripTruth) -> Result<(), StoreError> {
    buf.put_u32_le(t.start_seq);
    buf.put_u32_le(t.end_seq);
    buf.put_u32_le(t.origin.0);
    buf.put_u32_le(t.destination.0);
    buf.put_u32_le(checked_u32(t.elements.len(), "truth element count")?);
    for e in &t.elements {
        buf.put_u64_le(e.0);
    }
    match &t.od_pair {
        Some((a, b)) => {
            buf.put_u8(1);
            put_str(buf, a)?;
            put_str(buf, b)?;
        }
        None => buf.put_u8(0),
    }
    Ok(())
}

/// Writes a u16-length-prefixed UTF-8 string (wire primitive). Fails on
/// strings longer than the u16 width can frame.
pub fn put_str(buf: &mut BytesMut, s: &str) -> Result<(), StoreError> {
    let len = u16::try_from(s.len())
        .map_err(|_| StoreError::BadFormat(format!("string length {} exceeds u16", s.len())))?;
    buf.put_u16_le(len);
    buf.put_slice(s.as_bytes());
    Ok(())
}

/// Decodes one session from the store's wire format.
pub fn decode_session(b: &mut Bytes) -> Result<RawTrip, StoreError> {
    let id = TripId(take_u64(b)?);
    let taxi = TaxiId(take_u8(b)?);
    let start_time = Timestamp::from_secs(take_i64(b)?);
    let end_time = Timestamp::from_secs(take_i64(b)?);
    let total_time = Duration::from_secs(take_i64(b)?);
    let total_distance_m = take_f64(b)?;
    let total_fuel_ml = take_f64(b)?;
    let np = take_count(b, 77, "point count")?;
    let mut points = Vec::with_capacity(np);
    for _ in 0..np {
        points.push(decode_point(b, id, taxi)?);
    }
    let nt = take_count(b, 21, "truth trip count")?;
    let mut truth_trips = Vec::with_capacity(nt);
    for _ in 0..nt {
        truth_trips.push(decode_truth(b)?);
    }
    Ok(RawTrip {
        id,
        taxi,
        start_time,
        end_time,
        points,
        total_time,
        total_distance_m,
        total_fuel_ml,
        truth_trips,
    })
}

/// Reads a u32 element count and validates it against the bytes that
/// remain, given a minimum encoded size per element — a corrupt count can
/// therefore never drive an allocation past the record it came from.
fn take_count(b: &mut Bytes, min_elem_size: usize, what: &str) -> Result<usize, StoreError> {
    let n = take_u32(b)? as usize;
    if n.saturating_mul(min_elem_size) > b.remaining() {
        return Err(StoreError::BadFormat(format!(
            "{what} {n} exceeds remaining {} bytes",
            b.remaining()
        )));
    }
    Ok(n)
}

/// Decodes one route point; `trip_id`/`taxi` come from the enclosing
/// record (points do not repeat them on the wire).
pub fn decode_point(b: &mut Bytes, trip_id: TripId, taxi: TaxiId) -> Result<RoutePoint, StoreError> {
    Ok(RoutePoint {
        point_id: take_u64(b)?,
        trip_id,
        taxi,
        geo: GeoPoint::new(take_f64(b)?, take_f64(b)?),
        pos: Point::new(take_f64(b)?, take_f64(b)?),
        timestamp: Timestamp::from_secs(take_i64(b)?),
        speed_kmh: take_f64(b)?,
        heading_deg: take_f64(b)?,
        fuel_ml: take_f64(b)?,
        truth: PointTruth {
            seq: take_u32(b)?,
            element: if take_u8(b)? == 1 { Some(ElementId(take_u64(b)?)) } else { None },
        },
    })
}

fn decode_truth(b: &mut Bytes) -> Result<CustomerTripTruth, StoreError> {
    let start_seq = take_u32(b)?;
    let end_seq = take_u32(b)?;
    let origin = NodeId(take_u32(b)?);
    let destination = NodeId(take_u32(b)?);
    let ne = take_count(b, 8, "truth element count")?;
    let mut elements = Vec::with_capacity(ne);
    for _ in 0..ne {
        elements.push(ElementId(take_u64(b)?));
    }
    let od_pair = if take_u8(b)? == 1 {
        let a = take_str(b)?;
        let bb = take_str(b)?;
        Some((a, bb))
    } else {
        None
    };
    Ok(CustomerTripTruth { start_seq, end_seq, origin, destination, elements, od_pair })
}

macro_rules! take_impl {
    ($name:ident, $ty:ty, $get:ident, $size:expr) => {
        /// Truncation-checked scalar read (wire primitive).
        pub fn $name(b: &mut Bytes) -> Result<$ty, StoreError> {
            if b.remaining() < $size {
                return Err(StoreError::BadFormat(concat!("truncated ", stringify!($ty)).into()));
            }
            Ok(b.$get())
        }
    };
}

take_impl!(take_u64, u64, get_u64_le, 8);
take_impl!(take_i64, i64, get_i64_le, 8);
take_impl!(take_f64, f64, get_f64_le, 8);
take_impl!(take_u32, u32, get_u32_le, 4);
take_impl!(take_u8, u8, get_u8, 1);

/// Reads a u16-length-prefixed UTF-8 string (wire primitive).
pub fn take_str(b: &mut Bytes) -> Result<String, StoreError> {
    if b.remaining() < 2 {
        return Err(StoreError::BadFormat("truncated string length".into()));
    }
    let len = b.get_u16_le() as usize;
    if b.remaining() < len {
        return Err(StoreError::BadFormat("truncated string body".into()));
    }
    let raw = b.split_to(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| StoreError::BadFormat("invalid utf-8 in string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_session() -> RawTrip {
        let mk = |i: u32| RoutePoint {
            point_id: i as u64,
            trip_id: TripId(9),
            taxi: TaxiId(3),
            geo: GeoPoint::new(25.4 + i as f64 * 0.001, 65.0),
            pos: Point::new(i as f64 * 10.0, -5.0),
            timestamp: Timestamp::from_secs(1000 + i as i64 * 15),
            speed_kmh: 20.0 + i as f64,
            heading_deg: 90.0,
            fuel_ml: i as f64 * 2.0,
            truth: PointTruth {
                seq: i,
                element: if i.is_multiple_of(2) { Some(ElementId(121_000 + i as u64)) } else { None },
            },
        };
        RawTrip {
            id: TripId(9),
            taxi: TaxiId(3),
            start_time: Timestamp::from_secs(1000),
            end_time: Timestamp::from_secs(1100),
            points: (0..6).map(mk).collect(),
            total_time: Duration::from_secs(100),
            total_distance_m: 60.0,
            total_fuel_ml: 11.5,
            truth_trips: vec![CustomerTripTruth {
                start_seq: 0,
                end_seq: 5,
                origin: NodeId(1),
                destination: NodeId(4),
                elements: vec![ElementId(121_000), ElementId(121_001)],
                od_pair: Some(("T".into(), "S".into())),
            }],
        }
    }

    fn sample_sessions(n: u64) -> Vec<RawTrip> {
        (0..n)
            .map(|i| {
                let mut s = sample_session();
                s.id = TripId(100 + i);
                for p in &mut s.points {
                    p.trip_id = s.id;
                }
                s
            })
            .collect()
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("taxitrace_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_in_memory() {
        let s = sample_session();
        let mut buf = BytesMut::new();
        encode_session(&mut buf, &s).unwrap();
        let mut bytes = buf.freeze();
        let back = decode_session(&mut bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(bytes.remaining(), 0, "no trailing bytes");
    }

    #[test]
    fn truncation_is_detected() {
        let s = sample_session();
        let mut buf = BytesMut::new();
        encode_session(&mut buf, &s).unwrap();
        for cut in [1usize, 8, 20, buf.len() / 2, buf.len() - 1] {
            let mut bytes = Bytes::copy_from_slice(&buf[..cut]);
            assert!(
                decode_session(&mut bytes).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn file_round_trip_many_sessions() {
        let path = tmp_path("many.tts");
        let sessions = sample_sessions(10);
        save_sessions(&path, &sessions).unwrap();
        let loaded = load_sessions(&path).unwrap();
        assert_eq!(loaded, sessions);
        // A clean file salvages to the same content with a clean report.
        let salvage = load_sessions_salvage(&path).unwrap();
        assert!(salvage.report.is_clean());
        assert_eq!(salvage.report.version, 2);
        assert_eq!(salvage.report.records_declared, 10);
        assert_eq!(salvage.report.records_valid, 10);
        assert_eq!(salvage.sessions, sessions);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_files_still_load() {
        let path = tmp_path("legacy.tts");
        let sessions = sample_sessions(4);
        save_sessions_v1(&path, &sessions).unwrap();
        assert_eq!(load_sessions(&path).unwrap(), sessions);
        let salvage = load_sessions_salvage(&path).unwrap();
        assert!(salvage.report.is_clean());
        assert_eq!(salvage.report.version, 1);
        assert_eq!(salvage.report.fingerprint, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_round_trips() {
        let path = tmp_path("tagged.tts");
        save_sessions_tagged(&path, &sample_sessions(2), 0xFEED_F00D).unwrap();
        let salvage = load_sessions_salvage(&path).unwrap();
        assert_eq!(salvage.report.fingerprint, 0xFEED_F00D);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_finite_floats_are_rejected_on_encode() {
        let mut s = sample_session();
        s.total_distance_m = f64::NAN;
        let mut buf = BytesMut::new();
        assert!(matches!(encode_session(&mut buf, &s), Err(StoreError::BadFormat(_))));
        let mut s = sample_session();
        s.points[2].speed_kmh = f64::INFINITY;
        buf.clear();
        assert!(matches!(encode_session(&mut buf, &s), Err(StoreError::BadFormat(_))));
    }

    #[test]
    fn corrupt_count_does_not_overallocate() {
        // A session header declaring u32::MAX points must fail the
        // count-vs-remaining check instead of allocating gigabytes.
        let mut buf = BytesMut::new();
        encode_session(&mut buf, &sample_session()).unwrap();
        let mut raw = buf.to_vec();
        // Point count lives after id(8)+taxi(1)+3×i64(24)+2×f64(16) = 49.
        raw[49..53].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut bytes = Bytes::from(raw);
        let err = decode_session(&mut bytes).unwrap_err();
        assert!(matches!(err, StoreError::BadFormat(_)));
        assert!(err.to_string().contains("point count"), "{err}");
    }

    #[test]
    fn bit_flip_salvages_all_but_one_record() {
        let path = tmp_path("flip.tts");
        let sessions = sample_sessions(8);
        save_sessions(&path, &sessions).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let spans = record_spans(&raw).unwrap();
        assert_eq!(spans.len(), 8);
        // Flip one bit in the middle of record 3's payload.
        let mid = (spans[3].payload_start + spans[3].end) / 2;
        raw[mid] ^= 0x10;
        let salvage = salvage_bytes(&raw);
        assert_eq!(salvage.report.records_valid, 7);
        assert_eq!(salvage.report.damage.len(), 1);
        assert_eq!(salvage.report.damage[0].index, 3);
        assert_eq!(salvage.report.damage[0].kind, DamageKind::CorruptRecord);
        let kept: Vec<_> = salvage.sessions.iter().map(|s| s.id.0).collect();
        assert_eq!(kept, [100, 101, 102, 104, 105, 106, 107]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_salvages_prefix() {
        let path = tmp_path("torn.tts");
        let sessions = sample_sessions(5);
        save_sessions(&path, &sessions).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let spans = record_spans(&raw).unwrap();
        // Chop mid-way through the final record's payload.
        let cut = spans[4].payload_start + (spans[4].end - spans[4].payload_start) / 2;
        let salvage = salvage_bytes(&raw[..cut]);
        assert_eq!(salvage.report.records_valid, 4);
        assert_eq!(salvage.report.damage.len(), 1);
        assert_eq!(salvage.report.damage[0].index, 4);
        assert_eq!(salvage.report.damage[0].kind, DamageKind::TornTail);
        // Strict load refuses the same bytes.
        std::fs::write(&path, &raw[..cut]).unwrap();
        assert!(matches!(load_sessions(&path), Err(StoreError::BadFormat(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_reports_every_lost_record() {
        let path = tmp_path("torn-many.tts");
        let sessions = sample_sessions(6);
        save_sessions(&path, &sessions).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let spans = record_spans(&raw).unwrap();
        // Chop inside record 2: records 2..6 are lost, 4 damage entries.
        let cut = spans[2].payload_start + 3;
        let salvage = salvage_bytes(&raw[..cut]);
        assert_eq!(salvage.report.records_valid, 2);
        assert_eq!(salvage.report.damage.len(), 4);
        for (i, d) in salvage.report.damage.iter().enumerate() {
            assert_eq!(d.kind, DamageKind::TornTail);
            assert_eq!(d.index, 2 + i as u64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_header_is_header_mismatch() {
        let path = tmp_path("garbage.tts");
        save_sessions(&path, &sample_sessions(3)).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[0] = b'X';
        let salvage = salvage_bytes(&raw);
        assert_eq!(salvage.report.records_valid, 0);
        assert_eq!(salvage.report.damage.len(), 1);
        assert_eq!(salvage.report.damage[0].kind, DamageKind::HeaderMismatch);
        // A flipped bit *inside* the v2 header (count field) fails the
        // header CRC rather than being trusted.
        let mut raw2 = std::fs::read(&path).unwrap();
        raw2[16] ^= 0x01;
        let salvage2 = salvage_bytes(&raw2);
        assert_eq!(salvage2.report.damage[0].kind, DamageKind::HeaderMismatch);
        assert!(salvage2.report.damage[0].detail.contains("header CRC"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicated_record_is_flagged_not_fatal() {
        let path = tmp_path("dup.tts");
        let sessions = sample_sessions(3);
        save_sessions(&path, &sessions).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let spans = record_spans(&raw).unwrap();
        // Duplicate record 1 (frame + payload) in place.
        let mut dup = raw[..spans[1].end].to_vec();
        dup.extend_from_slice(&raw[spans[1].frame_start..spans[1].end]);
        dup.extend_from_slice(&raw[spans[1].end..]);
        let salvage = salvage_bytes(&dup);
        // All four physical records decode; the count disagreement is
        // reported as header damage.
        assert_eq!(salvage.report.records_valid, 4);
        assert_eq!(salvage.report.damage.len(), 1);
        assert_eq!(salvage.report.damage[0].kind, DamageKind::HeaderMismatch);
        let ids: Vec<_> = salvage.sessions.iter().map(|s| s.id.0).collect();
        assert_eq!(ids, [100, 101, 101, 102]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_torn_tail_salvages_prefix() {
        let path = tmp_path("torn-v1.tts");
        let sessions = sample_sessions(4);
        save_sessions_v1(&path, &sessions).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let salvage = salvage_bytes(&raw[..raw.len() - 7]);
        assert_eq!(salvage.report.version, 1);
        assert_eq!(salvage.report.records_valid, 3);
        assert!(salvage
            .report
            .damage
            .iter()
            .all(|d| d.kind == DamageKind::TornTail));
        std::fs::remove_file(&path).ok();
    }
}
