//! Stage checkpoint container: named binary sections behind a magic and a
//! config fingerprint.
//!
//! The staged pipeline persists one checkpoint file per completed stage so
//! a killed run can resume from the last stage boundary instead of
//! recomputing a simulated year. The container is deliberately dumb: it
//! knows nothing about stage payloads, only about framing them. Stages
//! encode their own sections with the [`crate::codec`] wire primitives,
//! which keeps resume byte-identical — the same encoder produces the same
//! bytes whether a stage ran live or was reloaded.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            8 bytes  b"TTCK\x00\x00\x00\x01"
//! fingerprint      u64      caller-supplied config fingerprint
//! section count    u64
//! per section:
//!   name           u16 length + UTF-8 bytes
//!   payload        u64 length + bytes
//! ```
//!
//! Writes go to a `.tmp` sibling and are published with an atomic rename,
//! so a kill mid-write leaves either the previous checkpoint or none — a
//! torn file can never be observed under the final name.

use std::fs;
use std::io::{BufWriter, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::{put_str, take_str, take_u64};
use crate::StoreError;

/// Magic prefix of every checkpoint file (version 1).
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"TTCK\x00\x00\x00\x01";

/// A loaded checkpoint: the fingerprint it was written under plus its
/// named payload sections, in file order.
#[derive(Debug, Clone)]
pub struct CheckpointFile {
    /// Fingerprint of the configuration that produced this checkpoint.
    /// Resume must refuse a checkpoint whose fingerprint does not match
    /// the current configuration.
    pub fingerprint: u64,
    sections: Vec<(String, Bytes)>,
}

impl CheckpointFile {
    /// Returns the payload of the named section, if present.
    pub fn section(&self, name: &str) -> Option<&Bytes> {
        self.sections.iter().find(|(n, _)| n == name).map(|(_, b)| b)
    }

    /// Section names in file order (useful for diagnostics).
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }
}

/// Writes a checkpoint atomically: encode to `<path>.tmp`, fsync-free
/// buffered write, then rename over `path`.
pub fn save_checkpoint(
    path: &Path,
    fingerprint: u64,
    sections: &[(&str, &[u8])],
) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut w = BufWriter::new(fs::File::create(&tmp)?);
        w.write_all(&CHECKPOINT_MAGIC)?;
        w.write_all(&fingerprint.to_le_bytes())?;
        w.write_all(&(sections.len() as u64).to_le_bytes())?;
        let mut head = BytesMut::new();
        for (name, payload) in sections {
            head.clear();
            put_str(&mut head, name);
            head.put_u64_le(payload.len() as u64);
            w.write_all(&head)?;
            w.write_all(payload)?;
        }
        w.flush()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and validates a checkpoint written by [`save_checkpoint`].
pub fn load_checkpoint(path: &Path) -> Result<CheckpointFile, StoreError> {
    let raw = fs::read(path)?;
    let mut b = Bytes::from(raw);
    if b.remaining() < CHECKPOINT_MAGIC.len() {
        return Err(StoreError::BadFormat("file too short for magic".into()));
    }
    let magic = b.split_to(CHECKPOINT_MAGIC.len());
    if magic.as_ref() != CHECKPOINT_MAGIC {
        return Err(StoreError::BadFormat("checkpoint magic mismatch".into()));
    }
    let fingerprint = take_u64(&mut b)?;
    let count = take_u64(&mut b)? as usize;
    let mut sections = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let name = take_str(&mut b)?;
        let len = take_u64(&mut b)? as usize;
        if b.remaining() < len {
            return Err(StoreError::BadFormat(format!(
                "truncated section {name:?}: wanted {len} bytes, had {}",
                b.remaining()
            )));
        }
        let payload = b.split_to(len);
        sections.push((name, payload));
    }
    if b.remaining() != 0 {
        return Err(StoreError::BadFormat(format!(
            "{} trailing bytes after last section",
            b.remaining()
        )));
    }
    Ok(CheckpointFile { fingerprint, sections })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_named_sections() {
        let dir = std::env::temp_dir().join("ttck-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.ttck");
        save_checkpoint(&path, 0xDEAD_BEEF, &[("alpha", b"abc"), ("beta", &[0u8; 9])])
            .unwrap();
        let ck = load_checkpoint(&path).unwrap();
        assert_eq!(ck.fingerprint, 0xDEAD_BEEF);
        assert_eq!(ck.section("alpha").unwrap().as_ref(), b"abc");
        assert_eq!(ck.section("beta").unwrap().as_ref().len(), 9);
        assert!(ck.section("gamma").is_none());
        assert_eq!(ck.section_names().collect::<Vec<_>>(), ["alpha", "beta"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_and_corrupt_files_are_typed_errors() {
        let dir = std::env::temp_dir().join("ttck-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("od.ttck");
        save_checkpoint(&path, 7, &[("funnel", b"0123456789")]).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Chop mid-payload: typed BadFormat, not a panic.
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        assert!(matches!(load_checkpoint(&path), Err(StoreError::BadFormat(_))));

        // Wrong magic.
        let mut bad = full.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(load_checkpoint(&path), Err(StoreError::BadFormat(_))));

        // Trailing garbage.
        let mut long = full.clone();
        long.extend_from_slice(b"zz");
        std::fs::write(&path, &long).unwrap();
        assert!(matches!(load_checkpoint(&path), Err(StoreError::BadFormat(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writes_are_published_by_rename() {
        let dir = std::env::temp_dir().join("ttck-rename");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim.ttck");
        save_checkpoint(&path, 1, &[("s", b"x")]).unwrap();
        // The tmp sibling must not linger after a successful save.
        assert!(!path.with_extension("tmp").exists());
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
