//! Stage checkpoint container: named binary sections behind a magic and a
//! config fingerprint.
//!
//! The staged pipeline persists one checkpoint file per completed stage so
//! a killed run can resume from the last stage boundary instead of
//! recomputing a simulated year. The container is deliberately dumb: it
//! knows nothing about stage payloads, only about framing them. Stages
//! encode their own sections with the [`crate::codec`] wire primitives,
//! which keeps resume byte-identical — the same encoder produces the same
//! bytes whether a stage ran live or was reloaded.
//!
//! v2 layout, the only one written today (all integers little-endian):
//!
//! ```text
//! magic            8 bytes  b"TTCK\x00\x00\x00\x02"
//! fingerprint      u64      caller-supplied config fingerprint
//! section count    u64
//! header crc       u32      CRC-32 of the 24 header bytes above
//! per section:
//!   name           u16 length + UTF-8 bytes
//!   payload        u64 length + u32 CRC-32 + bytes
//! ```
//!
//! v1 (`b"TTCK\x00\x00\x00\x01"`) is the same without the CRCs and is
//! still accepted read-only. Unlike the trip store there is no salvage
//! path: a checkpoint that fails validation is simply recomputed by the
//! pipeline, so any damage is a typed [`StoreError::BadFormat`] (which
//! resume already treats as "no checkpoint"). Writes are atomic *and
//! fsynced* via [`crate::integrity::write_atomic`].

use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::{put_str, take_str, take_u32, take_u64};
use crate::integrity::{crc32, write_atomic};
use crate::StoreError;

/// Magic prefix of legacy v1 checkpoint files (read-only support).
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"TTCK\x00\x00\x00\x01";
/// Magic prefix of v2 checkpoint files (the format written today).
pub const CHECKPOINT_MAGIC_V2: [u8; 8] = *b"TTCK\x00\x00\x00\x02";

/// A loaded checkpoint: the fingerprint it was written under plus its
/// named payload sections, in file order.
#[derive(Debug, Clone)]
pub struct CheckpointFile {
    /// Fingerprint of the configuration that produced this checkpoint.
    /// Resume must refuse a checkpoint whose fingerprint does not match
    /// the current configuration.
    pub fingerprint: u64,
    /// Container version the file was read from (1 or 2).
    pub version: u32,
    sections: Vec<(String, Bytes)>,
}

impl CheckpointFile {
    /// Returns the payload of the named section, if present.
    pub fn section(&self, name: &str) -> Option<&Bytes> {
        self.sections.iter().find(|(n, _)| n == name).map(|(_, b)| b)
    }

    /// Section names in file order (useful for diagnostics).
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Number of sections in the file.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }
}

/// Writes a v2 checkpoint atomically: encode in memory, publish with
/// temp file + fsync + rename.
pub fn save_checkpoint(
    path: &Path,
    fingerprint: u64,
    sections: &[(&str, &[u8])],
) -> Result<(), StoreError> {
    let count = u64::try_from(sections.len())
        .map_err(|_| StoreError::BadFormat("section count exceeds u64".into()))?;
    let mut out = BytesMut::new();
    out.put_slice(&CHECKPOINT_MAGIC_V2);
    out.put_u64_le(fingerprint);
    out.put_u64_le(count);
    let header_crc = crc32(&out);
    out.put_u32_le(header_crc);
    for (name, payload) in sections {
        put_str(&mut out, name)?;
        let len = u64::try_from(payload.len())
            .map_err(|_| StoreError::BadFormat("section length exceeds u64".into()))?;
        out.put_u64_le(len);
        out.put_u32_le(crc32(payload));
        out.put_slice(payload);
    }
    write_atomic(path, &out)?;
    Ok(())
}

/// Reads and validates a checkpoint, accepting v1 and v2 containers.
pub fn load_checkpoint(path: &Path) -> Result<CheckpointFile, StoreError> {
    let raw = std::fs::read(path)?;
    if raw.len() < 8 {
        return Err(StoreError::BadFormat("file too short for magic".into()));
    }
    let version = match <[u8; 8]>::try_from(&raw[..8]) {
        Ok(m) if m == CHECKPOINT_MAGIC_V2 => 2,
        Ok(m) if m == CHECKPOINT_MAGIC => 1,
        _ => return Err(StoreError::BadFormat("checkpoint magic mismatch".into())),
    };
    if version == 2 {
        if raw.len() < 28 {
            return Err(StoreError::BadFormat("file too short for v2 header".into()));
        }
        let stored = u32::from_le_bytes([raw[24], raw[25], raw[26], raw[27]]);
        let actual = crc32(&raw[..24]);
        if stored != actual {
            return Err(StoreError::BadFormat(format!(
                "checkpoint header CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"
            )));
        }
    }
    let mut b = Bytes::copy_from_slice(&raw);
    let _magic = b.split_to(8);
    let fingerprint = take_u64(&mut b)?;
    let count = take_u64(&mut b)? as usize;
    if version == 2 {
        let _header_crc = b.split_to(4); // verified above
    }
    let mut sections = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let name = take_str(&mut b)?;
        let len = take_u64(&mut b)? as usize;
        let stored_crc = if version == 2 { Some(take_u32(&mut b)?) } else { None };
        if b.remaining() < len {
            return Err(StoreError::BadFormat(format!(
                "truncated section {name:?}: wanted {len} bytes, had {}",
                b.remaining()
            )));
        }
        let payload = b.split_to(len);
        if let Some(stored) = stored_crc {
            let actual = crc32(payload.as_ref());
            if stored != actual {
                return Err(StoreError::BadFormat(format!(
                    "section {name:?} CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"
                )));
            }
        }
        sections.push((name, payload));
    }
    if b.remaining() != 0 {
        return Err(StoreError::BadFormat(format!(
            "{} trailing bytes after last section",
            b.remaining()
        )));
    }
    Ok(CheckpointFile { fingerprint, version, sections })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_named_sections() {
        let dir = std::env::temp_dir().join("ttck-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.ttck");
        save_checkpoint(&path, 0xDEAD_BEEF, &[("alpha", b"abc"), ("beta", &[0u8; 9])])
            .unwrap();
        let ck = load_checkpoint(&path).unwrap();
        assert_eq!(ck.fingerprint, 0xDEAD_BEEF);
        assert_eq!(ck.version, 2);
        assert_eq!(ck.section("alpha").unwrap().as_ref(), b"abc");
        assert_eq!(ck.section("beta").unwrap().as_ref().len(), 9);
        assert!(ck.section("gamma").is_none());
        assert_eq!(ck.section_names().collect::<Vec<_>>(), ["alpha", "beta"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_checkpoints_still_load() {
        let dir = std::env::temp_dir().join("ttck-v1");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.ttck");
        // Hand-write a v1 container: magic, fingerprint, count, sections
        // without CRCs.
        let mut out = BytesMut::new();
        out.put_slice(&CHECKPOINT_MAGIC);
        out.put_u64_le(42);
        out.put_u64_le(1);
        put_str(&mut out, "funnel").unwrap();
        out.put_u64_le(3);
        out.put_slice(b"abc");
        std::fs::write(&path, &out).unwrap();
        let ck = load_checkpoint(&path).unwrap();
        assert_eq!(ck.fingerprint, 42);
        assert_eq!(ck.version, 1);
        assert_eq!(ck.section("funnel").unwrap().as_ref(), b"abc");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_and_corrupt_files_are_typed_errors() {
        let dir = std::env::temp_dir().join("ttck-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("od.ttck");
        save_checkpoint(&path, 7, &[("funnel", b"0123456789")]).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Chop mid-payload: typed BadFormat, not a panic.
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        assert!(matches!(load_checkpoint(&path), Err(StoreError::BadFormat(_))));

        // Wrong magic.
        let mut bad = full.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(load_checkpoint(&path), Err(StoreError::BadFormat(_))));

        // A flipped payload bit now fails the section CRC.
        let mut flipped = full.clone();
        let last = flipped.len() - 2;
        flipped[last] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("CRC mismatch"), "{err}");

        // A flipped header bit fails the header CRC.
        let mut head = full.clone();
        head[9] ^= 0x01;
        std::fs::write(&path, &head).unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("header CRC"), "{err}");

        // Trailing garbage.
        let mut long = full.clone();
        long.extend_from_slice(b"zz");
        std::fs::write(&path, &long).unwrap();
        assert!(matches!(load_checkpoint(&path), Err(StoreError::BadFormat(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writes_are_published_by_rename() {
        let dir = std::env::temp_dir().join("ttck-rename");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim.ttck");
        save_checkpoint(&path, 1, &[("s", b"x")]).unwrap();
        // The tmp sibling must not linger after a successful save.
        assert!(!path.with_extension("tmp").exists());
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
