use taxitrace_geo::BBox;
use taxitrace_timebase::Timestamp;
use taxitrace_traces::{RawTrip, TaxiId};

/// A composable session filter: the tiny slice of SQL the pipeline needs.
///
/// ```
/// use taxitrace_store::Query;
/// use taxitrace_traces::TaxiId;
/// use taxitrace_timebase::Timestamp;
///
/// let q = Query::new()
///     .taxi(TaxiId(1))
///     .started_after(Timestamp::from_secs(0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Query {
    taxi: Option<TaxiId>,
    started_after: Option<Timestamp>,
    started_before: Option<Timestamp>,
    touches_bbox: Option<BBox>,
    min_points: Option<usize>,
}

impl Query {
    /// Matches everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restrict to one taxi.
    pub fn taxi(mut self, taxi: TaxiId) -> Self {
        self.taxi = Some(taxi);
        self
    }

    /// Restrict to sessions starting at or after `t`.
    pub fn started_after(mut self, t: Timestamp) -> Self {
        self.started_after = Some(t);
        self
    }

    /// Restrict to sessions starting strictly before `t`.
    pub fn started_before(mut self, t: Timestamp) -> Self {
        self.started_before = Some(t);
        self
    }

    /// Restrict to sessions with at least one point inside `bbox`.
    pub fn touches(mut self, bbox: BBox) -> Self {
        self.touches_bbox = Some(bbox);
        self
    }

    /// Restrict to sessions with at least `n` route points.
    pub fn min_points(mut self, n: usize) -> Self {
        self.min_points = Some(n);
        self
    }

    /// Whether a session satisfies all configured predicates.
    pub fn matches(&self, s: &RawTrip) -> bool {
        if let Some(taxi) = self.taxi {
            if s.taxi != taxi {
                return false;
            }
        }
        if let Some(t) = self.started_after {
            if s.start_time < t {
                return false;
            }
        }
        if let Some(t) = self.started_before {
            if s.start_time >= t {
                return false;
            }
        }
        if let Some(n) = self.min_points {
            if s.points.len() < n {
                return false;
            }
        }
        if let Some(bbox) = &self.touches_bbox {
            if !s.points.iter().any(|p| bbox.contains(p.pos)) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_timebase::Duration;
    use taxitrace_traces::{PointTruth, RoutePoint, TripId};

    fn session(taxi: u16, t0: i64, x: f64, points: usize) -> RawTrip {
        let pts = (0..points)
            .map(|i| RoutePoint {
                point_id: i as u64,
                trip_id: TripId(1),
                taxi: TaxiId(taxi),
                geo: GeoPoint::new(25.0, 65.0),
                pos: Point::new(x, 0.0),
                timestamp: Timestamp::from_secs(t0 + i as i64),
                speed_kmh: 0.0,
                heading_deg: 0.0,
                fuel_ml: 0.0,
                truth: PointTruth { seq: i as u32, element: None },
            })
            .collect();
        RawTrip {
            id: TripId(1),
            taxi: TaxiId(taxi),
            start_time: Timestamp::from_secs(t0),
            end_time: Timestamp::from_secs(t0 + points as i64),
            points: pts,
            total_time: Duration::from_secs(points as i64),
            total_distance_m: 0.0,
            total_fuel_ml: 0.0,
            truth_trips: Vec::new(),
        }
    }

    #[test]
    fn empty_query_matches_all() {
        assert!(Query::new().matches(&session(1, 0, 0.0, 3)));
    }

    #[test]
    fn taxi_filter() {
        let q = Query::new().taxi(TaxiId(2));
        assert!(!q.matches(&session(1, 0, 0.0, 3)));
        assert!(q.matches(&session(2, 0, 0.0, 3)));
    }

    #[test]
    fn time_window() {
        let q = Query::new()
            .started_after(Timestamp::from_secs(10))
            .started_before(Timestamp::from_secs(20));
        assert!(!q.matches(&session(1, 9, 0.0, 3)));
        assert!(q.matches(&session(1, 10, 0.0, 3)));
        assert!(q.matches(&session(1, 19, 0.0, 3)));
        assert!(!q.matches(&session(1, 20, 0.0, 3)));
    }

    #[test]
    fn bbox_and_min_points() {
        let bbox = BBox::from_corners(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
        let q = Query::new().touches(bbox).min_points(2);
        assert!(q.matches(&session(1, 0, 0.0, 3)));
        assert!(!q.matches(&session(1, 0, 5.0, 3)), "outside bbox");
        assert!(!q.matches(&session(1, 0, 0.0, 1)), "too few points");
    }
}
