use std::fmt;

use taxitrace_geo::BBox;
use taxitrace_timebase::Timestamp;
use taxitrace_traces::{RawTrip, TaxiId};

/// A query that can never match: the caller asked for something
/// contradictory, which used to come back as a silently empty result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryError {
    /// A range filter is inverted (min > max). `field` names the filter
    /// ("time", "bbox.x", "bbox.y"); `min`/`max` are the offending bounds
    /// (seconds for the time window, metres for the bbox axes).
    EmptyRange { field: &'static str, min: f64, max: f64 },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyRange { field, min, max } => write!(
                f,
                "empty {field} range: min {min} exceeds max {max}"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// A composable session filter: the tiny slice of SQL the pipeline needs.
///
/// ```
/// use taxitrace_store::Query;
/// use taxitrace_traces::TaxiId;
/// use taxitrace_timebase::Timestamp;
///
/// let q = Query::new()
///     .taxi(TaxiId(1))
///     .started_after(Timestamp::from_secs(0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Query {
    taxi: Option<TaxiId>,
    started_after: Option<Timestamp>,
    started_before: Option<Timestamp>,
    touches_bbox: Option<BBox>,
    min_points: Option<usize>,
}

impl Query {
    /// Matches everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restrict to one taxi.
    pub fn taxi(mut self, taxi: TaxiId) -> Self {
        self.taxi = Some(taxi);
        self
    }

    /// Restrict to sessions starting at or after `t`.
    pub fn started_after(mut self, t: Timestamp) -> Self {
        self.started_after = Some(t);
        self
    }

    /// Restrict to sessions starting strictly before `t`.
    pub fn started_before(mut self, t: Timestamp) -> Self {
        self.started_before = Some(t);
        self
    }

    /// Restrict to sessions with at least one point inside `bbox`.
    pub fn touches(mut self, bbox: BBox) -> Self {
        self.touches_bbox = Some(bbox);
        self
    }

    /// Restrict to sessions with at least `n` route points.
    pub fn min_points(mut self, n: usize) -> Self {
        self.min_points = Some(n);
        self
    }

    /// Rejects contradictory filters instead of silently matching
    /// nothing: an inverted time window (`started_after` past
    /// `started_before`) or an inverted bbox (possible by constructing
    /// [`BBox`] fields directly; [`BBox::from_corners`] normalises) is a
    /// typed [`QueryError::EmptyRange`].
    pub fn validate(&self) -> Result<(), QueryError> {
        if let (Some(a), Some(b)) = (self.started_after, self.started_before) {
            if a > b {
                return Err(QueryError::EmptyRange {
                    field: "time",
                    min: a.secs() as f64,
                    max: b.secs() as f64,
                });
            }
        }
        if let Some(bbox) = &self.touches_bbox {
            if bbox.min_x > bbox.max_x {
                return Err(QueryError::EmptyRange {
                    field: "bbox.x",
                    min: bbox.min_x,
                    max: bbox.max_x,
                });
            }
            if bbox.min_y > bbox.max_y {
                return Err(QueryError::EmptyRange {
                    field: "bbox.y",
                    min: bbox.min_y,
                    max: bbox.max_y,
                });
            }
        }
        Ok(())
    }

    /// Whether a session satisfies all configured predicates.
    pub fn matches(&self, s: &RawTrip) -> bool {
        if let Some(taxi) = self.taxi {
            if s.taxi != taxi {
                return false;
            }
        }
        if let Some(t) = self.started_after {
            if s.start_time < t {
                return false;
            }
        }
        if let Some(t) = self.started_before {
            if s.start_time >= t {
                return false;
            }
        }
        if let Some(n) = self.min_points {
            if s.points.len() < n {
                return false;
            }
        }
        if let Some(bbox) = &self.touches_bbox {
            if !s.points.iter().any(|p| bbox.contains(p.pos)) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_timebase::Duration;
    use taxitrace_traces::{PointTruth, RoutePoint, TripId};

    fn session(taxi: u16, t0: i64, x: f64, points: usize) -> RawTrip {
        let pts = (0..points)
            .map(|i| RoutePoint {
                point_id: i as u64,
                trip_id: TripId(1),
                taxi: TaxiId(taxi),
                geo: GeoPoint::new(25.0, 65.0),
                pos: Point::new(x, 0.0),
                timestamp: Timestamp::from_secs(t0 + i as i64),
                speed_kmh: 0.0,
                heading_deg: 0.0,
                fuel_ml: 0.0,
                truth: PointTruth { seq: i as u32, element: None },
            })
            .collect();
        RawTrip {
            id: TripId(1),
            taxi: TaxiId(taxi),
            start_time: Timestamp::from_secs(t0),
            end_time: Timestamp::from_secs(t0 + points as i64),
            points: pts,
            total_time: Duration::from_secs(points as i64),
            total_distance_m: 0.0,
            total_fuel_ml: 0.0,
            truth_trips: Vec::new(),
        }
    }

    #[test]
    fn empty_query_matches_all() {
        assert!(Query::new().matches(&session(1, 0, 0.0, 3)));
    }

    #[test]
    fn taxi_filter() {
        let q = Query::new().taxi(TaxiId(2));
        assert!(!q.matches(&session(1, 0, 0.0, 3)));
        assert!(q.matches(&session(2, 0, 0.0, 3)));
    }

    #[test]
    fn time_window() {
        let q = Query::new()
            .started_after(Timestamp::from_secs(10))
            .started_before(Timestamp::from_secs(20));
        assert!(!q.matches(&session(1, 9, 0.0, 3)));
        assert!(q.matches(&session(1, 10, 0.0, 3)));
        assert!(q.matches(&session(1, 19, 0.0, 3)));
        assert!(!q.matches(&session(1, 20, 0.0, 3)));
    }

    #[test]
    fn inverted_time_window_is_empty_range() {
        let q = Query::new()
            .started_after(Timestamp::from_secs(20))
            .started_before(Timestamp::from_secs(10));
        assert_eq!(
            q.validate(),
            Err(QueryError::EmptyRange { field: "time", min: 20.0, max: 10.0 })
        );
        // Degenerate-but-ordered windows are fine (they match nothing,
        // which is what the caller asked for).
        let q = Query::new()
            .started_after(Timestamp::from_secs(10))
            .started_before(Timestamp::from_secs(10));
        assert!(q.validate().is_ok());
    }

    #[test]
    fn inverted_bbox_is_empty_range() {
        // from_corners normalises, so build the inversion directly.
        let bbox = BBox { min_x: 5.0, min_y: 0.0, max_x: -5.0, max_y: 1.0 };
        let err = Query::new().touches(bbox).validate().unwrap_err();
        assert_eq!(err, QueryError::EmptyRange { field: "bbox.x", min: 5.0, max: -5.0 });
        assert!(err.to_string().contains("bbox.x"), "{err}");
        let normal = BBox::from_corners(Point::new(5.0, 0.0), Point::new(-5.0, 1.0));
        assert!(Query::new().touches(normal).validate().is_ok());
    }

    #[test]
    fn bbox_and_min_points() {
        let bbox = BBox::from_corners(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
        let q = Query::new().touches(bbox).min_points(2);
        assert!(q.matches(&session(1, 0, 0.0, 3)));
        assert!(!q.matches(&session(1, 0, 5.0, 3)), "outside bbox");
        assert!(!q.matches(&session(1, 0, 0.0, 1)), "too few points");
    }
}
