//! Embedded trip store: the PostgreSQL/PostGIS stand-in.
//!
//! The paper stores retrieved taxi data "in PostgreSQL 9.1 DBMS having
//! PostGIS extension" and manipulates it with SQL/PL-pgSQL. The pipeline
//! only uses a narrow slice of that machinery — keyed access by taxi and
//! trip, time-range scans, spatial point queries — so this crate provides an
//! embedded store with exactly those capabilities:
//!
//! * [`TripStore`] — in-memory storage of raw trips with secondary indexes
//!   by taxi, trip id, session start time, and a spatial grid index over
//!   route points;
//! * [`Query`] — a small composable filter (taxi + time window + bbox);
//! * [`codec`] — a versioned binary file format so a simulated year can be
//!   generated once and re-analysed many times;
//! * [`checkpoint`] — a named-section container with a config fingerprint
//!   and atomic rename publication, backing stage checkpoint/resume.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod checkpoint;
pub mod codec;
mod query;
mod store;

pub use checkpoint::{
    load_checkpoint, save_checkpoint, CheckpointFile, CHECKPOINT_MAGIC,
};
pub use query::Query;
pub use store::{StoreError, StoreStats, TripStore};
