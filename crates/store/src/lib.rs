//! Embedded trip store: the PostgreSQL/PostGIS stand-in.
//!
//! The paper stores retrieved taxi data "in PostgreSQL 9.1 DBMS having
//! PostGIS extension" and manipulates it with SQL/PL-pgSQL. The pipeline
//! only uses a narrow slice of that machinery — keyed access by taxi and
//! trip, time-range scans, spatial point queries — so this crate provides an
//! embedded store with exactly those capabilities:
//!
//! * [`TripStore`] — in-memory storage of raw trips with secondary indexes
//!   by taxi, trip id, session start time, and a spatial grid index over
//!   route points;
//! * [`Query`] — a small composable filter (taxi + time window + bbox);
//! * [`codec`] — a versioned binary file format (checksummed v3 container
//!   with an offset index for seek/zero-copy reads; v1 and pre-index v2
//!   read-only) so a simulated year can be generated once and re-analysed
//!   many times, with torn-write salvage instead of abort;
//! * [`checkpoint`] — a named-section container with a config fingerprint
//!   and atomic rename publication, backing stage checkpoint/resume;
//! * [`integrity`] — the dependency-free CRC-32 and the temp-file+fsync+
//!   rename writer every container publishes through;
//! * [`fsck`] — offline scan/repair over store and checkpoint files.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod checkpoint;
pub mod codec;
pub mod fsck;
pub mod integrity;
mod query;
mod store;

pub use checkpoint::{
    load_checkpoint, save_checkpoint, CheckpointFile, CHECKPOINT_MAGIC,
    CHECKPOINT_MAGIC_V2,
};
pub use codec::{
    DamageKind, IndexedLoad, LoadOptions, LoadOutcome, RecordDamage, Salvage, SalvageReport,
};
pub use fsck::{fsck_path, FileKind, FsckReport};
pub use query::{Query, QueryError};
pub use store::{StoreError, StoreStats, TripStore};
