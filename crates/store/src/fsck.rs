//! Offline integrity checking and repair for store/checkpoint files.
//!
//! [`fsck_path`] walks a file or directory, classifies every container it
//! recognises (TTRS trip stores, TTCK stage checkpoints), and reports
//! per-file integrity: version, fingerprint, records declared vs. valid,
//! and every piece of damage the salvage reader found. With `repair`:
//!
//! * a damaged (or legacy v1) **store** is rewritten as a clean v3 file
//!   from its salvageable records, deduplicated by trip id, under the
//!   same fingerprint — the atomic writer guarantees the original stays
//!   intact if the rewrite dies (clean pre-index v2 files are left
//!   untouched: they still read fine via the scan path);
//! * a damaged **checkpoint** is removed: checkpoints carry no primary
//!   data (the pipeline recomputes the stage), so deletion *is* the
//!   repair — resume treats the missing file as "stage not done".

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::codec::{salvage_bytes, save_sessions_tagged, DamageKind, RecordDamage};
use crate::{load_checkpoint, StoreError};

/// Which container family a scanned file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A TTRS trip-store container.
    Store,
    /// A TTCK stage-checkpoint container.
    Checkpoint,
}

impl FileKind {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FileKind::Store => "store",
            FileKind::Checkpoint => "checkpoint",
        }
    }
}

/// Integrity report for one scanned file.
#[derive(Debug, Clone)]
pub struct FsckReport {
    /// The file the report describes.
    pub path: PathBuf,
    /// Container family.
    pub kind: FileKind,
    /// Container version (1, 2 or 3; 0 when the header was unreadable).
    pub version: u32,
    /// Config fingerprint from the header (0 = untagged / unreadable).
    pub fingerprint: u64,
    /// Records (stores) or sections (checkpoints) the header declares.
    pub records_declared: u64,
    /// Records/sections that verified.
    pub records_valid: u64,
    /// Damage found, in file order; empty means clean.
    pub damage: Vec<RecordDamage>,
    /// Repair action taken, when repair was requested and needed:
    /// `"rewritten"` (store salvaged to clean v3), `"upgraded"` (clean v1
    /// store rewritten as v3), or `"removed"` (unusable checkpoint).
    pub repaired: Option<&'static str>,
}

impl FsckReport {
    /// True when the file verified end to end.
    pub fn is_clean(&self) -> bool {
        self.damage.is_empty()
    }

    /// `"corrupt_record 2, torn_tail 1"`-style damage tally, `"clean"`
    /// when there is none.
    pub fn damage_summary(&self) -> String {
        if self.damage.is_empty() {
            return "clean".into();
        }
        let count = |k: DamageKind| self.damage.iter().filter(|d| d.kind == k).count();
        let mut parts = Vec::new();
        for kind in [
            DamageKind::CorruptRecord,
            DamageKind::TornTail,
            DamageKind::HeaderMismatch,
            DamageKind::CorruptIndex,
        ] {
            let n = count(kind);
            if n > 0 {
                parts.push(format!("{} {n}", kind.label()));
            }
        }
        parts.join(", ")
    }
}

/// Scans `path` (a file, or a directory walked recursively in sorted
/// order) and returns one report per recognised container file. Files
/// that are neither TTRS nor TTCK — by `.tts`/`.ttrs`/`.ttck` extension
/// or by magic sniffing — are skipped silently, as are `.tmp` siblings
/// left by an interrupted atomic write.
pub fn fsck_path(path: &Path, repair: bool) -> Result<Vec<FsckReport>, StoreError> {
    let mut reports = Vec::new();
    walk(path, repair, &mut reports)?;
    Ok(reports)
}

fn walk(path: &Path, repair: bool, out: &mut Vec<FsckReport>) -> Result<(), StoreError> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for entry in entries {
            walk(&entry, repair, out)?;
        }
        return Ok(());
    }
    let Some(kind) = sniff(path)? else { return Ok(()) };
    let report = match kind {
        FileKind::Store => fsck_store(path, repair)?,
        FileKind::Checkpoint => fsck_checkpoint(path, repair)?,
    };
    out.push(report);
    Ok(())
}

/// Decides whether `path` is a container worth scanning: extension
/// first (so a garbage-headered store is still reported, not skipped),
/// then magic sniffing for unconventional names.
fn sniff(path: &Path) -> Result<Option<FileKind>, StoreError> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("tts") | Some("ttrs") => return Ok(Some(FileKind::Store)),
        Some("ttck") => return Ok(Some(FileKind::Checkpoint)),
        Some("tmp") => return Ok(None),
        _ => {}
    }
    let raw = std::fs::read(path)?;
    Ok(match raw.get(..4) {
        Some(b"TTRS") => Some(FileKind::Store),
        Some(b"TTCK") => Some(FileKind::Checkpoint),
        _ => None,
    })
}

fn fsck_store(path: &Path, repair: bool) -> Result<FsckReport, StoreError> {
    let raw = std::fs::read(path)?;
    let salvage = salvage_bytes(&raw);
    let mut report = FsckReport {
        path: path.to_path_buf(),
        kind: FileKind::Store,
        version: salvage.report.version,
        fingerprint: salvage.report.fingerprint,
        records_declared: salvage.report.records_declared,
        records_valid: salvage.report.records_valid,
        damage: salvage.report.damage,
        repaired: None,
    };
    // An unreadable header (version 0 or a failed v2 header CRC) leaves
    // nothing trustworthy to rewrite from; repair only when the header
    // parsed and there is either damage to shed or a v1 to upgrade.
    let header_usable = report.version != 0
        && !report.damage.iter().any(|d| d.kind == DamageKind::HeaderMismatch && d.index == 0);
    let wants_repair = !report.is_clean() || report.version == 1;
    if repair && header_usable && wants_repair {
        let mut seen = BTreeSet::new();
        let unique: Vec<_> = salvage
            .sessions
            .into_iter()
            .filter(|s| seen.insert(s.id.0))
            .collect();
        save_sessions_tagged(path, &unique, report.fingerprint)?;
        report.repaired = Some(if report.is_clean() { "upgraded" } else { "rewritten" });
    }
    Ok(report)
}

fn fsck_checkpoint(path: &Path, repair: bool) -> Result<FsckReport, StoreError> {
    let raw = std::fs::read(path)?;
    // Best-effort header peek so even an unloadable file reports its
    // claimed version and fingerprint.
    let version = match raw.get(..8) {
        Some(m) if m == crate::checkpoint::CHECKPOINT_MAGIC_V2 => 2,
        Some(m) if m == crate::CHECKPOINT_MAGIC => 1,
        _ => 0,
    };
    let fingerprint = if version != 0 && raw.len() >= 16 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&raw[8..16]);
        u64::from_le_bytes(b)
    } else {
        0
    };
    let mut report = FsckReport {
        path: path.to_path_buf(),
        kind: FileKind::Checkpoint,
        version,
        fingerprint,
        records_declared: 0,
        records_valid: 0,
        damage: Vec::new(),
        repaired: None,
    };
    match load_checkpoint(path) {
        Ok(ck) => {
            report.version = ck.version;
            report.fingerprint = ck.fingerprint;
            report.records_declared = ck.section_count() as u64;
            report.records_valid = ck.section_count() as u64;
        }
        Err(e) => {
            let kind = if version == 0 {
                DamageKind::HeaderMismatch
            } else {
                DamageKind::CorruptRecord
            };
            report.damage.push(RecordDamage { index: 0, kind, detail: e.to_string() });
            if repair {
                // Checkpoints are derived data: removing the unusable
                // file makes resume recompute the stage cleanly.
                std::fs::remove_file(path)?;
                report.repaired = Some("removed");
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{
        record_spans, save_sessions, save_sessions_v1, save_sessions_v2_tagged,
    };
    use bytes::BufMut;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_timebase::{Duration, Timestamp};
    use taxitrace_traces::{PointTruth, RawTrip, RoutePoint, TaxiId, TripId};

    fn session(trip: u64) -> RawTrip {
        let points: Vec<RoutePoint> = (0..4)
            .map(|i| RoutePoint {
                point_id: trip * 100 + i,
                trip_id: TripId(trip),
                taxi: TaxiId(1),
                geo: GeoPoint::new(25.0, 65.0),
                pos: Point::new(i as f64, 0.0),
                timestamp: Timestamp::from_secs(i as i64 * 10),
                speed_kmh: 30.0,
                heading_deg: 0.0,
                fuel_ml: 1.0,
                truth: PointTruth { seq: i as u32, element: None },
            })
            .collect();
        RawTrip {
            id: TripId(trip),
            taxi: TaxiId(1),
            start_time: Timestamp::from_secs(0),
            end_time: Timestamp::from_secs(40),
            points,
            total_time: Duration::from_secs(40),
            total_distance_m: 4.0,
            total_fuel_ml: 4.0,
            truth_trips: Vec::new(),
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("taxitrace-fsck-{name}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn clean_dir_scan_reports_all_files() {
        let dir = tmp_dir("clean");
        let sessions: Vec<_> = (1..=3).map(session).collect();
        save_sessions(&dir.join("a.tts"), &sessions).unwrap();
        crate::save_checkpoint(&dir.join("b.ttck"), 9, &[("s", b"x")]).unwrap();
        std::fs::write(dir.join("notes.txt"), b"not a container").unwrap();
        let reports = fsck_path(&dir, false).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.is_clean()));
        assert_eq!(reports[0].kind, FileKind::Store);
        assert_eq!(reports[1].kind, FileKind::Checkpoint);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repair_round_trips_a_bit_flipped_store() {
        let dir = tmp_dir("flip");
        let path = dir.join("s.tts");
        let sessions: Vec<_> = (1..=5).map(session).collect();
        save_sessions(&path, &sessions).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let spans = record_spans(&raw).unwrap();
        raw[spans[2].payload_start + 4] ^= 0x08;
        std::fs::write(&path, &raw).unwrap();

        // Scan-only: damage reported, file untouched.
        let scan = fsck_path(&path, false).unwrap();
        assert_eq!(scan[0].records_valid, 4);
        assert_eq!(scan[0].damage_summary(), "corrupt_record 1");
        assert!(scan[0].repaired.is_none());

        // Repair: rewritten; a re-scan is clean with the survivors.
        let fix = fsck_path(&path, true).unwrap();
        assert_eq!(fix[0].repaired, Some("rewritten"));
        let rescan = fsck_path(&path, true).unwrap();
        assert!(rescan[0].is_clean());
        assert_eq!(rescan[0].version, 3);
        assert_eq!(rescan[0].records_valid, 4);
        assert!(rescan[0].repaired.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repair_upgrades_clean_v1_stores() {
        let dir = tmp_dir("upgrade");
        let path = dir.join("legacy.tts");
        let sessions: Vec<_> = (1..=2).map(session).collect();
        save_sessions_v1(&path, &sessions).unwrap();
        let fix = fsck_path(&path, true).unwrap();
        assert_eq!(fix[0].version, 1);
        assert_eq!(fix[0].repaired, Some("upgraded"));
        let rescan = fsck_path(&path, false).unwrap();
        assert_eq!(rescan[0].version, 3);
        assert!(rescan[0].is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_pre_index_v2_store_is_left_untouched() {
        let dir = tmp_dir("v2-clean");
        let path = dir.join("old.tts");
        let sessions: Vec<_> = (1..=3).map(session).collect();
        save_sessions_v2_tagged(&path, &sessions, 7).unwrap();
        let before = std::fs::read(&path).unwrap();
        let fix = fsck_path(&path, true).unwrap();
        assert_eq!(fix[0].version, 2);
        assert!(fix[0].is_clean());
        assert!(fix[0].repaired.is_none(), "clean v2 is not upgraded");
        assert_eq!(std::fs::read(&path).unwrap(), before, "file untouched");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_offset_index_is_repaired_by_rewrite() {
        let dir = tmp_dir("badindex");
        let path = dir.join("s.tts");
        let sessions: Vec<_> = (1..=4).map(session).collect();
        save_sessions(&path, &sessions).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        // Flip a bit inside the v3 offset index (starts after the 28-byte
        // header).
        raw[30] ^= 0x20;
        std::fs::write(&path, &raw).unwrap();
        let scan = fsck_path(&path, false).unwrap();
        assert_eq!(scan[0].damage_summary(), "corrupt_index 1");
        assert_eq!(scan[0].records_valid, 4, "records scan-salvage fine");
        let fix = fsck_path(&path, true).unwrap();
        assert_eq!(fix[0].repaired, Some("rewritten"));
        let rescan = fsck_path(&path, false).unwrap();
        assert!(rescan[0].is_clean());
        assert_eq!(rescan[0].version, 3);
        assert_eq!(rescan[0].records_valid, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repair_dedupes_duplicated_records() {
        let dir = tmp_dir("dup");
        let path = dir.join("s.tts");
        let sessions: Vec<_> = (1..=3).map(session).collect();
        save_sessions(&path, &sessions).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let spans = record_spans(&raw).unwrap();
        let mut dup = raw[..spans[1].end].to_vec();
        dup.extend_from_slice(&raw[spans[1].frame_start..spans[1].end]);
        dup.extend_from_slice(&raw[spans[1].end..]);
        std::fs::write(&path, &dup).unwrap();
        let fix = fsck_path(&path, true).unwrap();
        assert_eq!(fix[0].repaired, Some("rewritten"));
        let repaired = crate::TripStore::load(&path).unwrap();
        assert_eq!(repaired.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_header_store_is_reported_but_never_rewritten() {
        let dir = tmp_dir("garbage");
        let path = dir.join("s.tts");
        save_sessions(&path, &[session(1)]).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[..8].copy_from_slice(b"GARBAGE!");
        std::fs::write(&path, &raw).unwrap();
        let fix = fsck_path(&path, true).unwrap();
        assert_eq!(fix[0].damage_summary(), "header_mismatch 1");
        assert!(fix[0].repaired.is_none(), "nothing trustworthy to rewrite from");
        assert_eq!(std::fs::read(&path).unwrap(), raw, "file untouched");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_removed_on_repair() {
        let dir = tmp_dir("ck");
        let path = dir.join("clean.ttck");
        crate::save_checkpoint(&path, 5, &[("alpha", b"abcdef")]).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let scan = fsck_path(&path, false).unwrap();
        assert!(!scan[0].is_clean());
        assert_eq!(scan[0].version, 2);
        assert_eq!(scan[0].fingerprint, 5);
        assert!(path.exists());
        let fix = fsck_path(&path, true).unwrap();
        assert_eq!(fix[0].repaired, Some("removed"));
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unconventional_names_are_magic_sniffed() {
        let dir = tmp_dir("sniff");
        let path = dir.join("data.bin");
        save_sessions(&path, &[session(1)]).unwrap();
        let reports = fsck_path(&dir, false).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, FileKind::Store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_checkpoint_reports_version() {
        let dir = tmp_dir("ckv1");
        let path = dir.join("old.ttck");
        let mut out = bytes::BytesMut::new();
        out.put_slice(&crate::CHECKPOINT_MAGIC);
        out.put_u64_le(11);
        out.put_u64_le(0);
        std::fs::write(&path, &out).unwrap();
        let reports = fsck_path(&path, false).unwrap();
        assert!(reports[0].is_clean());
        assert_eq!(reports[0].version, 1);
        assert_eq!(reports[0].fingerprint, 11);
        std::fs::remove_dir_all(&dir).ok();
    }
}
