//! The adversarial-ingest property: 10 000 seeded mutants of well-formed
//! external files (truncation, bit flips, field swaps, encoding garbage,
//! CRLF/BOM rewrites, numeric extremes) never panic either parser, and
//! parsing the same mutant twice yields the identical issue ledger — the
//! quarantine outcome is a pure function of the bytes, never of timing,
//! worker scheduling, or allocator state.
//!
//! The corpus is seeded, not random: case `n` mutates with seed `n`, so a
//! failure reproduces from its seed alone (DESIGN.md §16).

use proptest::prelude::*;
use taxitrace_geo::{GeoPoint, Point};
use taxitrace_ingest::{
    export_trace_csv, mutate, parse_osmx, parse_trace_csv, RecordIssue,
};
use taxitrace_timebase::{Duration, Timestamp};
use taxitrace_traces::{PointTruth, RawTrip, RoutePoint, TaxiId, TripId};

/// A small well-formed trace corpus: mutants of valid files probe the
/// interesting boundary between "parses clean" and "quarantines".
fn base_csv() -> Vec<u8> {
    let sessions: Vec<RawTrip> = (0..4u64)
        .map(|id| {
            let points = (0..6u64)
                .map(|i| RoutePoint {
                    point_id: id * 100 + i,
                    trip_id: TripId(id),
                    taxi: TaxiId(id as u16),
                    geo: GeoPoint {
                        lon: 25.46 + i as f64 * 1e-4,
                        lat: 65.01 - i as f64 * 2e-4,
                    },
                    pos: Point { x: i as f64 * 37.25, y: -120.0 + i as f64 * 8.5 },
                    timestamp: Timestamp::from_secs(1_650_000_000 + i as i64 * 5),
                    speed_kmh: 24.0 + i as f64 * 1.375,
                    heading_deg: (i as f64 * 61.0) % 360.0,
                    fuel_ml: i as f64 * 11.125,
                    truth: PointTruth { seq: i as u32, element: None },
                })
                .collect();
            RawTrip {
                id: TripId(id),
                taxi: TaxiId(id as u16),
                start_time: Timestamp::from_secs(1_650_000_000),
                end_time: Timestamp::from_secs(1_650_000_030),
                points,
                total_time: Duration::from_secs(30),
                total_distance_m: 420.5,
                total_fuel_ml: 66.75,
                truth_trips: Vec::new(),
            }
        })
        .collect();
    export_trace_csv(&sessions).into_bytes()
}

/// A small well-formed OSMX document (hand-written, not exported, so the
/// map fuzzing does not depend on the synthetic city generator).
fn base_osmx() -> Vec<u8> {
    b"OSMX 1\n\
      origin 25.46 65.01\n\
      bounds -500 -500 500 500\n\
      node 1 0 0\n\
      node 2 120 0\n\
      node 3 120 90\n\
      node 4 0 90\n\
      way 10 class=1 speed=60 flow=B nodes=1,2\n\
      way 11 class=2 speed=50 flow=B nodes=2,3\n\
      way 12 class=3 speed=40 flow=F nodes=3,4\n\
      way 13 class=2 speed=50 flow=A nodes=4,1\n\
      obj TL 10 35.5 60 0\n\
      obj BS 11 12 120 24\n\
      route main outer=0 inner=2 ways=10,11 axis=0:0;120:0;120:90\n\
      signal 1\n"
        .to_vec()
}

fn ledger(issues: &[RecordIssue]) -> Vec<(u64, &'static str, String)> {
    issues.iter().map(|i| (i.record, i.reason.label(), i.detail.clone())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5_000))]

    /// 5 000 trace mutants: no panic, and a bit-identical issue ledger,
    /// session population and record count on a second parse.
    #[test]
    fn mutated_traces_never_panic_and_quarantine_deterministically(seed in 0u64..5_000) {
        let mutant = mutate(&base_csv(), seed);
        let first = parse_trace_csv(&mutant);
        let second = parse_trace_csv(&mutant);
        prop_assert_eq!(ledger(&first.issues), ledger(&second.issues));
        prop_assert_eq!(first.records_total, second.records_total);
        prop_assert_eq!(first.sessions.len(), second.sessions.len());
        for (a, b) in first.sessions.iter().zip(&second.sessions) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.points.len(), b.points.len());
        }
    }

    /// 5 000 map mutants: no panic, and file-level verdict plus per-record
    /// ledger both reproduce exactly.
    #[test]
    fn mutated_maps_never_panic_and_quarantine_deterministically(seed in 0u64..5_000) {
        let mutant = mutate(&base_osmx(), seed);
        let first = parse_osmx(&mutant);
        let second = parse_osmx(&mutant);
        match (first, second) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(ledger(&a.issues), ledger(&b.issues));
                prop_assert_eq!(a.records_total, b.records_total);
                prop_assert_eq!(a.city.elements.len(), b.city.elements.len());
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(
                false,
                "verdict flipped between parses: {:?} vs {:?}",
                a.map(|p| p.records_total),
                b.map(|p| p.records_total)
            ),
        }
    }
}
