//! Committed adversarial trace fixtures with pinned quarantine ledgers.
//!
//! Each fixture exercises one damage class from the external-input threat
//! model (DESIGN.md §16); the expected per-reason issue counts are exact,
//! so any drift in framing or field validation fails loudly here before
//! it can silently change what a real ingest run quarantines.

use taxitrace_ingest::{parse_trace_csv, IngestReason, TraceParse};

fn fixture(name: &str) -> TraceParse {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let bytes = std::fs::read(&path).expect("fixture file readable");
    parse_trace_csv(&bytes)
}

fn count(parse: &TraceParse, reason: IngestReason) -> usize {
    parse.issues.iter().filter(|i| i.reason == reason).count()
}

#[test]
fn truncated_mid_record_loses_exactly_the_torn_row() {
    let p = fixture("truncated_mid_record.csv");
    assert_eq!(p.records_total, 4);
    assert_eq!(p.issues.len(), 1);
    assert_eq!(count(&p, IngestReason::MalformedLine), 1);
    assert!(p.issues[0].detail.contains("expected 16 fields, got 5"));
    // The three complete rows before the tear all survive.
    assert_eq!(p.sessions.len(), 1);
    assert_eq!(p.sessions[0].points.len(), 3);
}

#[test]
fn bom_and_crlf_are_tolerated_without_quarantine() {
    let p = fixture("bom_crlf.csv");
    assert_eq!(p.records_total, 2);
    assert!(p.issues.is_empty(), "{:?}", p.issues);
    assert_eq!(p.sessions.len(), 1);
    assert_eq!(p.sessions[0].points.len(), 2);
    assert_eq!(p.sessions[0].taxi.0, 3);
}

#[test]
fn megabyte_field_is_rejected_before_it_is_parsed() {
    let p = fixture("huge_field.csv");
    assert_eq!(p.records_total, 3);
    assert_eq!(p.issues.len(), 1);
    assert_eq!(count(&p, IngestReason::MalformedLine), 1);
    assert!(p.issues[0].detail.contains("oversized (1048576 bytes)"));
    // The rows flanking the hostile one survive.
    assert_eq!(p.sessions.len(), 1);
    assert_eq!(p.sessions[0].points.len(), 2);
}

#[test]
fn non_finite_coordinates_quarantine_as_numeric_range() {
    let p = fixture("nonfinite_coords.csv");
    assert_eq!(p.records_total, 4);
    assert_eq!(p.issues.len(), 3);
    assert_eq!(count(&p, IngestReason::NumericRange), 3);
    let fields: Vec<&str> = p
        .issues
        .iter()
        .map(|i| i.detail.split(' ').next().unwrap_or(""))
        .collect();
    assert_eq!(fields, ["lat", "lon", "x_m"]);
    assert_eq!(p.sessions.len(), 1);
    assert_eq!(p.sessions[0].points.len(), 1);
}

#[test]
fn duplicate_trip_claims_and_summary_drift_quarantine_separately() {
    let p = fixture("duplicate_trip.csv");
    assert_eq!(p.records_total, 4);
    assert_eq!(p.issues.len(), 2);
    // Row 3 re-claims trip 5 for taxi 2: the first claim wins.
    assert_eq!(count(&p, IngestReason::DuplicateTrip), 1);
    // Row 4 keeps the identity but disagrees with the trip summary.
    assert_eq!(count(&p, IngestReason::SchemaMismatch), 1);
    assert_eq!(p.sessions.len(), 1);
    assert_eq!(p.sessions[0].taxi.0, 1);
    assert_eq!(p.sessions[0].points.len(), 2);
}
