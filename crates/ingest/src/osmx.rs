//! OSMX: a compact OSM-flavoured map exchange text format.
//!
//! OpenStreetMap's data model — shared *nodes* referenced by tagged
//! *ways* — adapted to the pipeline's planar frame, one record per line:
//!
//! ```text
//! OSMX 1
//! origin 25.4651 65.0121
//! bounds -1150 -1150 1150 1150
//! node 0 -1150 -575
//! way 121000 class=3 speed=40 flow=B nodes=0,1,2
//! obj TL 121000 12.5 -1100.25 -575
//! route T outer=14 inner=3 ways=121402,121403 axis=-1150:0;-900:0
//! signal 17
//! ```
//!
//! Unlike the trusted Digiroad interchange (which aborts on the first bad
//! record), OSMX parsing is lenient per record: a bad node, a way naming
//! a node that does not exist, an object on an unknown way each produce
//! one typed [`RecordIssue`] and are skipped. Only global invariants are
//! fatal — an unreadable header, a missing `origin`, or a surviving way
//! set that cannot form a road graph.
//!
//! Coordinates are written with exact-float formatting, and `route`/
//! `signal` records carry explicit graph node ids rather than re-derived
//! nearest-node lookups, so export → ingest rebuilds a bit-identical
//! city when the file is undamaged. (On a damaged file, quarantined ways
//! shift the rebuilt graph's node numbering; route/signal ids are still
//! range-checked, and the error budget bounds how much damage a run will
//! accept.)

use std::collections::{BTreeSet, HashMap, HashSet};

use taxitrace_geo::{BBox, GeoPoint, LocalProjection, Point, Polyline};
use taxitrace_roadnet::synth::{NamedRoad, SyntheticCity};
use taxitrace_roadnet::{
    ElementId, FlowDirection, FunctionalClass, MapObject, MapObjectKind, MapObjects, NodeId,
    RoadGraph, TrafficElement,
};

use crate::error::{IngestError, IngestReason, RecordIssue};
use crate::sanitize::{frame_lines, line_str, parse_f64, parse_u64, snippet, FieldFault};

const HEADER: &str = "OSMX 1";
/// Planar coordinate bound, metres (matches the trace schema).
const MAX_PLANAR_M: f64 = 1.0e7;
/// Speed-limit bound, km/h.
const MAX_SPEED_KMH: f64 = 1.0e4;

/// Result of parsing a map file: the rebuilt city, the issue ledger, and
/// the number of record candidates (the budget denominator).
#[derive(Debug)]
pub struct MapParse {
    pub city: SyntheticCity,
    /// One entry per rejected record, in line order.
    pub issues: Vec<RecordIssue>,
    /// Total record candidates: non-empty, non-comment lines after the
    /// header.
    pub records_total: usize,
}

fn issue(line: u64, reason: IngestReason, detail: impl Into<String>) -> RecordIssue {
    RecordIssue::new(line, reason, detail)
}

fn fault_reason(fault: FieldFault) -> IngestReason {
    match fault {
        FieldFault::BadSyntax => IngestReason::MalformedLine,
        FieldFault::OutOfDomain => IngestReason::NumericRange,
    }
}

/// A lexed `key=value` token.
fn tagged<'a>(token: &'a str, key: &str) -> Option<&'a str> {
    token.strip_prefix(key)?.strip_prefix('=')
}

/// Records held until the full scan finishes, so forward references
/// (an `obj` before its `way`, a `route` before the graph exists) resolve.
#[derive(Debug)]
struct PendingObj {
    line: u64,
    kind: MapObjectKind,
    element: u64,
    offset_m: f64,
    at: Point,
}

#[derive(Debug)]
struct PendingRoute {
    line: u64,
    name: String,
    outer: u64,
    inner: u64,
    ways: Vec<u64>,
    axis: Vec<Point>,
}

#[derive(Debug)]
struct PendingWay {
    line: u64,
    id: u64,
    class: FunctionalClass,
    speed: f64,
    flow: FlowDirection,
    nodes: Vec<u64>,
}

/// Parses arbitrary bytes as an OSMX map. Per-record damage degrades
/// into [`RecordIssue`]s; fatal errors are limited to a bad header, a
/// missing `origin`, or a way set that cannot form a graph.
pub fn parse_osmx(bytes: &[u8]) -> Result<MapParse, IngestError> {
    let lines = frame_lines(bytes);
    let mut it = lines.into_iter();
    let header = loop {
        match it.next() {
            None => return Err(IngestError::BadHeader("<empty>".into())),
            Some((_, [])) => continue,
            Some((_, raw)) => {
                break line_str(raw).map(str::trim).unwrap_or("<binary>").to_string()
            }
        }
    };
    if header != HEADER {
        return Err(IngestError::BadHeader(snippet(&header)));
    }

    let mut issues: Vec<RecordIssue> = Vec::new();
    let mut records_total = 0usize;
    let mut origin: Option<GeoPoint> = None;
    let mut bounds = BBox::EMPTY;
    let mut nodes: HashMap<u64, Point> = HashMap::new();
    let mut ways: Vec<PendingWay> = Vec::new();
    let mut way_ids: HashSet<u64> = HashSet::new();
    let mut objs: Vec<PendingObj> = Vec::new();
    let mut routes: Vec<PendingRoute> = Vec::new();
    let mut signals: Vec<(u64, u64)> = Vec::new();

    for (no, raw) in it {
        if raw.is_empty() {
            continue;
        }
        let Some(text) = line_str(raw) else {
            records_total += 1;
            issues.push(issue(no, IngestReason::MalformedLine, "invalid utf-8"));
            continue;
        };
        let text = text.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        records_total += 1;
        if text.len() > 1 << 20 {
            issues.push(issue(
                no,
                IngestReason::MalformedLine,
                format!("record oversized ({} bytes)", text.len()),
            ));
            continue;
        }
        let mut tokens = text.split_whitespace();
        // A non-empty trimmed line always has a first token.
        let tag = tokens.next().unwrap_or("");
        let rest: Vec<&str> = tokens.collect();
        let result = match tag {
            "origin" => parse_origin(no, &rest).map(|g| origin = Some(g)),
            "bounds" => parse_bounds(no, &rest).map(|b| bounds = b),
            "node" => parse_node(no, &rest, &mut nodes),
            "way" => parse_way(no, &rest, &mut way_ids).map(|w| ways.push(w)),
            "obj" => parse_obj(no, &rest).map(|o| objs.push(o)),
            "route" => parse_route(no, &rest).map(|r| routes.push(r)),
            "signal" => parse_u64(rest.first().copied().unwrap_or(""), u64::from(u32::MAX))
                .map(|id| signals.push((no, id)))
                .map_err(|f| issue(no, fault_reason(f), "bad signal node id")),
            other => Err(issue(
                no,
                IngestReason::MalformedLine,
                format!("unknown record tag {:?}", snippet(other)),
            )),
        };
        if let Err(i) = result {
            issues.push(i);
        }
    }

    let origin = origin.ok_or_else(|| IngestError::BadHeader("missing origin record".into()))?;
    let projection = LocalProjection::new(origin);

    // Resolve ways against the node table.
    let mut elements: Vec<TrafficElement> = Vec::new();
    for w in ways {
        match resolve_way(&w, &nodes) {
            Ok(e) => elements.push(e),
            Err(i) => issues.push(i),
        }
    }
    if elements.is_empty() {
        return Err(IngestError::Empty("no valid way records".into()));
    }
    let element_ids: HashSet<u64> = elements.iter().map(|e| e.id.0).collect();
    let graph = RoadGraph::build(&elements, projection)?;
    let num_nodes = graph.num_nodes() as u64;

    let mut objects: Vec<MapObject> = Vec::new();
    for o in objs {
        if !element_ids.contains(&o.element) {
            issues.push(issue(
                o.line,
                IngestReason::DanglingRef,
                format!("obj references unknown way {}", o.element),
            ));
            continue;
        }
        objects.push(MapObject {
            kind: o.kind,
            location: o.at,
            element: ElementId(o.element),
            offset_m: o.offset_m,
        });
    }

    let mut od_roads: Vec<NamedRoad> = Vec::new();
    for r in routes {
        if let Some(&missing) = r.ways.iter().find(|w| !element_ids.contains(w)) {
            issues.push(issue(
                r.line,
                IngestReason::DanglingRef,
                format!("route {:?} references unknown way {missing}", snippet(&r.name)),
            ));
            continue;
        }
        if r.outer >= num_nodes || r.inner >= num_nodes {
            issues.push(issue(
                r.line,
                IngestReason::DanglingRef,
                format!("route {:?} endpoint node out of range", snippet(&r.name)),
            ));
            continue;
        }
        let Ok(axis) = Polyline::new(r.axis) else {
            issues.push(issue(
                r.line,
                IngestReason::MalformedLine,
                format!("route {:?} axis is not a polyline", snippet(&r.name)),
            ));
            continue;
        };
        od_roads.push(NamedRoad {
            name: r.name,
            axis,
            elements: r.ways.into_iter().map(ElementId).collect(),
            outer_node: NodeId(r.outer as u32),
            inner_node: NodeId(r.inner as u32),
        });
    }

    let mut signalized: HashSet<NodeId> = HashSet::new();
    for (line, id) in signals {
        if id >= num_nodes {
            issues.push(issue(
                line,
                IngestReason::DanglingRef,
                format!("signal node {id} out of range (graph has {num_nodes} nodes)"),
            ));
            continue;
        }
        signalized.insert(NodeId(id as u32));
    }

    issues.sort_by_key(|i| i.record);
    let city = SyntheticCity {
        graph,
        objects: MapObjects::new(objects),
        od_roads,
        center_area: bounds,
        signalized,
        elements,
    };
    Ok(MapParse { city, issues, records_total })
}

fn parse_origin(no: u64, rest: &[&str]) -> Result<GeoPoint, RecordIssue> {
    if rest.len() != 2 {
        return Err(issue(no, IngestReason::MalformedLine, "origin needs <lon> <lat>"));
    }
    let lon = parse_f64(rest[0], 180.0)
        .map_err(|f| issue(no, fault_reason(f), "bad origin lon"))?;
    let lat = parse_f64(rest[1], 90.0)
        .map_err(|f| issue(no, fault_reason(f), "bad origin lat"))?;
    Ok(GeoPoint { lon, lat })
}

fn parse_bounds(no: u64, rest: &[&str]) -> Result<BBox, RecordIssue> {
    if rest.len() != 4 {
        return Err(issue(no, IngestReason::MalformedLine, "bounds needs four numbers"));
    }
    let mut v = [0.0f64; 4];
    for (i, s) in rest.iter().enumerate() {
        v[i] = parse_f64(s, MAX_PLANAR_M)
            .map_err(|f| issue(no, fault_reason(f), format!("bad bounds value {}", i + 1)))?;
    }
    Ok(BBox::from_corners(Point { x: v[0], y: v[1] }, Point { x: v[2], y: v[3] }))
}

fn parse_node(
    no: u64,
    rest: &[&str],
    nodes: &mut HashMap<u64, Point>,
) -> Result<(), RecordIssue> {
    if rest.len() != 3 {
        return Err(issue(no, IngestReason::MalformedLine, "node needs <id> <x> <y>"));
    }
    let id = parse_u64(rest[0], u64::MAX)
        .map_err(|f| issue(no, fault_reason(f), "bad node id"))?;
    let x = parse_f64(rest[1], MAX_PLANAR_M)
        .map_err(|f| issue(no, fault_reason(f), "bad node x"))?;
    let y = parse_f64(rest[2], MAX_PLANAR_M)
        .map_err(|f| issue(no, fault_reason(f), "bad node y"))?;
    if nodes.contains_key(&id) {
        return Err(issue(
            no,
            IngestReason::SchemaMismatch,
            format!("duplicate node id {id}"),
        ));
    }
    nodes.insert(id, Point { x, y });
    Ok(())
}

fn parse_way(
    no: u64,
    rest: &[&str],
    way_ids: &mut HashSet<u64>,
) -> Result<PendingWay, RecordIssue> {
    if rest.len() != 5 {
        return Err(issue(
            no,
            IngestReason::MalformedLine,
            "way needs <id> class= speed= flow= nodes=",
        ));
    }
    let id = parse_u64(rest[0], u64::MAX)
        .map_err(|f| issue(no, fault_reason(f), "bad way id"))?;
    let class = match tagged(rest[1], "class") {
        Some("1") => FunctionalClass::Arterial,
        Some("2") => FunctionalClass::Collector,
        Some("3") => FunctionalClass::Local,
        _ => return Err(issue(no, IngestReason::MalformedLine, "bad way class")),
    };
    let speed = tagged(rest[2], "speed")
        .ok_or_else(|| issue(no, IngestReason::MalformedLine, "missing way speed"))
        .and_then(|s| {
            parse_f64(s, MAX_SPEED_KMH).map_err(|f| issue(no, fault_reason(f), "bad way speed"))
        })?;
    let flow = match tagged(rest[3], "flow") {
        Some("B") => FlowDirection::Both,
        Some("F") => FlowDirection::WithDigitization,
        Some("A") => FlowDirection::AgainstDigitization,
        _ => return Err(issue(no, IngestReason::MalformedLine, "bad way flow")),
    };
    let refs = tagged(rest[4], "nodes")
        .ok_or_else(|| issue(no, IngestReason::MalformedLine, "missing way nodes"))?;
    let nodes: Vec<u64> = refs
        .split(',')
        .map(|s| parse_u64(s, u64::MAX))
        .collect::<Result<_, _>>()
        .map_err(|f| issue(no, fault_reason(f), "bad way node ref"))?;
    if nodes.len() < 2 {
        return Err(issue(no, IngestReason::MalformedLine, "way needs at least two nodes"));
    }
    if !way_ids.insert(id) {
        return Err(issue(
            no,
            IngestReason::SchemaMismatch,
            format!("duplicate way id {id}"),
        ));
    }
    Ok(PendingWay { line: no, id, class, speed, flow, nodes })
}

fn resolve_way(w: &PendingWay, nodes: &HashMap<u64, Point>) -> Result<TrafficElement, RecordIssue> {
    let mut pts = Vec::with_capacity(w.nodes.len());
    for r in &w.nodes {
        match nodes.get(r) {
            Some(&p) => pts.push(p),
            None => {
                return Err(issue(
                    w.line,
                    IngestReason::DanglingRef,
                    format!("way {} references unknown node {r}", w.id),
                ))
            }
        }
    }
    let geometry = Polyline::new(pts).map_err(|e| {
        issue(w.line, IngestReason::MalformedLine, format!("way {} geometry: {e:?}", w.id))
    })?;
    Ok(TrafficElement {
        id: ElementId(w.id),
        geometry,
        class: w.class,
        speed_limit_kmh: w.speed,
        flow: w.flow,
    })
}

fn parse_obj(no: u64, rest: &[&str]) -> Result<PendingObj, RecordIssue> {
    if rest.len() != 5 {
        return Err(issue(
            no,
            IngestReason::MalformedLine,
            "obj needs <kind> <way> <offset> <x> <y>",
        ));
    }
    let kind = match rest[0] {
        "TL" => MapObjectKind::TrafficLight,
        "BS" => MapObjectKind::BusStop,
        "PC" => MapObjectKind::PedestrianCrossing,
        other => {
            return Err(issue(
                no,
                IngestReason::MalformedLine,
                format!("unknown obj kind {:?}", snippet(other)),
            ))
        }
    };
    let element = parse_u64(rest[1], u64::MAX)
        .map_err(|f| issue(no, fault_reason(f), "bad obj way id"))?;
    let offset_m = parse_f64(rest[2], MAX_PLANAR_M)
        .map_err(|f| issue(no, fault_reason(f), "bad obj offset"))?;
    let x = parse_f64(rest[3], MAX_PLANAR_M)
        .map_err(|f| issue(no, fault_reason(f), "bad obj x"))?;
    let y = parse_f64(rest[4], MAX_PLANAR_M)
        .map_err(|f| issue(no, fault_reason(f), "bad obj y"))?;
    Ok(PendingObj { line: no, kind, element, offset_m, at: Point { x, y } })
}

fn parse_route(no: u64, rest: &[&str]) -> Result<PendingRoute, RecordIssue> {
    if rest.len() != 5 {
        return Err(issue(
            no,
            IngestReason::MalformedLine,
            "route needs <name> outer= inner= ways= axis=",
        ));
    }
    let name = rest[0].to_string();
    let outer = tagged(rest[1], "outer")
        .ok_or_else(|| issue(no, IngestReason::MalformedLine, "missing route outer"))
        .and_then(|s| {
            parse_u64(s, u64::from(u32::MAX))
                .map_err(|f| issue(no, fault_reason(f), "bad route outer node"))
        })?;
    let inner = tagged(rest[2], "inner")
        .ok_or_else(|| issue(no, IngestReason::MalformedLine, "missing route inner"))
        .and_then(|s| {
            parse_u64(s, u64::from(u32::MAX))
                .map_err(|f| issue(no, fault_reason(f), "bad route inner node"))
        })?;
    let ways: Vec<u64> = tagged(rest[3], "ways")
        .ok_or_else(|| issue(no, IngestReason::MalformedLine, "missing route ways"))?
        .split(',')
        .map(|s| parse_u64(s, u64::MAX))
        .collect::<Result<_, _>>()
        .map_err(|f| issue(no, fault_reason(f), "bad route way id"))?;
    let axis: Vec<Point> = tagged(rest[4], "axis")
        .ok_or_else(|| issue(no, IngestReason::MalformedLine, "missing route axis"))?
        .split(';')
        .map(|pair| {
            let (xs, ys) = pair
                .split_once(':')
                .ok_or_else(|| issue(no, IngestReason::MalformedLine, "bad axis pair"))?;
            let x = parse_f64(xs, MAX_PLANAR_M)
                .map_err(|f| issue(no, fault_reason(f), "bad axis x"))?;
            let y = parse_f64(ys, MAX_PLANAR_M)
                .map_err(|f| issue(no, fault_reason(f), "bad axis y"))?;
            Ok(Point { x, y })
        })
        .collect::<Result<_, RecordIssue>>()?;
    Ok(PendingRoute { line: no, name, outer, inner, ways, axis })
}

/// Exports a city to OSMX with exact-float coordinates. Shared element
/// vertices (junction endpoints) become shared nodes, keyed by exact bit
/// pattern; `route`/`signal` records carry explicit graph node ids so a
/// re-import needs no nearest-node re-derivation.
pub fn export_osmx(city: &SyntheticCity) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    let o = city.graph.projection().origin();
    let _ = writeln!(out, "origin {} {}", o.lon, o.lat);
    let c = city.center_area;
    if c.min_x.is_finite() {
        let _ = writeln!(out, "bounds {} {} {} {}", c.min_x, c.min_y, c.max_x, c.max_y);
    }
    // Assign node ids in first-encounter order over element vertices,
    // deduplicated by exact coordinate bits.
    let mut node_of: HashMap<(u64, u64), u64> = HashMap::new();
    for e in &city.elements {
        for p in e.geometry.vertices() {
            let key = (p.x.to_bits(), p.y.to_bits());
            let next = node_of.len() as u64;
            let id = *node_of.entry(key).or_insert(next);
            if id == next {
                let _ = writeln!(out, "node {next} {} {}", p.x, p.y);
            }
        }
    }
    for e in &city.elements {
        let refs: Vec<String> = e
            .geometry
            .vertices()
            .iter()
            .map(|p| node_of[&(p.x.to_bits(), p.y.to_bits())].to_string())
            .collect();
        let flow = match e.flow {
            FlowDirection::Both => "B",
            FlowDirection::WithDigitization => "F",
            FlowDirection::AgainstDigitization => "A",
        };
        let _ = writeln!(
            out,
            "way {} class={} speed={} flow={} nodes={}",
            e.id.0,
            e.class.level(),
            e.speed_limit_kmh,
            flow,
            refs.join(",")
        );
    }
    for obj in city.objects.all() {
        let kind = match obj.kind {
            MapObjectKind::TrafficLight => "TL",
            MapObjectKind::BusStop => "BS",
            MapObjectKind::PedestrianCrossing => "PC",
        };
        let _ = writeln!(
            out,
            "obj {kind} {} {} {} {}",
            obj.element.0, obj.offset_m, obj.location.x, obj.location.y
        );
    }
    for r in &city.od_roads {
        let ways: Vec<String> = r.elements.iter().map(|e| e.0.to_string()).collect();
        let axis: Vec<String> =
            r.axis.vertices().iter().map(|p| format!("{}:{}", p.x, p.y)).collect();
        // Names are single tokens in this format; whitespace would break
        // the framing, so it is folded to underscores on export.
        let name: String =
            r.name.chars().map(|ch| if ch.is_whitespace() { '_' } else { ch }).collect();
        let _ = writeln!(
            out,
            "route {name} outer={} inner={} ways={} axis={}",
            r.outer_node.0,
            r.inner_node.0,
            ways.join(","),
            axis.join(";")
        );
    }
    // lint:allow(determinism): collected straight into a BTreeSet, which sorts the ids
    let ordered: BTreeSet<u32> = city.signalized.iter().map(|n| n.0).collect();
    for n in ordered {
        let _ = writeln!(out, "signal {n}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_roadnet::synth::{generate, OuluConfig};

    #[test]
    fn full_city_round_trip_is_bit_exact() {
        let city = generate(&OuluConfig::default());
        let text = export_osmx(&city);
        assert!(text.starts_with("OSMX 1\n"));
        let parsed = parse_osmx(text.as_bytes()).expect("valid map ingests");
        assert!(parsed.issues.is_empty(), "{:?}", &parsed.issues[..parsed.issues.len().min(5)]);
        let back = parsed.city;

        assert_eq!(back.elements, city.elements, "elements bit-identical");
        assert_eq!(back.graph.num_nodes(), city.graph.num_nodes());
        assert_eq!(back.graph.num_edges(), city.graph.num_edges());
        assert_eq!(back.objects.all(), city.objects.all());
        assert_eq!(back.signalized, city.signalized);
        assert_eq!(back.od_roads.len(), city.od_roads.len());
        for (a, b) in city.od_roads.iter().zip(&back.od_roads) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.elements, b.elements);
            assert_eq!(a.outer_node, b.outer_node);
            assert_eq!(a.inner_node, b.inner_node);
            assert_eq!(a.axis.vertices(), b.axis.vertices());
        }
        assert_eq!(back.center_area, city.center_area);
    }

    #[test]
    fn header_and_origin_are_fatal() {
        assert!(matches!(parse_osmx(b""), Err(IngestError::BadHeader(_))));
        assert!(matches!(parse_osmx(b"OSMX 2\n"), Err(IngestError::BadHeader(_))));
        assert!(matches!(parse_osmx(b"\xFF\xFE\n"), Err(IngestError::BadHeader(_))));
        let no_origin = "OSMX 1\nnode 0 0 0\nnode 1 9 9\nway 5 class=3 speed=40 flow=B nodes=0,1\n";
        assert!(matches!(parse_osmx(no_origin.as_bytes()), Err(IngestError::BadHeader(_))));
    }

    #[test]
    fn damaged_records_quarantine_and_the_rest_survive() {
        let text = "OSMX 1\norigin 25.4651 65.0121\n\
            node 0 0 0\nnode 1 100 0\nnode 2 100 100\n\
            node 2 7 7\n\
            node bad 1 2\n\
            way 10 class=3 speed=40 flow=B nodes=0,1\n\
            way 11 class=2 speed=50 flow=B nodes=1,2\n\
            way 12 class=3 speed=40 flow=B nodes=1,99\n\
            way 13 class=9 speed=40 flow=B nodes=0,2\n\
            obj TL 10 5.0 50 0\n\
            obj TL 999 5.0 50 0\n\
            signal 0\nsignal 4000\n";
        let parsed = parse_osmx(text.as_bytes()).expect("graph still forms");
        let city = parsed.city;
        assert_eq!(city.elements.len(), 2, "ways 10 and 11 survive");
        assert_eq!(city.objects.all().len(), 1);
        assert_eq!(city.signalized.len(), 1);
        let mut by_reason: std::collections::BTreeMap<IngestReason, usize> =
            Default::default();
        for i in &parsed.issues {
            *by_reason.entry(i.reason).or_default() += 1;
        }
        assert_eq!(by_reason.get(&IngestReason::SchemaMismatch), Some(&1), "dup node");
        assert_eq!(by_reason.get(&IngestReason::MalformedLine), Some(&2), "bad id + class");
        assert_eq!(
            by_reason.get(&IngestReason::DanglingRef),
            Some(&3),
            "way→node, obj→way, signal range"
        );
        assert_eq!(parsed.records_total, 14);
    }

    #[test]
    fn no_valid_ways_is_fatal_empty() {
        let text = "OSMX 1\norigin 25 65\nnode 0 0 0\n";
        assert!(matches!(parse_osmx(text.as_bytes()), Err(IngestError::Empty(_))));
    }

    #[test]
    fn comments_and_blank_lines_are_not_records() {
        let city = generate(&OuluConfig::default());
        let mut text = export_osmx(&city);
        text.insert_str("OSMX 1\n".len(), "# comment\n\n");
        let parsed = parse_osmx(text.as_bytes()).expect("still valid");
        assert!(parsed.issues.is_empty());
    }
}
