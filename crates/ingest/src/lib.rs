//! Untrusted-input ingestion for external trace and map formats.
//!
//! Everything upstream of this crate trusts its own bytes: the simulator,
//! the checksummed store, the stream all produce data the pipeline itself
//! wrote. This crate is the opposite end of that trust spectrum — it
//! accepts **arbitrary bytes** claiming to be one of two interchange
//! formats and turns whatever is salvageable into the pipeline's native
//! types:
//!
//! * a CSV trace schema (one route point per line, denormalised device
//!   trip summary) parsed into [`taxitrace_traces::RawTrip`] sessions —
//!   see [`tracecsv`];
//! * a compact OSM-flavoured map exchange text (`node`/`way`/`obj`/
//!   `route`/`signal` records) parsed into a
//!   [`taxitrace_roadnet::synth::SyntheticCity`] — see [`osmx`].
//!
//! The contract mirrors the store's salvage path: parsing is
//! **record-framed and panic-free**. A malformed line, field, or
//! dangling reference never aborts the file — it becomes one typed
//! [`RecordIssue`] and the record is skipped, so callers degrade
//! record-by-record and enforce an error budget over the issue count.
//! Only global invariants (unreadable header, a node set that cannot
//! form a road graph) are fatal, as a typed [`IngestError`].
//!
//! Both formats have exact-float exporters ([`tracecsv::export_trace_csv`],
//! [`osmx::export_osmx`]): floats are written with Rust's shortest
//! round-trip formatting, so export → ingest reproduces every coordinate,
//! speed and timestamp bit-for-bit and the batch study fingerprint is
//! byte-identical across the round trip.
//!
//! [`fuzz`] holds the seeded byte-level mutators (truncation, bit flips,
//! field swaps, encoding garbage, CRLF/BOM, numeric extremes) that the
//! adversarial test suite drives over ≥10k inputs to prove the
//! never-panics and deterministic-quarantine-counts properties.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod error;
pub mod fuzz;
pub mod osmx;
pub mod sanitize;
pub mod tracecsv;

pub use error::{IngestError, IngestReason, RecordIssue};
pub use fuzz::{mutate, INGEST_SEED_SALT};
pub use osmx::{export_osmx, parse_osmx, MapParse};
pub use tracecsv::{export_trace_csv, parse_trace_csv, TraceParse, TRACE_HEADER};
