//! Byte-level framing and field lexing for untrusted text.
//!
//! Every decision that turns arbitrary bytes into a candidate record
//! lives here, so both parsers share one set of framing rules:
//!
//! * records are framed by `\n`; a trailing `\r` is stripped (CRLF
//!   input parses identically to LF input);
//! * a UTF-8 byte-order mark on the first line is stripped;
//! * a line must be valid UTF-8 to be a record at all;
//! * no single field may exceed [`MAX_FIELD_LEN`] bytes — a bound that
//!   keeps a hostile multi-megabyte "field" from ballooning detail
//!   strings and memory while parsing;
//! * numbers must lex exactly (`str::parse`) and floats must be finite.
//!
//! Lexing failures distinguish *syntax* (not a number at all) from
//! *domain* (a number outside its allowed range) so the caller can map
//! them onto different quarantine reasons.

/// Upper bound on a single field's byte length. Generous for any real
/// value (the longest exact-float rendering is < 32 bytes) and small
/// enough that adversarial input cannot smuggle megabytes through one
/// record.
pub const MAX_FIELD_LEN: usize = 4096;

/// How a scalar field failed to lex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldFault {
    /// Not a value of the expected type at all.
    BadSyntax,
    /// Lexed, but outside the permitted domain (non-finite, out of range).
    OutOfDomain,
}

/// Splits `bytes` into `(1-based line number, line)` pairs: `\n`-framed,
/// trailing `\r` stripped, a UTF-8 BOM on the first line stripped, and a
/// final unterminated line kept (truncated files still yield their tail
/// as a record candidate). Empty lines are *kept* so physical line
/// numbers stay addressable; callers skip them.
pub fn frame_lines(bytes: &[u8]) -> Vec<(u64, &[u8])> {
    let body = bytes.strip_prefix(&[0xEF, 0xBB, 0xBF][..]).unwrap_or(bytes);
    let mut out = Vec::new();
    for (i, mut line) in body.split(|&b| b == b'\n').enumerate() {
        if let Some(stripped) = line.strip_suffix(&[b'\r'][..]) {
            line = stripped;
        }
        out.push((i as u64 + 1, line));
    }
    // `split` yields one trailing empty slice for `\n`-terminated input;
    // drop it so a well-formed file has exactly one entry per line.
    if out.last().is_some_and(|(_, l)| l.is_empty()) {
        out.pop();
    }
    out
}

/// Decodes a framed line as UTF-8. `None` means the line cannot be a
/// record (the caller quarantines it as malformed).
pub fn line_str(raw: &[u8]) -> Option<&str> {
    std::str::from_utf8(raw).ok()
}

/// Checks the per-field length bound. Returns the index of the first
/// oversized field, if any.
pub fn oversized_field(fields: &[&str]) -> Option<usize> {
    fields.iter().position(|f| f.len() > MAX_FIELD_LEN)
}

/// Lexes a finite `f64` whose absolute value is at most `max_abs`.
pub fn parse_f64(s: &str, max_abs: f64) -> Result<f64, FieldFault> {
    let v: f64 = s.trim().parse().map_err(|_| FieldFault::BadSyntax)?;
    if !v.is_finite() || v.abs() > max_abs {
        return Err(FieldFault::OutOfDomain);
    }
    Ok(v)
}

/// Lexes an `i64` whose absolute value is at most `max_abs`.
pub fn parse_i64(s: &str, max_abs: i64) -> Result<i64, FieldFault> {
    let v: i64 = s.trim().parse().map_err(|_| FieldFault::BadSyntax)?;
    if v.abs() > max_abs {
        return Err(FieldFault::OutOfDomain);
    }
    Ok(v)
}

/// Lexes a `u64` at most `max`.
pub fn parse_u64(s: &str, max: u64) -> Result<u64, FieldFault> {
    let v: u64 = s.trim().parse().map_err(|_| FieldFault::BadSyntax)?;
    if v > max {
        return Err(FieldFault::OutOfDomain);
    }
    Ok(v)
}

/// Truncates a hostile input snippet for inclusion in a quarantine
/// detail string (never echoes unbounded attacker bytes into logs).
pub fn snippet(s: &str) -> String {
    const MAX: usize = 48;
    if s.len() <= MAX {
        return s.to_string();
    }
    let mut end = MAX;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_lf_crlf_and_bom_identically() {
        let plain = frame_lines(b"a,b\nc,d\n");
        let crlf = frame_lines(b"a,b\r\nc,d\r\n");
        let bom = frame_lines(b"\xEF\xBB\xBFa,b\nc,d\n");
        assert_eq!(plain, crlf);
        assert_eq!(plain, bom);
        assert_eq!(plain, vec![(1, &b"a,b"[..]), (2, &b"c,d"[..])]);
    }

    #[test]
    fn unterminated_tail_is_kept() {
        let lines = frame_lines(b"a\nb");
        assert_eq!(lines, vec![(1, &b"a"[..]), (2, &b"b"[..])]);
    }

    #[test]
    fn empty_interior_lines_keep_numbering() {
        let lines = frame_lines(b"a\n\nb\n");
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], (2, &b""[..]));
        assert_eq!(lines[2], (3, &b"b"[..]));
    }

    #[test]
    fn float_lexing_separates_syntax_from_domain() {
        assert_eq!(parse_f64("1.5", 10.0), Ok(1.5));
        assert_eq!(parse_f64("xyz", 10.0), Err(FieldFault::BadSyntax));
        assert_eq!(parse_f64("NaN", 10.0), Err(FieldFault::OutOfDomain));
        assert_eq!(parse_f64("inf", 10.0), Err(FieldFault::OutOfDomain));
        assert_eq!(parse_f64("11.0", 10.0), Err(FieldFault::OutOfDomain));
        assert_eq!(parse_f64("-0.0", 10.0).map(f64::to_bits), Ok((-0.0f64).to_bits()));
    }

    #[test]
    fn int_lexing_bounds() {
        assert_eq!(parse_i64(" 42", 100), Ok(42));
        assert_eq!(parse_i64("1e3", 100), Err(FieldFault::BadSyntax));
        assert_eq!(parse_i64("-101", 100), Err(FieldFault::OutOfDomain));
        assert_eq!(parse_u64("65536", u16::MAX as u64), Err(FieldFault::OutOfDomain));
    }

    #[test]
    fn snippet_never_splits_utf8_or_echoes_unbounded() {
        let long = "ä".repeat(1000);
        let s = snippet(&long);
        assert!(s.len() < 60);
        assert!(s.ends_with('…'));
        assert_eq!(snippet("short"), "short");
    }

    #[test]
    fn oversized_field_detection() {
        let big = "A".repeat(MAX_FIELD_LEN + 1);
        let fields = ["ok", big.as_str(), "ok"];
        assert_eq!(oversized_field(&fields), Some(1));
        assert_eq!(oversized_field(&["a", "b"]), None);
    }
}
