//! Seeded byte-level mutators for the adversarial ingest tests.
//!
//! [`mutate`] is a pure function of `(bytes, seed)`, built on the same
//! xoshiro/fork idiom as the chaos `FaultPlan`: the adversarial corpus
//! is *derived*, not stored — any seed regenerates the identical mutated
//! input on any machine, so "never panics" and "deterministic quarantine
//! counts" are replayable properties, not flaky observations.
//!
//! The operator set covers the damage classes real trace dumps exhibit
//! (and a few only attackers produce): truncation mid-record, bit flips,
//! swapped CSV fields, raw binary garbage, CRLF rewrites, a UTF-8 BOM,
//! and numeric extremes (`NaN`, `±inf`, overflow literals, `-0.0`).

use taxitrace_traces::Rng;

/// Seed salt for the ingest mutators, keeping their streams disjoint
/// from the chaos (`0xC4A0_5F41`), disk (`0xD15C_C0DE`) and stream
/// (`0x57E4_FEED`) fault planes.
pub const INGEST_SEED_SALT: u64 = 0xD1E7_F00D;

/// Replacement literals for the numeric-extreme operator.
const EXTREMES: [&str; 9] = [
    "NaN",
    "inf",
    "-inf",
    "1e308",
    "-1e309",
    "-0.0",
    "99999999999999999999",
    "18446744073709551616",
    "0x41",
];

/// Applies 1–4 seeded mutation operators to `bytes`. Deterministic:
/// identical `(bytes, seed)` always produce identical output. The result
/// may be shorter, longer, or not UTF-8 at all — that is the point.
pub fn mutate(bytes: &[u8], seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed ^ INGEST_SEED_SALT).fork(1);
    let mut out = bytes.to_vec();
    let ops = 1 + rng.below(4);
    for _ in 0..ops {
        match rng.below(7) {
            0 => truncate(&mut out, &mut rng),
            1 => bit_flips(&mut out, &mut rng),
            2 => field_swap(&mut out, &mut rng),
            3 => garbage(&mut out, &mut rng),
            4 => crlf(&mut out),
            5 => bom(&mut out),
            _ => numeric_extreme(&mut out, &mut rng),
        }
    }
    out
}

/// Cuts the input at a random byte offset — mid-record, mid-field,
/// mid-UTF-8-sequence, anywhere.
fn truncate(out: &mut Vec<u8>, rng: &mut Rng) {
    let at = rng.below(out.len() + 1);
    out.truncate(at);
}

/// Flips 1–8 random bits anywhere in the buffer.
fn bit_flips(out: &mut [u8], rng: &mut Rng) {
    if out.is_empty() {
        return;
    }
    for _ in 0..1 + rng.below(8) {
        let i = rng.below(out.len());
        out[i] ^= 1 << rng.below(8);
    }
}

/// Picks one line and swaps two of its comma-separated fields.
fn field_swap(out: &mut Vec<u8>, rng: &mut Rng) {
    let lines: Vec<(usize, usize)> = line_spans(out);
    if lines.is_empty() {
        return;
    }
    let (start, end) = lines[rng.below(lines.len())];
    let line = &out[start..end];
    let mut bounds = vec![start];
    bounds.extend(line.iter().enumerate().filter(|(_, &b)| b == b',').map(|(i, _)| start + i));
    bounds.push(end);
    // `bounds` frames n fields with n+1 fence posts; need ≥ 2 fields.
    if bounds.len() < 3 {
        return;
    }
    let n = bounds.len() - 1;
    let a = rng.below(n);
    let b = rng.below(n);
    let field = |i: usize| -> Vec<u8> {
        let lo = if i == 0 { bounds[0] } else { bounds[i] + 1 };
        out[lo..bounds[i + 1]].to_vec()
    };
    let (lo, hi) = (a.min(b), a.max(b));
    if lo == hi {
        return;
    }
    let (fa, fb) = (field(lo), field(hi));
    let mut rebuilt = Vec::with_capacity(out.len());
    rebuilt.extend_from_slice(&out[..start]);
    for i in 0..n {
        if i > 0 {
            rebuilt.push(b',');
        }
        if i == lo {
            rebuilt.extend_from_slice(&fb);
        } else if i == hi {
            rebuilt.extend_from_slice(&fa);
        } else {
            rebuilt.extend_from_slice(&field(i));
        }
    }
    rebuilt.extend_from_slice(&out[end..]);
    *out = rebuilt;
}

/// Inserts 1–16 raw random bytes (any value, including NUL and invalid
/// UTF-8 lead bytes) at a random offset.
fn garbage(out: &mut Vec<u8>, rng: &mut Rng) {
    let at = rng.below(out.len() + 1);
    let n = 1 + rng.below(16);
    let junk: Vec<u8> = (0..n).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
    out.splice(at..at, junk);
}

/// Rewrites every LF as CRLF (idempotent on already-CRLF input is not
/// required — doubling the CR is itself a fine adversarial case).
fn crlf(out: &mut Vec<u8>) {
    let mut rebuilt = Vec::with_capacity(out.len() + out.len() / 16);
    for &b in out.iter() {
        if b == b'\n' {
            rebuilt.push(b'\r');
        }
        rebuilt.push(b);
    }
    *out = rebuilt;
}

/// Prepends a UTF-8 byte-order mark.
fn bom(out: &mut Vec<u8>) {
    out.splice(0..0, [0xEF, 0xBB, 0xBF]);
}

/// Replaces one comma- or space-delimited token on a random line with a
/// numeric-extreme literal.
fn numeric_extreme(out: &mut Vec<u8>, rng: &mut Rng) {
    let lines = line_spans(out);
    if lines.is_empty() {
        return;
    }
    let (start, end) = lines[rng.below(lines.len())];
    let mut tokens: Vec<(usize, usize)> = Vec::new();
    let mut tok_start = start;
    for (i, &b) in out.iter().enumerate().take(end).skip(start) {
        if b == b',' || b == b' ' {
            if i > tok_start {
                tokens.push((tok_start, i));
            }
            tok_start = i + 1;
        }
    }
    if end > tok_start {
        tokens.push((tok_start, end));
    }
    if tokens.is_empty() {
        return;
    }
    let (lo, hi) = tokens[rng.below(tokens.len())];
    let lit = EXTREMES[rng.below(EXTREMES.len())].as_bytes();
    out.splice(lo..hi, lit.iter().copied());
}

/// `(start, end)` byte spans of non-empty lines (excluding the `\n`).
fn line_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            if i > start {
                spans.push((start, i));
            }
            start = i + 1;
        }
    }
    if bytes.len() > start {
        spans.push((start, bytes.len()));
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &[u8] = b"taxi_id,trip_id\n1,2\n3,4\n";

    #[test]
    fn mutation_is_deterministic_per_seed() {
        for seed in 0..200u64 {
            assert_eq!(mutate(BASE, seed), mutate(BASE, seed), "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let distinct: std::collections::BTreeSet<Vec<u8>> =
            (0..64).map(|s| mutate(BASE, s)).collect();
        assert!(distinct.len() > 16, "only {} distinct mutants", distinct.len());
    }

    #[test]
    fn empty_input_never_panics() {
        for seed in 0..100u64 {
            mutate(b"", seed);
        }
    }

    #[test]
    fn operators_cover_their_damage_classes() {
        let mut saw_shorter = false;
        let mut saw_bom = false;
        let mut saw_cr = false;
        let mut saw_extreme = false;
        let mut saw_non_utf8 = false;
        for seed in 0..2000u64 {
            let m = mutate(BASE, seed);
            saw_shorter |= m.len() < BASE.len();
            saw_bom |= m.starts_with(&[0xEF, 0xBB, 0xBF]);
            saw_cr |= m.contains(&b'\r');
            saw_extreme |= String::from_utf8_lossy(&m).contains("NaN");
            saw_non_utf8 |= std::str::from_utf8(&m).is_err();
        }
        assert!(saw_shorter && saw_bom && saw_cr && saw_extreme && saw_non_utf8);
    }
}
