//! The CSV trace interchange schema: one route point per line.
//!
//! ```text
//! taxi_id,trip_id,point_id,t,lat,lon,x_m,y_m,speed_kmh,heading_deg,fuel_ml,trip_start_t,trip_end_t,trip_time_s,trip_dist_m,trip_fuel_ml
//! 3,17,0,1650000000,65.0121,25.4651,12.5,-3.25,38.4,91.2,140.0,1650000000,1650002400,2400,10250.5,820.0
//! ```
//!
//! The schema is GTFS-flavoured: flat text, one record per line, the
//! device trip summary denormalised onto every point (real-world trace
//! dumps do exactly this — each GPS fix row repeats the trip header).
//! Timestamps are integer epoch seconds; floats are written by
//! [`export_trace_csv`] with Rust's shortest round-trip formatting, so a
//! re-parse recovers the identical bit pattern and the study fingerprint
//! survives an export → ingest round trip byte-for-byte.
//!
//! Parsing is lenient per record and strict per field: every line either
//! becomes a [`RoutePoint`] or one typed [`RecordIssue`], never a panic
//! and never an abort. Field lexing runs in parallel (order-preserving
//! [`taxitrace_exec::par_map`]), while grouping into trips is a
//! sequential fold over line order — so the issue ledger is deterministic
//! at any worker count.

use std::collections::HashMap;

use taxitrace_geo::{GeoPoint, Point};
use taxitrace_timebase::{Duration, Timestamp};
use taxitrace_traces::{PointTruth, RawTrip, RoutePoint, TaxiId, TripId};

use crate::error::{IngestReason, RecordIssue};
use crate::sanitize::{
    frame_lines, line_str, oversized_field, parse_f64, parse_i64, parse_u64, snippet,
    FieldFault,
};

/// The header line every trace file must start with (column order is the
/// schema; a different header is a schema mismatch, not a record).
pub const TRACE_HEADER: &str = "taxi_id,trip_id,point_id,t,lat,lon,x_m,y_m,speed_kmh,\
heading_deg,fuel_ml,trip_start_t,trip_end_t,trip_time_s,trip_dist_m,trip_fuel_ml";

const FIELDS: usize = 16;
/// Epoch-second bound (±, covers years far beyond any plausible trace).
const MAX_EPOCH_S: i64 = 1_000_000_000_000;
/// Planar coordinate bound, metres (±10 000 km from the local origin).
const MAX_PLANAR_M: f64 = 1.0e7;
/// Speed bound, km/h: generous for any land vehicle, tight enough to
/// reject numeric-extreme garbage.
const MAX_SPEED_KMH: f64 = 1.0e4;
/// Bound for the remaining scalar fields (headings, fuel, distances).
const MAX_SCALAR: f64 = 1.0e12;

/// Result of parsing a trace file: the salvageable sessions, the issue
/// ledger, and how many record candidates the file contained (the budget
/// denominator).
#[derive(Debug)]
pub struct TraceParse {
    /// Reassembled sessions, in order of each trip's first valid record.
    pub sessions: Vec<RawTrip>,
    /// One entry per rejected record, in line order.
    pub issues: Vec<RecordIssue>,
    /// Total record candidates: non-empty lines, excluding a valid header.
    pub records_total: usize,
}

/// One lexed data row (all scalar fields validated, nothing grouped yet).
#[derive(Debug, Clone)]
struct Row {
    line: u64,
    taxi: u16,
    trip: u64,
    point_id: u64,
    t: i64,
    lat: f64,
    lon: f64,
    x: f64,
    y: f64,
    speed: f64,
    heading: f64,
    fuel: f64,
    trip_start: i64,
    trip_end: i64,
    trip_time: i64,
    trip_dist: f64,
    trip_fuel: f64,
}

fn fault_issue(line: u64, field: &str, name: &str, fault: FieldFault) -> RecordIssue {
    match fault {
        FieldFault::BadSyntax => RecordIssue::new(
            line,
            IngestReason::MalformedLine,
            format!("{name} does not lex: {:?}", snippet(field)),
        ),
        FieldFault::OutOfDomain => RecordIssue::new(
            line,
            IngestReason::NumericRange,
            format!("{name} out of domain: {:?}", snippet(field)),
        ),
    }
}

/// Lexes one data line into a [`Row`] or a single issue (first fault
/// wins, left to right — deterministic regardless of worker count).
fn lex_row(line: u64, raw: &[u8]) -> Result<Row, RecordIssue> {
    let text = line_str(raw).ok_or_else(|| {
        RecordIssue::new(line, IngestReason::MalformedLine, "invalid utf-8")
    })?;
    let fields: Vec<&str> = text.split(',').collect();
    if fields.len() != FIELDS {
        return Err(RecordIssue::new(
            line,
            IngestReason::MalformedLine,
            format!("expected {FIELDS} fields, got {}", fields.len()),
        ));
    }
    if let Some(i) = oversized_field(&fields) {
        return Err(RecordIssue::new(
            line,
            IngestReason::MalformedLine,
            format!("field {} oversized ({} bytes)", i + 1, fields[i].len()),
        ));
    }
    let f = |i: usize, name: &str, max: f64| {
        parse_f64(fields[i], max).map_err(|e| fault_issue(line, fields[i], name, e))
    };
    let s = |i: usize, name: &str| {
        parse_i64(fields[i], MAX_EPOCH_S).map_err(|e| fault_issue(line, fields[i], name, e))
    };
    let taxi = parse_u64(fields[0], u64::from(u16::MAX))
        .map_err(|e| fault_issue(line, fields[0], "taxi_id", e))? as u16;
    let trip = parse_u64(fields[1], u64::MAX)
        .map_err(|e| fault_issue(line, fields[1], "trip_id", e))?;
    let point_id = parse_u64(fields[2], u64::MAX)
        .map_err(|e| fault_issue(line, fields[2], "point_id", e))?;
    let t = s(3, "t")?;
    let lat = f(4, "lat", 90.0)?;
    let lon = f(5, "lon", 180.0)?;
    let x = f(6, "x_m", MAX_PLANAR_M)?;
    let y = f(7, "y_m", MAX_PLANAR_M)?;
    let speed = f(8, "speed_kmh", MAX_SPEED_KMH)?;
    let heading = f(9, "heading_deg", MAX_SCALAR)?;
    let fuel = f(10, "fuel_ml", MAX_SCALAR)?;
    let trip_start = s(11, "trip_start_t")?;
    let trip_end = s(12, "trip_end_t")?;
    let trip_time = s(13, "trip_time_s")?;
    let trip_dist = f(14, "trip_dist_m", MAX_SCALAR)?;
    let trip_fuel = f(15, "trip_fuel_ml", MAX_SCALAR)?;
    Ok(Row {
        line,
        taxi,
        trip,
        point_id,
        t,
        lat,
        lon,
        x,
        y,
        speed,
        heading,
        fuel,
        trip_start,
        trip_end,
        trip_time,
        trip_dist,
        trip_fuel,
    })
}

/// Per-trip accumulator: the first valid row fixes the identity and the
/// device summary; later rows must agree with both.
#[derive(Debug)]
struct TripBuilder {
    taxi: u16,
    trip_start: i64,
    trip_end: i64,
    trip_time: i64,
    trip_dist: f64,
    trip_fuel: f64,
    rows: Vec<Row>,
}

impl TripBuilder {
    fn summary_agrees(&self, r: &Row) -> bool {
        self.trip_start == r.trip_start
            && self.trip_end == r.trip_end
            && self.trip_time == r.trip_time
            && self.trip_dist.to_bits() == r.trip_dist.to_bits()
            && self.trip_fuel.to_bits() == r.trip_fuel.to_bits()
    }
}

/// Parses arbitrary bytes as a trace file. Never panics, never aborts:
/// every malformed record becomes one [`RecordIssue`] and the rest of the
/// file still parses. Deterministic: the same bytes produce the same
/// sessions and the same issue ledger at any worker count.
pub fn parse_trace_csv(bytes: &[u8]) -> TraceParse {
    let mut issues = Vec::new();
    let lines = frame_lines(bytes);
    let mut data: Vec<(u64, &[u8])> = Vec::with_capacity(lines.len());
    let mut header_seen = false;
    for (no, raw) in lines {
        if raw.is_empty() {
            continue;
        }
        if !header_seen {
            header_seen = true;
            match line_str(raw) {
                Some(h) if h == TRACE_HEADER => continue,
                got => {
                    issues.push(RecordIssue::new(
                        no,
                        IngestReason::SchemaMismatch,
                        format!(
                            "header mismatch: {:?}",
                            got.map(snippet).unwrap_or_else(|| "<binary>".into())
                        ),
                    ));
                    continue;
                }
            }
        }
        data.push((no, raw));
    }
    let records_total = data.len() + issues.len();

    // Field lexing is embarrassingly parallel; `par_map` preserves input
    // order, so the fold below sees rows exactly in line order.
    let lexed = taxitrace_exec::par_map(&data, |&(no, raw)| lex_row(no, raw));

    let mut order: Vec<u64> = Vec::new();
    let mut trips: HashMap<u64, TripBuilder> = HashMap::new();
    for res in lexed {
        let row = match res {
            Ok(row) => row,
            Err(issue) => {
                issues.push(issue);
                continue;
            }
        };
        match trips.get_mut(&row.trip) {
            None => {
                order.push(row.trip);
                trips.insert(
                    row.trip,
                    TripBuilder {
                        taxi: row.taxi,
                        trip_start: row.trip_start,
                        trip_end: row.trip_end,
                        trip_time: row.trip_time,
                        trip_dist: row.trip_dist,
                        trip_fuel: row.trip_fuel,
                        rows: vec![row],
                    },
                );
            }
            Some(b) if b.taxi != row.taxi => {
                issues.push(RecordIssue::new(
                    row.line,
                    IngestReason::DuplicateTrip,
                    format!(
                        "trip {} already claimed by taxi {}, rejected claim by taxi {}",
                        row.trip, b.taxi, row.taxi
                    ),
                ));
            }
            Some(b) if !b.summary_agrees(&row) => {
                issues.push(RecordIssue::new(
                    row.line,
                    IngestReason::SchemaMismatch,
                    format!("trip {} summary disagrees with its first record", row.trip),
                ));
            }
            Some(b) => b.rows.push(row),
        }
    }
    issues.sort_by_key(|i| i.record);

    let sessions = order
        .into_iter()
        .filter_map(|id| trips.remove(&id).map(|b| (id, b)))
        .map(|(id, b)| {
            let points = b
                .rows
                .iter()
                .enumerate()
                .map(|(i, r)| RoutePoint {
                    point_id: r.point_id,
                    trip_id: TripId(id),
                    taxi: TaxiId(b.taxi),
                    geo: GeoPoint { lon: r.lon, lat: r.lat },
                    pos: Point { x: r.x, y: r.y },
                    timestamp: Timestamp::from_secs(r.t),
                    speed_kmh: r.speed,
                    heading_deg: r.heading,
                    fuel_ml: r.fuel,
                    // External data carries no simulator ground truth;
                    // synthesise arrival-order sequence numbers (truth is
                    // validation-only and excluded from the fingerprint).
                    truth: PointTruth { seq: i as u32, element: None },
                })
                .collect();
            RawTrip {
                id: TripId(id),
                taxi: TaxiId(b.taxi),
                start_time: Timestamp::from_secs(b.trip_start),
                end_time: Timestamp::from_secs(b.trip_end),
                points,
                total_time: Duration::from_secs(b.trip_time),
                total_distance_m: b.trip_dist,
                total_fuel_ml: b.trip_fuel,
                truth_trips: Vec::new(),
            }
        })
        .collect();

    TraceParse { sessions, issues, records_total }
}

/// Exports sessions to the trace schema with exact-float formatting
/// (shortest round-trip representation: a re-parse recovers identical
/// bits for every coordinate, speed and fuel value).
pub fn export_trace_csv(sessions: &[RawTrip]) -> String {
    use std::fmt::Write as _;
    let points: usize = sessions.iter().map(|s| s.points.len()).sum();
    let mut out = String::with_capacity(64 + points * 96);
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for s in sessions {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                s.taxi.0,
                s.id.0,
                p.point_id,
                p.timestamp.secs(),
                p.geo.lat,
                p.geo.lon,
                p.pos.x,
                p.pos.y,
                p.speed_kmh,
                p.heading_deg,
                p.fuel_ml,
                s.start_time.secs(),
                s.end_time.secs(),
                s.total_time.secs(),
                s.total_distance_m,
                s.total_fuel_ml,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trip(id: u64, taxi: u16, n: usize) -> RawTrip {
        let points = (0..n)
            .map(|i| RoutePoint {
                point_id: i as u64,
                trip_id: TripId(id),
                taxi: TaxiId(taxi),
                geo: GeoPoint { lon: 25.4651 + i as f64 * 1e-5, lat: 65.0121 - i as f64 * 2e-5 },
                pos: Point { x: 0.1 + i as f64 * 3.7, y: -250.0 + i as f64 / 3.0 },
                timestamp: Timestamp::from_secs(1_650_000_000 + i as i64 * 5),
                speed_kmh: 38.4 + i as f64 * 0.311,
                heading_deg: (i as f64 * 17.3) % 360.0,
                fuel_ml: i as f64 * 12.345_678_9,
                truth: PointTruth { seq: i as u32, element: None },
            })
            .collect();
        RawTrip {
            id: TripId(id),
            taxi: TaxiId(taxi),
            start_time: Timestamp::from_secs(1_650_000_000),
            end_time: Timestamp::from_secs(1_650_000_000 + n as i64 * 5),
            points,
            total_time: Duration::from_secs(n as i64 * 5),
            total_distance_m: 10_250.537_21,
            total_fuel_ml: 820.062_5,
            truth_trips: Vec::new(),
        }
    }

    fn assert_bits_equal(a: &RawTrip, b: &RawTrip) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.taxi, b.taxi);
        assert_eq!(a.start_time, b.start_time);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.total_distance_m.to_bits(), b.total_distance_m.to_bits());
        assert_eq!(a.total_fuel_ml.to_bits(), b.total_fuel_ml.to_bits());
        assert_eq!(a.points.len(), b.points.len());
        for (p, q) in a.points.iter().zip(&b.points) {
            assert_eq!(p.point_id, q.point_id);
            assert_eq!(p.timestamp, q.timestamp);
            assert_eq!(p.geo.lat.to_bits(), q.geo.lat.to_bits());
            assert_eq!(p.geo.lon.to_bits(), q.geo.lon.to_bits());
            assert_eq!(p.pos.x.to_bits(), q.pos.x.to_bits());
            assert_eq!(p.pos.y.to_bits(), q.pos.y.to_bits());
            assert_eq!(p.speed_kmh.to_bits(), q.speed_kmh.to_bits());
            assert_eq!(p.heading_deg.to_bits(), q.heading_deg.to_bits());
            assert_eq!(p.fuel_ml.to_bits(), q.fuel_ml.to_bits());
        }
    }

    #[test]
    fn export_ingest_round_trip_is_bit_exact() {
        let sessions = vec![trip(17, 3, 40), trip(18, 4, 7), trip(101, 3, 1)];
        let text = export_trace_csv(&sessions);
        let parsed = parse_trace_csv(text.as_bytes());
        assert!(parsed.issues.is_empty(), "{:?}", parsed.issues);
        assert_eq!(parsed.records_total, 48);
        assert_eq!(parsed.sessions.len(), sessions.len());
        for (a, b) in sessions.iter().zip(&parsed.sessions) {
            assert_bits_equal(a, b);
        }
    }

    #[test]
    fn crlf_and_bom_parse_identically() {
        let text = export_trace_csv(&[trip(1, 1, 5)]);
        let crlf = text.replace('\n', "\r\n");
        let mut bom = vec![0xEF, 0xBB, 0xBF];
        bom.extend_from_slice(crlf.as_bytes());
        let plain = parse_trace_csv(text.as_bytes());
        let hostile = parse_trace_csv(&bom);
        assert!(hostile.issues.is_empty(), "{:?}", hostile.issues);
        assert_eq!(plain.sessions.len(), hostile.sessions.len());
        assert_bits_equal(&plain.sessions[0], &hostile.sessions[0]);
    }

    #[test]
    fn malformed_records_degrade_not_abort() {
        let mut text = export_trace_csv(&[trip(1, 1, 5)]);
        text.push_str("not,a,record\n");
        text.push_str("1,1,9,NaN-time,65,25,0,0,1,2,3,1650000000,1650000025,25,10250.53721,820.0625\n");
        let parsed = parse_trace_csv(text.as_bytes());
        assert_eq!(parsed.sessions.len(), 1);
        assert_eq!(parsed.sessions[0].points.len(), 5);
        assert_eq!(parsed.records_total, 7);
        assert_eq!(parsed.issues.len(), 2);
        assert_eq!(parsed.issues[0].reason, IngestReason::MalformedLine);
        assert_eq!(parsed.issues[1].reason, IngestReason::MalformedLine);
    }

    #[test]
    fn nonfinite_coordinates_are_domain_issues() {
        let mut text = String::from(TRACE_HEADER);
        text.push('\n');
        text.push_str("1,1,0,1650000000,NaN,25,0,0,1,2,3,1650000000,1650000025,25,1,1\n");
        text.push_str("1,1,1,1650000000,65,inf,0,0,1,2,3,1650000000,1650000025,25,1,1\n");
        text.push_str("1,1,2,1650000000,91.0,25,0,0,1,2,3,1650000000,1650000025,25,1,1\n");
        let parsed = parse_trace_csv(text.as_bytes());
        assert!(parsed.sessions.is_empty());
        assert_eq!(parsed.issues.len(), 3);
        assert!(parsed.issues.iter().all(|i| i.reason == IngestReason::NumericRange));
    }

    #[test]
    fn conflicting_trip_claims_are_rejected_per_record() {
        let mut text = String::from(TRACE_HEADER);
        text.push('\n');
        // Trip 7 claimed by taxi 1, then by taxi 2 (duplicate), then a
        // taxi-1 row whose summary disagrees (mismatch).
        text.push_str("1,7,0,1650000000,65,25,0,0,1,2,3,1650000000,1650000025,25,1,1\n");
        text.push_str("2,7,1,1650000001,65,25,0,0,1,2,3,1650000000,1650000025,25,1,1\n");
        text.push_str("1,7,2,1650000002,65,25,0,0,1,2,3,1650000000,1650000025,25,9,1\n");
        let parsed = parse_trace_csv(text.as_bytes());
        assert_eq!(parsed.sessions.len(), 1);
        assert_eq!(parsed.sessions[0].points.len(), 1);
        let reasons: Vec<_> = parsed.issues.iter().map(|i| i.reason).collect();
        assert_eq!(
            reasons,
            vec![IngestReason::DuplicateTrip, IngestReason::SchemaMismatch]
        );
    }

    #[test]
    fn missing_header_is_a_schema_issue_but_rows_still_parse() {
        let text =
            "1,1,0,1650000000,65,25,0,0,1,2,3,1650000000,1650000025,25,1,1\n".to_string();
        let parsed = parse_trace_csv(text.as_bytes());
        assert_eq!(parsed.issues.len(), 1);
        assert_eq!(parsed.issues[0].reason, IngestReason::SchemaMismatch);
        // The header-looking first line was consumed as the (bad) header;
        // nothing else in the file, so no sessions.
        assert!(parsed.sessions.is_empty());
        let two = format!("{text}1,1,1,1650000005,65,25,0,0,1,2,3,1650000000,1650000025,25,1,1\n");
        let parsed = parse_trace_csv(two.as_bytes());
        assert_eq!(parsed.sessions.len(), 1, "second line parses as data");
        assert_eq!(parsed.sessions[0].points.len(), 1);
    }

    #[test]
    fn arbitrary_binary_never_panics() {
        for bytes in [
            &b"\x00\xFF\xFE\x01\x02"[..],
            &b"taxi_id,\xC3\x28\n1,2\n"[..],
            &[0u8; 4096][..],
        ] {
            let parsed = parse_trace_csv(bytes);
            assert!(parsed.sessions.is_empty());
        }
    }
}
