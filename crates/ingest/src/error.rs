//! Typed ingest failures: per-record issues and file-level fatal errors.

use std::fmt;

/// Why a single external record was rejected. Mirrors the quarantine
/// taxonomy of the core pipeline (each variant maps onto a
/// `QuarantineReason` wire tag there) but lives here so the parsers have
/// no dependency on the core crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IngestReason {
    /// The line is not a record at all: invalid UTF-8, wrong field count,
    /// an oversized field, or a field that does not lex as its type.
    MalformedLine,
    /// A field lexed but its value is outside the representable domain
    /// (non-finite float, latitude beyond ±90°, timestamp out of range).
    NumericRange,
    /// The record contradicts the file's own schema or an earlier record
    /// of the same entity (bad header, conflicting trip summary,
    /// duplicate way id).
    SchemaMismatch,
    /// A trip id re-appeared under a different taxi: two distinct trips
    /// claim the same identity, so the later claim is rejected.
    DuplicateTrip,
    /// The record references an entity that does not exist (a way naming
    /// an unknown node, an object on an unknown way).
    DanglingRef,
}

impl IngestReason {
    /// All reasons, for exhaustive per-reason accounting in tests.
    pub const ALL: [IngestReason; 5] = [
        IngestReason::MalformedLine,
        IngestReason::NumericRange,
        IngestReason::SchemaMismatch,
        IngestReason::DuplicateTrip,
        IngestReason::DanglingRef,
    ];

    /// Stable lowercase label (used as a metric name suffix).
    pub fn label(self) -> &'static str {
        match self {
            IngestReason::MalformedLine => "malformed_line",
            IngestReason::NumericRange => "numeric_range",
            IngestReason::SchemaMismatch => "schema_mismatch",
            IngestReason::DuplicateTrip => "duplicate_trip",
            IngestReason::DanglingRef => "dangling_ref",
        }
    }
}

impl fmt::Display for IngestReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One rejected record: the 1-based line number it came from, why, and a
/// human-readable detail. The caller routes these into the quarantine
/// ledger; the parser only reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordIssue {
    /// 1-based physical line number in the input.
    pub record: u64,
    pub reason: IngestReason,
    pub detail: String,
}

impl RecordIssue {
    pub(crate) fn new(record: u64, reason: IngestReason, detail: impl Into<String>) -> Self {
        Self { record, reason, detail: detail.into() }
    }
}

/// File-level fatal ingest errors. Per-record damage is *not* an error —
/// it degrades into [`RecordIssue`]s; these are the cases where no
/// coherent result can be assembled at all.
#[derive(Debug)]
pub enum IngestError {
    /// I/O failure reading the input.
    Io { path: String, source: std::io::Error },
    /// The file does not start with a recognisable format header.
    BadHeader(String),
    /// The surviving map records cannot form a road graph.
    Graph(taxitrace_roadnet::GraphError),
    /// Nothing salvageable: the file parsed to an empty result where the
    /// format requires at least one record (e.g. a map with no ways).
    Empty(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io { path, source } => write!(f, "ingest i/o on {path}: {source}"),
            IngestError::BadHeader(h) => write!(f, "unrecognised format header {h:?}"),
            IngestError::Graph(e) => write!(f, "map does not form a road graph: {e}"),
            IngestError::Empty(what) => write!(f, "nothing salvageable: {what}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io { source, .. } => Some(source),
            IngestError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<taxitrace_roadnet::GraphError> for IngestError {
    fn from(e: taxitrace_roadnet::GraphError) -> Self {
        IngestError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for r in IngestReason::ALL {
            assert!(seen.insert(r.label()), "duplicate label {}", r.label());
            assert!(r.label().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn errors_render_with_context() {
        let e = IngestError::BadHeader("PNG".into());
        assert!(e.to_string().contains("PNG"));
        let io = IngestError::Io {
            path: "traces.csv".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(io.to_string().contains("traces.csv"));
    }
}
