use std::fmt;

use serde::{Deserialize, Serialize};
use taxitrace_timebase::{CivilDate, Timestamp};

/// Temperature class used on Fig. 10's x-axis.
///
/// The paper does not print its exact class edges; we use the standard road
/// weather bands around the freezing point, which is where driving-condition
/// regimes change at 65 °N.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TemperatureClass {
    /// Below −10 °C: hard winter, packed snow.
    SevereCold,
    /// −10 to 0 °C: freezing, ice risk.
    Cold,
    /// 0 to +10 °C: cool, mostly wet.
    Cool,
    /// Above +10 °C: warm, dry.
    Warm,
}

impl TemperatureClass {
    /// All classes in ascending temperature order.
    pub const ALL: [TemperatureClass; 4] = [
        TemperatureClass::SevereCold,
        TemperatureClass::Cold,
        TemperatureClass::Cool,
        TemperatureClass::Warm,
    ];

    /// Class of a temperature in °C.
    pub fn of_celsius(t: f64) -> Self {
        if t < -10.0 {
            TemperatureClass::SevereCold
        } else if t < 0.0 {
            TemperatureClass::Cold
        } else if t < 10.0 {
            TemperatureClass::Cool
        } else {
            TemperatureClass::Warm
        }
    }

    /// Axis label.
    pub fn label(self) -> &'static str {
        match self {
            TemperatureClass::SevereCold => "< -10 C",
            TemperatureClass::Cold => "-10..0 C",
            TemperatureClass::Cool => "0..10 C",
            TemperatureClass::Warm => "> 10 C",
        }
    }
}

impl fmt::Display for TemperatureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Road surface condition derived from temperature and precipitation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadCondition {
    Dry,
    Wet,
    Icy,
    Snowy,
}

impl RoadCondition {
    /// Multiplicative speed factor drivers apply under this condition
    /// (used by the fleet simulator's driver model).
    pub fn speed_factor(self) -> f64 {
        match self {
            RoadCondition::Dry => 1.0,
            RoadCondition::Wet => 0.96,
            RoadCondition::Icy => 0.85,
            RoadCondition::Snowy => 0.90,
        }
    }
}

/// Weather for one calendar day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeatherDay {
    pub date: CivilDate,
    /// Daily mean air temperature, °C.
    pub temperature_c: f64,
    /// Whether precipitation occurred.
    pub precipitation: bool,
    pub condition: RoadCondition,
}

impl WeatherDay {
    /// Temperature class of the day.
    #[inline]
    pub fn class(&self) -> TemperatureClass {
        TemperatureClass::of_celsius(self.temperature_c)
    }
}

/// Deterministic daily weather generator for the study latitude.
///
/// Temperature follows a sinusoidal annual cycle (Oulu climatology: July
/// mean ≈ +16 °C, January/February mean ≈ −10 °C) plus bounded day-scale
/// noise derived from a hash of the date, so every day is reproducible
/// without storing a series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeatherModel {
    seed: u64,
    mean_c: f64,
    amplitude_c: f64,
    noise_c: f64,
}

impl WeatherModel {
    /// Oulu-like defaults.
    pub fn new(seed: u64) -> Self {
        Self { seed, mean_c: 3.0, amplitude_c: 13.0, noise_c: 6.0 }
    }

    /// Weather of a calendar day.
    pub fn day(&self, date: CivilDate) -> WeatherDay {
        let z = date.days_from_epoch();
        // Day-of-year phase: coldest near 1 Feb (z offset tuned so the
        // minimum falls in late January), warmest in late July.
        let phase = 2.0 * std::f64::consts::PI * ((z as f64 - 28.0) / 365.25);
        let seasonal = self.mean_c - self.amplitude_c * phase.cos();
        let n1 = self.hash_unit(z, 1); // temperature noise
        let n2 = self.hash_unit(z, 2); // precipitation draw
        let temperature_c = seasonal + (n1 * 2.0 - 1.0) * self.noise_c;
        let precipitation = n2 < 0.35;
        let condition = match (temperature_c, precipitation) {
            (t, true) if t < -1.0 => RoadCondition::Snowy,
            (t, false) if t < -1.0 => RoadCondition::Icy,
            (_, true) => RoadCondition::Wet,
            (_, false) => RoadCondition::Dry,
        };
        WeatherDay { date, temperature_c, precipitation, condition }
    }

    /// Weather of the day containing a timestamp.
    pub fn at(&self, ts: Timestamp) -> WeatherDay {
        self.day(ts.civil().date)
    }

    /// Instantaneous air temperature with the diurnal cycle superimposed on
    /// the daily mean: coldest around 05:00, warmest around 15:00, with a
    /// ±`~3.5` °C swing (a Nordic summer day swings more than a polar-night
    /// winter day, so the amplitude follows the seasonal temperature).
    pub fn temperature_at(&self, ts: Timestamp) -> f64 {
        let day = self.at(ts);
        let civil = ts.civil();
        let hour = civil.hour as f64 + civil.minute as f64 / 60.0;
        // Peak at 15:00.
        let phase = (hour - 15.0) / 24.0 * 2.0 * std::f64::consts::PI;
        let amplitude = 2.0 + 0.1 * (day.temperature_c + 10.0).clamp(0.0, 30.0);
        day.temperature_c + amplitude * phase.cos()
    }

    /// SplitMix64-style hash of `(seed, day, stream)` mapped to `[0, 1)`.
    fn hash_unit(&self, day: i64, stream: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add((day as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_timebase::{study_period_end, study_period_start, Duration, Season};

    fn model() -> WeatherModel {
        WeatherModel::new(42)
    }

    #[test]
    fn deterministic() {
        let d = CivilDate::new(2013, 1, 15).unwrap();
        assert_eq!(model().day(d), model().day(d));
    }

    #[test]
    fn winter_colder_than_summer() {
        let m = model();
        let jan: f64 = (1..=28)
            .map(|d| m.day(CivilDate::new(2013, 1, d).unwrap()).temperature_c)
            .sum::<f64>()
            / 28.0;
        let jul: f64 = (1..=28)
            .map(|d| m.day(CivilDate::new(2013, 7, d).unwrap()).temperature_c)
            .sum::<f64>()
            / 28.0;
        assert!(jan < -4.0, "January mean {jan}");
        assert!(jul > 12.0, "July mean {jul}");
    }

    #[test]
    fn classes_cover_all_in_study_period() {
        use std::collections::BTreeSet;
        let m = model();
        let mut seen = BTreeSet::new();
        let mut t = study_period_start();
        while t < study_period_end() {
            seen.insert(m.at(t).class());
            t += Duration::from_days(1);
        }
        assert_eq!(seen.len(), 4, "all four temperature classes appear");
    }

    #[test]
    fn class_boundaries() {
        assert_eq!(TemperatureClass::of_celsius(-15.0), TemperatureClass::SevereCold);
        assert_eq!(TemperatureClass::of_celsius(-10.0), TemperatureClass::Cold);
        assert_eq!(TemperatureClass::of_celsius(-0.1), TemperatureClass::Cold);
        assert_eq!(TemperatureClass::of_celsius(0.0), TemperatureClass::Cool);
        assert_eq!(TemperatureClass::of_celsius(10.0), TemperatureClass::Warm);
    }

    #[test]
    fn winter_days_have_winter_conditions() {
        let m = model();
        let mut icy_or_snowy = 0;
        let mut total = 0;
        for d in 1..=28 {
            let day = m.day(CivilDate::new(2013, 1, d).unwrap());
            if Season::of_date(day.date) == Season::Winter {
                total += 1;
                if matches!(day.condition, RoadCondition::Icy | RoadCondition::Snowy) {
                    icy_or_snowy += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(icy_or_snowy * 2 > total, "{icy_or_snowy}/{total}");
    }

    #[test]
    fn speed_factors_ordered() {
        assert!(RoadCondition::Icy.speed_factor() < RoadCondition::Snowy.speed_factor());
        assert!(RoadCondition::Snowy.speed_factor() < RoadCondition::Wet.speed_factor());
        assert!(RoadCondition::Wet.speed_factor() < RoadCondition::Dry.speed_factor());
        assert_eq!(RoadCondition::Dry.speed_factor(), 1.0);
    }

    #[test]
    fn diurnal_cycle_peaks_in_afternoon() {
        use taxitrace_timebase::{CivilDate, CivilDateTime};
        let m = model();
        let date = CivilDate::new(2013, 7, 10).unwrap();
        let at = |h: u8| {
            m.temperature_at(CivilDateTime::new(date, h, 0, 0).unwrap().to_timestamp())
        };
        assert!(at(15) > at(5), "afternoon {} vs early morning {}", at(15), at(5));
        // The swing is bounded and centred on the daily mean.
        let mean = m.day(date).temperature_c;
        for h in 0..24 {
            assert!((at(h) - mean).abs() < 6.0, "hour {h}: {}", at(h));
        }
    }

    #[test]
    fn noise_is_bounded() {
        let m = model();
        for d in 0..365 {
            let date = CivilDate::from_days_from_epoch(15_614 + d);
            let t = m.day(date).temperature_c;
            assert!((-32.0..=28.0).contains(&t), "{date}: {t}");
        }
    }
}
