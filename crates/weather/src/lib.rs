//! Road-weather substrate: a stand-in for the FMI road weather model.
//!
//! The paper's Fig. 10 joins trips with weather information "provided by a
//! road weather model, supplied by FMI (Kangas et al.)" and splits the
//! low-speed analysis by temperature class. The FMI model and its forcing
//! data are proprietary, so this crate generates a climatologically
//! plausible daily weather series for 65 °N (Oulu): a sinusoidal annual
//! temperature cycle with deterministic daily noise, a derived road-surface
//! condition, and the temperature classes consumed by the Fig. 10 analysis.
//!
//! The reproduction claim of Fig. 10 is qualitative — the ≥ 9-traffic-light
//! group shows a higher low-speed share in *every* temperature class — so
//! any plausible temperature series exercises the same code path.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod model;

pub use model::{RoadCondition, TemperatureClass, WeatherDay, WeatherModel};
