//! Seeded closed-loop load generator and read-path contention bench.
//!
//! `run_load` drives N client threads against a running [`crate::Server`],
//! each issuing its share of a deterministic query mix drawn from the
//! snapshot's own domain (real trip ids, real cells, real direction
//! pairs, plus deliberate misses). The mix is planned up front from
//! forked [`Rng`] streams, so the **mix fingerprint** — and, because
//! answers are canonical JSON over immutable data, the **response
//! fingerprint** — are identical across runs, thread interleavings and
//! client counts. Fingerprints are per-request FNV-1a hashes combined
//! with wrapping addition (commutative, and unlike XOR repeated
//! request/response pairs don't cancel out).
//!
//! `contention_bench` isolates the snapshot-acquisition cost the epoch
//! design removes: N threads acquiring the current snapshot pointer M
//! times each, once through an [`EpochReader`] (one atomic load) and once
//! through a `Mutex<Arc<T>>` locked per request (the RwLock-per-request
//! family every reader contends on). The ratio is the evidence behind
//! "no locks on the read path" in `BENCH_serve.json`.

use std::collections::BTreeSet;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};

use taxitrace_traces::Rng;

use crate::epoch::EpochCell;
use crate::snapshot::Snapshot;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Parameters of one load run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSpec {
    /// Root seed; client `i` plans its requests from `fork(i)`.
    pub seed: u64,
    /// Concurrent closed-loop clients (threads).
    pub clients: usize,
    /// Requests each client issues sequentially.
    pub requests_per_client: usize,
}

/// Outcome of a load run: determinism fingerprints plus latency and
/// throughput figures.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    pub seed: u64,
    pub clients: usize,
    pub requests: usize,
    /// Non-200 responses (0 in a healthy run — every planned request is
    /// well-formed).
    pub errors: usize,
    /// Wrapping sum of FNV-1a hashes of every request path. Depends only
    /// on `(seed, clients, requests_per_client, snapshot domain)`.
    pub mix_fingerprint: u64,
    /// Wrapping sum of FNV-1a hashes of every response body. Equal across
    /// runs because answers are canonical JSON over an immutable
    /// snapshot.
    pub response_fingerprint: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub throughput_qps: f64,
}

/// Plans one client's request paths from its forked rng stream. Sampling
/// only touches the snapshot's immutable domain, so the plan is a pure
/// function of `(rng stream, snapshot)`.
fn plan_requests(rng: &mut Rng, snapshot: &Snapshot, n: usize) -> Vec<String> {
    let output = snapshot.output();
    let sessions = output.store.sessions();
    let cells: Vec<_> = snapshot.grid().cells.keys().copied().collect();
    let pairs: Vec<&str> = output
        .transitions
        .iter()
        .map(|t| t.pair.as_str())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let (t_min, t_max) = output
        .transitions
        .iter()
        .map(|t| t.start_time.secs())
        .fold((i64::MAX, i64::MIN), |(lo, hi), t| (lo.min(t), hi.max(t)));

    let mut plan = Vec::with_capacity(n);
    for _ in 0..n {
        // Mix: mostly the cheap point lookups, a steady trickle of the
        // expensive full-grid scan.
        let path = match rng.weighted(&[0.30, 0.30, 0.25, 0.15]) {
            0 => {
                if output.transitions.is_empty() || rng.chance(0.4) {
                    "/od_flow".to_string()
                } else {
                    let a = t_min + rng.below((t_max - t_min).max(1) as usize) as i64;
                    let b = t_min + rng.below((t_max - t_min).max(1) as usize) as i64;
                    // Ordered window: inverted ranges are a typed 400 and
                    // belong in the error tests, not the throughput mix.
                    format!("/od_flow?from={}&to={}", a.min(b), a.max(b) + 1)
                }
            }
            1 => {
                if cells.is_empty() || rng.chance(0.1) {
                    // Deliberate miss: answers `row: null`.
                    "/cell_speed?ix=99999&iy=99999".to_string()
                } else {
                    let c = cells[rng.below(cells.len())];
                    format!("/cell_speed?ix={}&iy={}", c.ix, c.iy)
                }
            }
            2 => {
                if sessions.is_empty() || rng.chance(0.1) {
                    format!("/trip?id={}", u64::MAX)
                } else {
                    format!("/trip?id={}", sessions[rng.below(sessions.len())].id.0)
                }
            }
            _ => {
                if pairs.is_empty() || rng.chance(0.5) {
                    "/grid_stats".to_string()
                } else {
                    format!("/grid_stats?pair={}", pairs[rng.below(pairs.len())])
                }
            }
        };
        plan.push(path);
    }
    plan
}

/// One blocking HTTP GET; returns `(status, body)`.
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: taxitrace\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    Ok((status, body.to_string()))
}

/// Runs the closed-loop load against `addr`. The snapshot is only used
/// for domain sampling; every answer comes back over HTTP.
pub fn run_load(addr: SocketAddr, snapshot: &Snapshot, spec: &LoadSpec) -> LoadReport {
    // Plan everything before spawning: determinism cannot depend on
    // thread scheduling.
    let plans: Vec<Vec<String>> = (0..spec.clients)
        .map(|i| {
            let mut rng = Rng::new(spec.seed).fork(i as u64);
            plan_requests(&mut rng, snapshot, spec.requests_per_client)
        })
        .collect();
    let mix_fingerprint = plans
        .iter()
        .flatten()
        .fold(0u64, |acc, p| acc.wrapping_add(fnv1a(p.as_bytes())));

    // lint:allow(determinism): wall-clock throughput measurement, not pipeline state
    let t0 = std::time::Instant::now();
    let mut handles = Vec::with_capacity(plans.len());
    for plan in plans {
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(plan.len());
            let mut fp = 0u64;
            let mut errors = 0usize;
            for path in &plan {
                // lint:allow(determinism): per-request latency sample
                let start = std::time::Instant::now();
                match http_get(addr, path) {
                    Ok((200, body)) => fp = fp.wrapping_add(fnv1a(body.as_bytes())),
                    _ => errors += 1,
                }
                latencies.push(start.elapsed().as_micros() as u64);
            }
            (latencies, fp, errors)
        }));
    }
    let mut latencies = Vec::with_capacity(spec.clients * spec.requests_per_client);
    let mut response_fingerprint = 0u64;
    let mut errors = 0usize;
    for h in handles {
        let (lat, fp, errs) = h.join().unwrap_or_else(|_| (Vec::new(), 0, usize::MAX));
        latencies.extend(lat);
        response_fingerprint = response_fingerprint.wrapping_add(fp);
        errors = errors.saturating_add(errs);
    }
    let wall = t0.elapsed().as_secs_f64();

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    LoadReport {
        seed: spec.seed,
        clients: spec.clients,
        requests: latencies.len(),
        errors,
        mix_fingerprint,
        response_fingerprint,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        throughput_qps: if wall > 0.0 { latencies.len() as f64 / wall } else { 0.0 },
    }
}

/// Read-path contention comparison: ns/op to acquire the current
/// snapshot pointer under `threads`-way contention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionReport {
    pub threads: usize,
    pub acquisitions_per_thread: usize,
    /// Epoch reader: one `Acquire` load per acquisition, no lock.
    pub epoch_ns_per_op: f64,
    /// `Mutex<Arc<T>>` locked and cloned per acquisition — the
    /// lock-per-request design the epoch cell replaces.
    pub mutex_ns_per_op: f64,
}

/// Measures pointer-acquisition cost under contention for both designs.
/// Uses a tiny payload so the numbers isolate acquisition, not use.
pub fn contention_bench(threads: usize, acquisitions_per_thread: usize) -> ContentionReport {
    let epoch_cell = Arc::new(EpochCell::new(Arc::new(0u64)));
    let epoch_ns = timed_ns(threads, acquisitions_per_thread, {
        let cell = Arc::clone(&epoch_cell);
        move |n| {
            let mut reader = cell.reader();
            let mut acc = 0u64;
            for _ in 0..n {
                acc = acc.wrapping_add(**std::hint::black_box(reader.get()));
            }
            acc
        }
    });
    let mutex_cell = Arc::new(Mutex::new(Arc::new(0u64)));
    let mutex_ns = timed_ns(threads, acquisitions_per_thread, {
        let cell = Arc::clone(&mutex_cell);
        move |n| {
            let mut acc = 0u64;
            for _ in 0..n {
                let arc =
                    Arc::clone(&cell.lock().unwrap_or_else(|e| e.into_inner()));
                acc = acc.wrapping_add(*std::hint::black_box(arc));
            }
            acc
        }
    });
    ContentionReport {
        threads,
        acquisitions_per_thread,
        epoch_ns_per_op: epoch_ns,
        mutex_ns_per_op: mutex_ns,
    }
}

/// Runs `body(n)` on `threads` threads and returns mean ns per op.
fn timed_ns<F>(threads: usize, n: usize, body: F) -> f64
where
    F: Fn(usize) -> u64 + Clone + Send + 'static,
{
    // lint:allow(determinism): benchmark timing, not pipeline state
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..threads.max(1))
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || std::hint::black_box(body(n)))
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }
    let total_ops = (threads.max(1) * n.max(1)) as f64;
    t0.elapsed().as_nanos() as f64 / total_ops
}

impl LoadReport {
    /// JSON object fragment for `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seed\":{},\"clients\":{},\"requests\":{},\"errors\":{},\
             \"mix_fingerprint\":\"{:016x}\",\"response_fingerprint\":\"{:016x}\",\
             \"p50_us\":{},\"p99_us\":{},\"throughput_qps\":{:.1}}}",
            self.seed,
            self.clients,
            self.requests,
            self.errors,
            self.mix_fingerprint,
            self.response_fingerprint,
            self.p50_us,
            self.p99_us,
            self.throughput_qps
        )
    }
}

impl ContentionReport {
    /// JSON object fragment for `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"threads\":{},\"acquisitions_per_thread\":{},\
             \"epoch_ns_per_op\":{:.1},\"mutex_ns_per_op\":{:.1}}}",
            self.threads, self.acquisitions_per_thread, self.epoch_ns_per_op, self.mutex_ns_per_op
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn contention_bench_produces_positive_figures() {
        let r = contention_bench(2, 10_000);
        assert!(r.epoch_ns_per_op > 0.0);
        assert!(r.mutex_ns_per_op > 0.0);
        let json = r.to_json();
        assert!(json.contains("\"epoch_ns_per_op\""));
    }
}
