//! A hand-rolled `arc-swap`: snapshot replacement without read-path locks.
//!
//! The serving requirement is asymmetric — reads are constant and hot,
//! swaps happen once per store republish. A `RwLock<Arc<Snapshot>>` (the
//! obvious design, and what OpenLinePlanner-style services do per
//! request) makes every reader touch the lock's contended word. Here the
//! steady-state read path is **one `Acquire` load of an epoch counter**:
//!
//! * [`EpochCell`] holds the current snapshot behind a mutex-guarded slot
//!   plus an atomic epoch that is bumped on every [`EpochCell::swap`].
//! * Each worker owns an [`EpochReader`], which caches an `Arc` clone of
//!   the snapshot together with the epoch it was taken at. On every
//!   request the reader compares epochs; only on a mismatch (a swap
//!   happened — rare by construction) does it take the mutex to re-clone.
//!
//! Safe Rust only (`forbid(unsafe_code)` — no home-grown atomics
//! juggling raw pointers); the mutex exists but is provably off the read
//! path, which the `serve.epoch_refreshes` counter and the contention
//! figures in `BENCH_serve.json` both evidence.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shared slot holding the current snapshot; readers go through
/// [`EpochReader`] and never lock unless the epoch moved.
pub struct EpochCell<T> {
    epoch: AtomicU64,
    slot: Mutex<Arc<T>>,
}

impl<T> EpochCell<T> {
    /// A cell at epoch 0 holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self { epoch: AtomicU64::new(0), slot: Mutex::new(value) }
    }

    /// Current epoch (bumped once per [`swap`](Self::swap)).
    pub fn epoch(&self) -> u64 {
        // sync(epoch): Acquire pairs with swap's Release bump.
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes a new snapshot and returns the new epoch. Readers pick
    /// it up on their next request; in-flight requests keep the `Arc`
    /// they already hold, so nothing is torn down under them.
    pub fn swap(&self, value: Arc<T>) -> u64 {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = value;
        // sync(epoch): Release bump while holding the lock — a reader
        // that observes the new epoch is guaranteed to find the new
        // snapshot in the slot (model-checked as epoch_publish).
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// Clones the current snapshot (takes the slot lock; use an
    /// [`EpochReader`] on hot paths).
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.slot.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// A reader caching the current snapshot at the current epoch.
    pub fn reader(&self) -> EpochReader<'_, T> {
        let cached = self.load();
        EpochReader { cell: self, epoch: self.epoch(), cached, refreshes: 0 }
    }
}

impl<T> fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochCell").field("epoch", &self.epoch()).finish()
    }
}

/// One worker's view of an [`EpochCell`]: an `Arc` clone of the snapshot
/// plus the epoch it was taken at. [`get`](Self::get) is the whole read
/// path — a single atomic load when the epoch is unchanged.
pub struct EpochReader<'a, T> {
    cell: &'a EpochCell<T>,
    epoch: u64,
    cached: Arc<T>,
    refreshes: u64,
}

impl<T> EpochReader<'_, T> {
    /// The current snapshot. Steady state: one `Acquire` load, no lock.
    /// After a swap: one mutex round to re-clone, counted in
    /// [`refreshes`](Self::refreshes).
    pub fn get(&mut self) -> &Arc<T> {
        // sync(epoch): Acquire pairs with swap's Release bump.
        let now = self.cell.epoch.load(Ordering::Acquire);
        if now != self.epoch {
            self.cached = self.cell.load();
            // sync(epoch): re-read after the clone — a swap racing the
            // refresh leaves the epoch ahead of the slot we saw, forcing
            // another refresh next call rather than staying stale forever.
            self.epoch = self.cell.epoch.load(Ordering::Acquire);
            self.refreshes += 1;
        }
        &self.cached
    }

    /// How many times this reader had to take the slot lock. In steady
    /// state this stays 0 — the evidence behind "no locks on the read
    /// path".
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// The epoch of the cached snapshot (as of the last
    /// [`get`](Self::get)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl<T> fmt::Debug for EpochReader<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochReader")
            .field("epoch", &self.epoch)
            .field("refreshes", &self.refreshes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn reader_sees_swaps_and_counts_refreshes() {
        let cell = EpochCell::new(Arc::new(1u32));
        let mut r = cell.reader();
        assert_eq!(**r.get(), 1);
        assert_eq!(r.refreshes(), 0);
        // Repeated reads without a swap never refresh.
        for _ in 0..100 {
            assert_eq!(**r.get(), 1);
        }
        assert_eq!(r.refreshes(), 0);
        assert_eq!(cell.swap(Arc::new(2)), 1);
        assert_eq!(**r.get(), 2);
        assert_eq!(r.refreshes(), 1);
        assert_eq!(**r.get(), 2);
        assert_eq!(r.refreshes(), 1, "refresh happens once per swap");
    }

    #[test]
    fn in_flight_arc_survives_swap() {
        let cell = EpochCell::new(Arc::new(vec![1, 2, 3]));
        let mut r = cell.reader();
        let held = Arc::clone(r.get());
        cell.swap(Arc::new(vec![9]));
        assert_eq!(*held, vec![1, 2, 3], "old snapshot stays valid");
        assert_eq!(**r.get(), vec![9]);
    }

    #[test]
    fn concurrent_readers_converge_after_swap() {
        let cell = Arc::new(EpochCell::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(thread::spawn(move || {
                let mut r = cell.reader();
                let mut last = **r.get();
                // sync(stop): test stop flag, value-only.
                while !stop.load(Ordering::Relaxed) {
                    let v = **r.get();
                    assert!(v >= last, "snapshot went backwards: {v} < {last}");
                    last = v;
                }
                last
            }));
        }
        for v in 1..=50u64 {
            cell.swap(Arc::new(v));
        }
        stop.store(true, Ordering::Relaxed); // sync(stop): test stop flag
        for h in handles {
            let last = h.join().expect("reader thread");
            assert!(last <= 50);
        }
        assert_eq!(**cell.reader().get(), 50);
    }
}
