//! Minimal hand-rolled HTTP/1.1 front end over a snapshot cell.
//!
//! Deliberately dependency-free (std `TcpListener` only): the service
//! needs exactly "parse a GET line, answer canonical JSON", and a full
//! framework would drag in an async runtime the workspace doesn't have.
//! `N` worker threads share one listener via `try_clone`; each owns an
//! [`EpochReader`] so the per-request snapshot access is a single atomic
//! load — no locks on the read path. Metrics handles (atomic counters /
//! histogram cells) are pre-registered at startup for the same reason.
//!
//! Routes (all GET, `Connection: close`):
//!
//! | path          | params                | answer                     |
//! |---------------|-----------------------|----------------------------|
//! | `/od_flow`    | `from`,`to` (optional)| [`QueryRequest::OdFlow`]   |
//! | `/cell_speed` | `ix`,`iy`             | [`QueryRequest::CellSpeed`]|
//! | `/trip`       | `id`                  | [`QueryRequest::TripLookup`]|
//! | `/grid_stats` | `pair` (optional)     | [`QueryRequest::GridStats`]|
//! | `/metrics`    |                       | obs JSON snapshot          |
//! | `/healthz`    |                       | liveness + epoch           |

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use taxitrace_core::{escape_json, QueryEngine, QueryRequest};
use taxitrace_geo::CellId;
use taxitrace_obs::{render_json, Counter, Histogram, Registry};
use taxitrace_timebase::Timestamp;
use taxitrace_traces::TripId;

use crate::epoch::EpochCell;
use crate::snapshot::Snapshot;

/// Latency histogram bounds, microseconds.
const LATENCY_BOUNDS_US: [f64; 10] =
    [50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 25000.0, 50000.0];

/// Per-connection read and write deadlines. A peer that trickles its
/// request (slow loris) or never drains the response is cut off here
/// rather than pinning a worker.
const IO_DEADLINE: Duration = Duration::from_secs(5);

/// Most header lines a request may send before it is refused with a
/// typed 431 (counted in `serve.oversize_total`): each line costs a
/// timed read, so unbounded headers would turn the read deadline into
/// `lines x deadline`.
const MAX_HEADER_LINES: usize = 64;

/// Server hardening knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Admission cap: connections being served simultaneously across all
    /// workers. Anything over it is shed with a typed 503 (and counted
    /// in `serve.shed_total`) instead of queueing without bound.
    pub max_inflight: usize,
}

impl ServeOptions {
    /// Default cap: double the worker count — full utilization plus a
    /// bounded accept backlog, never an unbounded queue.
    pub fn for_workers(workers: usize) -> Self {
        Self { max_inflight: workers.max(1) * 2 }
    }
}

/// Pre-registered metric handles: registration takes the registry mutex
/// once at startup, after which every increment is a plain atomic — the
/// request path never re-enters the registry.
#[derive(Debug, Clone)]
pub(crate) struct ServeMetrics {
    requests_total: Counter,
    od_flow: Counter,
    cell_speed: Counter,
    trip_lookup: Counter,
    grid_stats: Counter,
    errors_total: Counter,
    shed_total: Counter,
    oversize_total: Counter,
    latency_us: Histogram,
    epoch_refreshes: Counter,
}

impl ServeMetrics {
    pub(crate) fn new(reg: &Registry) -> Self {
        Self {
            requests_total: reg.counter("serve.requests_total"),
            od_flow: reg.counter("serve.requests.od_flow"),
            cell_speed: reg.counter("serve.requests.cell_speed"),
            trip_lookup: reg.counter("serve.requests.trip_lookup"),
            grid_stats: reg.counter("serve.requests.grid_stats"),
            errors_total: reg.counter("serve.errors_total"),
            shed_total: reg.counter("serve.shed_total"),
            oversize_total: reg.counter("serve.oversize_total"),
            latency_us: reg.histogram("serve.latency_us", &LATENCY_BOUNDS_US),
            epoch_refreshes: reg.counter("serve.epoch_refreshes"),
        }
    }
}

/// A running HTTP server: N worker threads accepting on one ephemeral
/// listener, serving the snapshot currently in the [`EpochCell`].
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    cell: Arc<EpochCell<Snapshot>>,
    registry: Registry,
    shutdown: Arc<AtomicBool>,
    swaps: Counter,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:port` (0 = ephemeral) and starts `workers`
    /// accept loops over `snapshot`. Metrics land in `registry` under
    /// the `serve.*` names.
    pub fn start(
        snapshot: Snapshot,
        port: u16,
        workers: usize,
        registry: Registry,
    ) -> std::io::Result<Server> {
        Server::start_with(snapshot, port, workers, registry, ServeOptions::for_workers(workers))
    }

    /// [`Server::start`] with explicit hardening knobs.
    pub fn start_with(
        snapshot: Snapshot,
        port: u16,
        workers: usize,
        registry: Registry,
        options: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let cell = Arc::new(EpochCell::new(Arc::new(snapshot)));
        let shutdown = Arc::new(AtomicBool::new(false));
        let inflight = Arc::new(AtomicU64::new(0));
        let metrics = ServeMetrics::new(&registry);
        let swaps = registry.counter("serve.snapshot_swaps");
        registry.gauge("serve.workers").set(workers as f64);
        registry.gauge("serve.max_inflight").set(options.max_inflight as f64);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers.max(1) {
            let listener = listener.try_clone()?;
            let cell = Arc::clone(&cell);
            let shutdown = Arc::clone(&shutdown);
            let inflight = Arc::clone(&inflight);
            let metrics = metrics.clone();
            let registry = registry.clone();
            handles.push(std::thread::spawn(move || {
                worker_loop(
                    listener,
                    &cell,
                    &shutdown,
                    &inflight,
                    options.max_inflight as u64,
                    &metrics,
                    &registry,
                );
            }));
        }
        Ok(Server { addr, cell, registry, shutdown, swaps, workers: handles })
    }

    /// The bound address (ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the `serve.*` metrics land in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The current snapshot, for in-process queries through the same
    /// [`QueryEngine`] the HTTP workers use.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.cell.load()
    }

    /// Publishes a new snapshot; readers pick it up on their next
    /// request. Returns the new epoch.
    pub fn swap(&self, snapshot: Snapshot) -> u64 {
        self.swaps.inc();
        self.cell.swap(Arc::new(snapshot))
    }

    /// Stops accepting, wakes every worker and joins them.
    pub fn shutdown(self) {
        // sync(shutdown): Release pairs with the workers' Acquire load
        // after the wake connection unblocks accept.
        self.shutdown.store(true, Ordering::Release);
        // One wake connection per worker: each blocked accept returns
        // once, observes the flag and exits.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for h in self.workers {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    listener: TcpListener,
    cell: &EpochCell<Snapshot>,
    shutdown: &AtomicBool,
    inflight: &AtomicU64,
    max_inflight: u64,
    metrics: &ServeMetrics,
    registry: &Registry,
) {
    let mut reader = cell.reader();
    for conn in listener.incoming() {
        // sync(shutdown): Acquire pairs with shutdown()'s Release store.
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Admission gate: over the cap, shed with a typed 503 instead of
        // queueing without bound. sync(inflight): plain occupancy count;
        // Relaxed RMWs are exact, no ordering needed against the work.
        let occupied = inflight.fetch_add(1, Ordering::Relaxed);
        if occupied >= max_inflight {
            metrics.shed_total.inc();
            shed(stream);
        } else {
            let refreshes_before = reader.refreshes();
            handle_conn(stream, &mut reader, metrics, registry);
            let refreshed = reader.refreshes() - refreshes_before;
            if refreshed > 0 {
                metrics.epoch_refreshes.add(refreshed);
            }
        }
        // sync(inflight): release the admission slot.
        inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Refuses a connection with a typed 503. The request is drained
/// (bounded, never parsed) before responding so the close is a clean
/// FIN — closing with unread data would RST and could discard the 503
/// on the peer's side.
fn shed(stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_DEADLINE));
    let _ = stream.set_write_timeout(Some(IO_DEADLINE));
    let mut buf = BufReader::new(stream);
    let mut line = String::new();
    for _ in 0..MAX_HEADER_LINES {
        line.clear();
        match buf.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let mut stream = buf.into_inner();
    respond(&mut stream, 503, &err_json("over capacity, retry later"));
}

fn handle_conn(
    stream: TcpStream,
    reader: &mut crate::epoch::EpochReader<'_, Snapshot>,
    metrics: &ServeMetrics,
    registry: &Registry,
) {
    let _ = stream.set_read_timeout(Some(IO_DEADLINE));
    let _ = stream.set_write_timeout(Some(IO_DEADLINE));
    let mut buf = BufReader::new(stream);
    let mut line = String::new();
    if buf.read_line(&mut line).is_err() || line.is_empty() {
        return;
    }
    // Drain headers (ignored: every request is a parameterless GET),
    // bounded so a drip-fed header stream cannot hold the worker past
    // `MAX_HEADER_LINES` read deadlines.
    let mut header = String::new();
    for drained in 0.. {
        if drained >= MAX_HEADER_LINES {
            // Tell the client why before closing: a silent drop looks
            // like a network fault and invites a retry of the same
            // oversized request.
            metrics.oversize_total.inc();
            let mut stream = buf.into_inner();
            respond(&mut stream, 431, &err_json("too many header lines"));
            return;
        }
        header.clear();
        match buf.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    let mut stream = buf.into_inner();

    let target = match parse_request_line(&line) {
        Some(t) => t,
        None => {
            metrics.errors_total.inc();
            respond(&mut stream, 400, &err_json("malformed request line"));
            return;
        }
    };
    let (path, params) = split_target(&target);
    metrics.requests_total.inc();
    match path {
        "/healthz" => {
            reader.get();
            let body = format!("{{\"ok\":true,\"epoch\":{}}}", reader.epoch());
            respond(&mut stream, 200, &body);
        }
        "/metrics" => {
            // Diagnostics, not a query kind: snapshotting the registry
            // takes its mutexes, the four query routes never do.
            respond(&mut stream, 200, &render_json(&registry.snapshot()));
        }
        _ => match parse_query(path, &params) {
            Err(NotFound) => {
                metrics.errors_total.inc();
                respond(&mut stream, 404, &err_json("no such route"));
            }
            Ok(Err(msg)) => {
                metrics.errors_total.inc();
                respond(&mut stream, 400, &err_json(&msg));
            }
            Ok(Ok(req)) => {
                count_kind(metrics, &req);
                // lint:allow(determinism): request latency is wall-clock telemetry, not pipeline state
                let t0 = std::time::Instant::now();
                let result = reader.get().query(&req);
                metrics.latency_us.observe(t0.elapsed().as_secs_f64() * 1e6);
                match result {
                    Ok(resp) => respond(&mut stream, 200, &resp.to_json()),
                    Err(e) => {
                        metrics.errors_total.inc();
                        respond(&mut stream, 400, &err_json(&e.to_string()));
                    }
                }
            }
        },
    }
}

fn count_kind(metrics: &ServeMetrics, req: &QueryRequest) {
    match req {
        QueryRequest::OdFlow { .. } => metrics.od_flow.inc(),
        QueryRequest::CellSpeed { .. } => metrics.cell_speed.inc(),
        QueryRequest::TripLookup { .. } => metrics.trip_lookup.inc(),
        QueryRequest::GridStats { .. } => metrics.grid_stats.inc(),
    }
}

/// Marker: the path names no route.
struct NotFound;

/// Maps a route + params to a typed request. Outer `Err` = unknown
/// route (404), inner `Err` = bad parameters (400).
fn parse_query(
    path: &str,
    params: &[(String, String)],
) -> Result<Result<QueryRequest, String>, NotFound> {
    let get = |k: &str| params.iter().find(|(p, _)| p == k).map(|(_, v)| v.as_str());
    let parse_i64 = |k: &str| -> Result<Option<i64>, String> {
        match get(k) {
            None => Ok(None),
            Some(v) => v
                .parse::<i64>()
                .map(Some)
                .map_err(|_| format!("parameter {k:?} is not an integer: {v:?}")),
        }
    };
    match path {
        "/od_flow" => Ok((|| {
            let window = match (parse_i64("from")?, parse_i64("to")?) {
                (None, None) => None,
                (Some(f), Some(t)) => {
                    Some((Timestamp::from_secs(f), Timestamp::from_secs(t)))
                }
                _ => return Err("od_flow needs both `from` and `to`, or neither".into()),
            };
            Ok(QueryRequest::OdFlow { window })
        })()),
        "/cell_speed" => Ok((|| {
            let (ix, iy) = match (parse_i64("ix")?, parse_i64("iy")?) {
                (Some(ix), Some(iy)) => (ix, iy),
                _ => return Err("cell_speed needs `ix` and `iy`".into()),
            };
            let (ix, iy) = (
                i32::try_from(ix).map_err(|_| "ix out of range".to_string())?,
                i32::try_from(iy).map_err(|_| "iy out of range".to_string())?,
            );
            Ok(QueryRequest::CellSpeed { cell: CellId { ix, iy } })
        })()),
        "/trip" => Ok((|| {
            let id = get("id").ok_or_else(|| "trip needs `id`".to_string())?;
            let id = id
                .parse::<u64>()
                .map_err(|_| format!("parameter \"id\" is not an integer: {id:?}"))?;
            Ok(QueryRequest::TripLookup { trip: TripId(id) })
        })()),
        "/grid_stats" => {
            Ok(Ok(QueryRequest::GridStats { pair: get("pair").map(str::to_string) }))
        }
        _ => Err(NotFound),
    }
}

/// `GET /path?k=v HTTP/1.1` → `/path?k=v`. Only GET is served.
fn parse_request_line(line: &str) -> Option<String> {
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some("GET"), Some(target), Some(_)) => Some(target.to_string()),
        _ => None,
    }
}

fn split_target(target: &str) -> (&str, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target, Vec::new()),
        Some((path, qs)) => {
            let params = qs
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (kv.to_string(), String::new()),
                })
                .collect();
            (path, params)
        }
    }
}

fn err_json(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape_json(msg))
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_request_line("GET /od_flow?from=0&to=9 HTTP/1.1\r\n").as_deref(),
            Some("/od_flow?from=0&to=9")
        );
        assert!(parse_request_line("POST / HTTP/1.1\r\n").is_none());
        assert!(parse_request_line("garbage\r\n").is_none());
    }

    #[test]
    fn target_splitting() {
        let (path, params) = split_target("/cell_speed?ix=3&iy=-2");
        assert_eq!(path, "/cell_speed");
        assert_eq!(
            params,
            vec![("ix".to_string(), "3".to_string()), ("iy".to_string(), "-2".to_string())]
        );
        assert_eq!(split_target("/healthz"), ("/healthz", Vec::new()));
    }

    #[test]
    fn query_routing() {
        assert!(matches!(
            parse_query("/trip", &[("id".into(), "7".into())]),
            Ok(Ok(QueryRequest::TripLookup { trip: TripId(7) }))
        ));
        assert!(matches!(parse_query("/nope", &[]), Err(NotFound)));
        assert!(matches!(parse_query("/trip", &[]), Ok(Err(_))));
        assert!(matches!(
            parse_query("/od_flow", &[("from".into(), "1".into())]),
            Ok(Err(_))
        ));
        assert!(matches!(
            parse_query("/cell_speed", &[("ix".into(), "x".into()), ("iy".into(), "0".into())]),
            Ok(Err(_))
        ));
    }
}
