//! `taxitrace-serve`: a read service over immutable store snapshots.
//!
//! The batch pipeline (`taxitrace-core`) produces study outputs; this
//! crate makes them queryable — in process through the shared
//! [`QueryEngine`] trait, and over the wire through a dependency-free
//! HTTP/JSON front end. Three design rules hold everywhere:
//!
//! 1. **Snapshots are immutable.** A [`Snapshot`] is opened through the
//!    store's CRC-verified read path (v3 offset index preferred, salvage
//!    demotion on damage) and never mutated; updates swap the whole
//!    object.
//! 2. **No locks on the read path.** Workers share snapshots through an
//!    [`EpochCell`] — a hand-rolled, safe-Rust arc-swap where the
//!    steady-state read is one atomic load (see [`epoch`] for the
//!    protocol, [`loadgen::contention_bench`] for the evidence).
//! 3. **One query surface.** The HTTP routes answer through the same
//!    [`QueryEngine`]/[`answer`](taxitrace_core::answer) implementation
//!    as the batch path, so serving cannot drift from analysis — pinned
//!    by the serving parity proptest.
//!
//! ```no_run
//! use taxitrace_core::{QueryEngine, QueryRequest, StudyConfig};
//! use taxitrace_obs::Registry;
//! use taxitrace_serve::{Server, Snapshot};
//!
//! let snap = Snapshot::open("trips.ttrs".as_ref(), StudyConfig::quick(7))?;
//! let server = Server::start(snap, 0, 4, Registry::new())?;
//! println!("serving on {}", server.addr());
//! let resp = server.snapshot().query(&QueryRequest::OdFlow { window: None })?;
//! println!("{}", resp.to_json());
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod epoch;
pub mod http;
pub mod loadgen;
pub mod snapshot;

pub use epoch::{EpochCell, EpochReader};
pub use http::{ServeOptions, Server};
pub use loadgen::{contention_bench, fnv1a, run_load, ContentionReport, LoadReport, LoadSpec};
pub use snapshot::Snapshot;

// Re-exported so binaries can use the unified surface without naming the
// core crate twice.
pub use taxitrace_core::{QueryEngine, QueryRequest, QueryResponse};
