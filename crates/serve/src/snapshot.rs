//! Immutable, CRC-verified serving snapshots.
//!
//! A [`Snapshot`] is a fully analysed study pinned in memory: the trip
//! store plus every derived product the four query kinds need. Opening
//! one goes through the store codec's verified read path — a clean v3
//! container is served via its offset index (zero-copy seek reads), any
//! damage demotes the read to the salvage scan with the loss quarantined
//! and counted, and a config-fingerprint mismatch is refused outright.
//! Once built, a snapshot is never mutated; replacement is a whole-object
//! swap through [`crate::EpochCell`].

use std::path::Path;

use taxitrace_core::{
    answer, Error, GridStats, QueryEngine, QueryRequest, QueryResponse, Study, StudyConfig,
    StudyOutput,
};
use taxitrace_store::QueryError;

/// An immutable study result prepared for serving: the output plus a
/// cached all-pairs grid analysis (so `cell_speed` and the default
/// `grid_stats` answer without recomputing the §V binning per request).
#[derive(Debug)]
pub struct Snapshot {
    output: StudyOutput,
    grid: GridStats,
}

impl Snapshot {
    /// Opens a store file and runs the analysis pipeline over it,
    /// producing a servable snapshot. Verified reads, salvage demotion
    /// and fingerprint gating are inherited from
    /// [`Study::run_from_store`]; the quarantine ledger and `store.*`
    /// counters of the underlying run stay inspectable via
    /// [`Snapshot::output`].
    pub fn open(path: &Path, config: StudyConfig) -> Result<Self, Error> {
        Ok(Self::from_output(Study::new(config).run_from_store(path)?))
    }

    /// Wraps an already-computed study output (the batch path's object)
    /// without re-running anything.
    pub fn from_output(output: StudyOutput) -> Self {
        let grid = output.grid_stats(None);
        Self { output, grid }
    }

    /// The underlying study output (store, transitions, quarantine,
    /// metrics of the build run).
    pub fn output(&self) -> &StudyOutput {
        &self.output
    }

    /// The cached all-pairs grid analysis.
    pub fn grid(&self) -> &GridStats {
        &self.grid
    }
}

impl QueryEngine for Snapshot {
    fn query(&self, req: &QueryRequest) -> Result<QueryResponse, QueryError> {
        // Identical semantics to the batch path by construction: same
        // `answer` implementation, cached grid instead of a fresh one.
        answer(&self.output, &self.grid, req)
    }
}
