use serde::{Deserialize, Serialize};

/// Instantaneous fuel-consumption model.
///
/// A simple physically-motivated rate model (idle + rolling/engine load
/// proportional to speed + aerodynamic term + acceleration work):
///
/// ```text
/// rate(v, a) = idle + k1·v + k2·v³ + k3·max(a, 0)·v      [ml/s]
/// ```
///
/// Calibrated so an urban stop-and-go trip consumes ≈ 100–130 ml/km and a
/// free-flowing 60 km/h stretch ≈ 70–80 ml/km, matching the magnitude of the
/// paper's Table 4 fuel column (medians ≈ 210–220 ml over ≈ 2 km routes) and
/// reproducing the literature finding the paper cites: low-speed driving
/// correlates with higher consumption per distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuelModel {
    /// Idle burn, ml/s.
    pub idle_ml_s: f64,
    /// Linear speed coefficient, ml per metre.
    pub k1: f64,
    /// Cubic (aerodynamic) coefficient, ml·s²/m³.
    pub k2: f64,
    /// Acceleration coefficient, ml·s²/m² (applied to positive accel only).
    pub k3: f64,
}

impl Default for FuelModel {
    fn default() -> Self {
        Self { idle_ml_s: 0.25, k1: 0.055, k2: 2.0e-5, k3: 0.09 }
    }
}

impl FuelModel {
    /// Consumption rate in ml/s at speed `v_ms` (m/s) and acceleration
    /// `a_ms2` (m/s²).
    pub fn rate_ml_s(&self, v_ms: f64, a_ms2: f64) -> f64 {
        debug_assert!(v_ms >= 0.0);
        self.idle_ml_s + self.k1 * v_ms + self.k2 * v_ms.powi(3) + self.k3 * a_ms2.max(0.0) * v_ms
    }

    /// Fuel for one simulation step of `dt` seconds, ml.
    pub fn step_ml(&self, v_ms: f64, a_ms2: f64, dt: f64) -> f64 {
        self.rate_ml_s(v_ms, a_ms2) * dt
    }

    /// Steady-state consumption per kilometre at constant speed, ml/km.
    pub fn per_km_at(&self, v_kmh: f64) -> f64 {
        let v = v_kmh / 3.6;
        if v <= 0.0 {
            return f64::INFINITY;
        }
        self.rate_ml_s(v, 0.0) / v * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_speed_is_less_efficient_per_km() {
        let m = FuelModel::default();
        // Below ~50 km/h, slower is worse per km (idle dominates).
        assert!(m.per_km_at(5.0) > m.per_km_at(20.0));
        assert!(m.per_km_at(20.0) > m.per_km_at(40.0));
    }

    #[test]
    fn urban_magnitude_matches_table4() {
        let m = FuelModel::default();
        // ~30 km/h cruising: between 70 and 130 ml/km.
        let c30 = m.per_km_at(30.0);
        assert!((70.0..140.0).contains(&c30), "{c30}");
        // A 2 km urban route should land in the low hundreds of ml,
        // like Table 4's medians (~210–220 ml), once stops are added.
        let cruise = 2.0 * c30;
        assert!((140.0..300.0).contains(&cruise), "{cruise}");
    }

    #[test]
    fn acceleration_costs_extra() {
        let m = FuelModel::default();
        assert!(m.rate_ml_s(10.0, 1.5) > m.rate_ml_s(10.0, 0.0));
        // Deceleration costs nothing extra (fuel cut).
        assert_eq!(m.rate_ml_s(10.0, -2.0), m.rate_ml_s(10.0, 0.0));
    }

    #[test]
    fn idle_rate_at_standstill() {
        let m = FuelModel::default();
        assert_eq!(m.rate_ml_s(0.0, 0.0), m.idle_ml_s);
        assert_eq!(m.step_ml(0.0, 0.0, 60.0), m.idle_ml_s * 60.0);
    }
}
