use serde::{Deserialize, Serialize};
use taxitrace_timebase::Season;

use crate::rng::Rng;

/// Per-driver behaviour parameters.
///
/// The paper stresses that taxi drivers "freely selected the routes … based
/// on their own silent knowledge and intuition"; we model inter-driver
/// variation as a profile sampled once per taxi.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriverProfile {
    /// Multiplier on the speed limit for the driver's cruise target.
    pub speed_factor: f64,
    /// Comfortable acceleration, m/s².
    pub accel_ms2: f64,
    /// Comfortable deceleration, m/s².
    pub decel_ms2: f64,
    /// Probability of having to stop at a signalised junction.
    pub light_stop_prob: f64,
    /// Probability of yielding (slowing hard) at a pedestrian crossing.
    pub crossing_yield_prob: f64,
    /// Route-choice noisiness: log-normal sigma applied to edge costs.
    pub route_noise: f64,
}

impl DriverProfile {
    /// Samples a profile for one driver.
    pub fn sample(rng: &mut Rng) -> Self {
        Self {
            speed_factor: (1.0 + 0.06 * rng.normal()).clamp(0.85, 1.15),
            accel_ms2: rng.range(1.3, 1.9),
            decel_ms2: rng.range(1.8, 2.6),
            light_stop_prob: rng.range(0.35, 0.5),
            crossing_yield_prob: rng.range(0.25, 0.45),
            route_noise: rng.range(0.15, 0.35),
        }
    }

    /// Wait time when stopped at a traffic light, seconds.
    ///
    /// The paper's Table 2 rationale: unfavourable waits are 50–60 s, and
    /// lights fail to blinking-yellow after at most 200 s — so waits beyond
    /// 200 s do not occur. We sample a truncated exponential with a rare
    /// long tail below that bound.
    pub fn light_wait_s(&self, rng: &mut Rng) -> f64 {
        if rng.chance(0.02) {
            // Rare unfavourable cycle.
            rng.range(50.0, 60.0).min(199.0)
        } else {
            rng.exponential(26.0).clamp(5.0, 80.0)
        }
    }
}

/// Seasonal driving-speed multiplier.
///
/// Calibrated so the per-season mean point speeds order like the paper's
/// Fig. 5 deltas (winter −0.07, spring +0.46, summer +0.70, autumn
/// +1.38 km/h against the annual mean): winter lowest (compounded by icy
/// road conditions from the weather model), autumn highest.
pub fn season_speed_factor(season: Season) -> f64 {
    match season {
        Season::Winter => 1.000,
        Season::Spring => 1.006,
        Season::Summer => 1.010,
        Season::Autumn => 1.045,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_within_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..200 {
            let p = DriverProfile::sample(&mut rng);
            assert!((0.85..=1.15).contains(&p.speed_factor));
            assert!(p.accel_ms2 < p.decel_ms2 + 1.0);
            assert!((0.0..=1.0).contains(&p.light_stop_prob));
        }
    }

    #[test]
    fn light_waits_bounded_by_200s() {
        let mut rng = Rng::new(2);
        let p = DriverProfile::sample(&mut rng);
        for _ in 0..5000 {
            let w = p.light_wait_s(&mut rng);
            assert!((0.0..200.0).contains(&w), "wait {w}");
        }
    }

    #[test]
    fn season_factors_ordered_like_fig5() {
        let w = season_speed_factor(Season::Winter);
        let sp = season_speed_factor(Season::Spring);
        let su = season_speed_factor(Season::Summer);
        let au = season_speed_factor(Season::Autumn);
        assert!(w < sp && sp < su && su < au);
    }
}
