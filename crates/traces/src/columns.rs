//! Struct-of-arrays trace buffers.
//!
//! [`RoutePoint`] is a ~140-byte struct; cleaning rules and grid statistics
//! only touch a couple of its fields per point, so iterating `&[RoutePoint]`
//! drags the whole struct through the cache for every coordinate compared.
//! [`TraceColumns`] gathers the hot fields — planar coordinates, timestamp
//! seconds, OBD speed — into contiguous `f64`/`i64` columns once per
//! session; the Table 2 pair rules, rule 1/5 runs, length filters and grid
//! binning then stream over dense columns instead of pointer-chasing
//! structs.
//!
//! The columns are a *view* for computation: they carry no identity fields,
//! and materialising kept segments still slices the original point vector.

use std::ops::Range;

use crate::model::RoutePoint;

/// Hot route-point fields in struct-of-arrays layout.
#[derive(Debug, Clone, Default)]
pub struct TraceColumns {
    /// Planar x per point, metres.
    pub x: Vec<f64>,
    /// Planar y per point, metres.
    pub y: Vec<f64>,
    /// Timestamp per point, Unix seconds.
    pub t_secs: Vec<i64>,
    /// OBD speed per point, km/h.
    pub speed_kmh: Vec<f64>,
}

impl TraceColumns {
    /// Gathers the hot columns from a point stream (one linear pass).
    pub fn from_points(points: &[RoutePoint]) -> Self {
        let mut cols = Self {
            x: Vec::with_capacity(points.len()),
            y: Vec::with_capacity(points.len()),
            t_secs: Vec::with_capacity(points.len()),
            speed_kmh: Vec::with_capacity(points.len()),
        };
        for p in points {
            cols.x.push(p.pos.x);
            cols.y.push(p.pos.y);
            cols.t_secs.push(p.timestamp.secs());
            cols.speed_kmh.push(p.speed_kmh);
        }
        cols
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the buffer holds no points.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Euclidean distance between rows `i` and `j`, metres. Uses `hypot`
    /// to match `Point::distance` bit-for-bit, so columnar reimplementations
    /// of point-slice code stay exactly equal to their references.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        (self.x[j] - self.x[i]).hypot(self.y[j] - self.y[i])
    }

    /// Seconds elapsed from row `i` to row `j` (negative if out of order).
    #[inline]
    pub fn dt_s(&self, i: usize, j: usize) -> i64 {
        self.t_secs[j] - self.t_secs[i]
    }

    /// Polyline length over the consecutive points of `range`, metres.
    pub fn length_m(&self, range: Range<usize>) -> f64 {
        if range.len() < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in range.start..range.end - 1 {
            sum += self.dist(i, i + 1);
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_timebase::Timestamp;

    use crate::model::{PointTruth, TaxiId, TripId};

    fn pt(t: i64, x: f64, y: f64, v: f64) -> RoutePoint {
        RoutePoint {
            point_id: t as u64,
            trip_id: TripId(1),
            taxi: TaxiId(1),
            geo: GeoPoint::new(25.0, 65.0),
            pos: Point::new(x, y),
            timestamp: Timestamp::from_secs(t),
            speed_kmh: v,
            heading_deg: 0.0,
            fuel_ml: 0.0,
            truth: PointTruth { seq: t as u32, element: None },
        }
    }

    #[test]
    fn gathers_hot_fields() {
        let pts = vec![pt(0, 0.0, 0.0, 10.0), pt(10, 3.0, 4.0, 20.0)];
        let cols = TraceColumns::from_points(&pts);
        assert_eq!(cols.len(), 2);
        assert!(!cols.is_empty());
        assert_eq!(cols.x, vec![0.0, 3.0]);
        assert_eq!(cols.y, vec![0.0, 4.0]);
        assert_eq!(cols.t_secs, vec![0, 10]);
        assert_eq!(cols.speed_kmh, vec![10.0, 20.0]);
        assert_eq!(cols.dist(0, 1), 5.0);
        assert_eq!(cols.dt_s(0, 1), 10);
    }

    #[test]
    fn length_matches_pairwise_distances() {
        let pts: Vec<RoutePoint> =
            (0..10).map(|i| pt(i as i64, i as f64 * 50.0, 0.0, 0.0)).collect();
        let cols = TraceColumns::from_points(&pts);
        assert_eq!(cols.length_m(0..10), 450.0);
        assert_eq!(cols.length_m(2..5), 100.0);
        assert_eq!(cols.length_m(3..4), 0.0);
        assert_eq!(cols.length_m(0..0), 0.0);
        let empty = TraceColumns::from_points(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.length_m(0..0), 0.0);
    }
}
