//! Injectable fault plans: the chaos harness behind `repro --chaos`.
//!
//! [`crate::corruption`] models the *everyday* raw-data errors the paper's
//! cleaning stage repairs (latency reorder, clock glitch, duplicate
//! upload). A [`FaultPlan`] injects the *unrepairable* damage the
//! quarantine layer must survive — trace-level faults the anomaly
//! detectors should catch (teleports, flattened clocks, stuck sensors,
//! moving dropouts) plus stage-level faults exercising task isolation and
//! checkpoint/resume (injected task panics, a mid-run kill after a named
//! stage, an injected checkpoint-store failure).
//!
//! Everything is seeded and deterministic: the same plan applied to the
//! same fleet yields byte-identical faulted sessions, so chaos runs are as
//! reproducible as clean ones.

use serde::{Deserialize, Serialize};
use taxitrace_timebase::Duration;

use crate::model::RoutePoint;
use crate::rng::Rng;

/// Domain-separation constant for the chaos RNG stream (distinct from the
/// simulator's and weather's seed derivations).
const CHAOS_SEED_SALT: u64 = 0xC4A0_5F41;

/// Domain-separation constant for the on-disk corruption RNG stream
/// (distinct from the trace-fault stream so adding disk faults to a plan
/// never reshuffles its trace faults).
const DISK_SEED_SALT: u64 = 0xD15C_C0DE;

/// Domain-separation constant for the streaming-ingest fault stream
/// (distinct from the trace and disk streams so adding stream faults to a
/// plan never reshuffles the others).
const STREAM_SEED_SALT: u64 = 0x57E4_FEED;

/// Byte extent of one framed record inside a serialized container image,
/// as reported by the storage layer: `frame_start..end` spans the whole
/// record including its length/CRC framing, `payload_start..end` only the
/// payload bytes. The on-disk injectors aim bit flips at payloads (so a
/// flip damages exactly one record, not the framing that delimits its
/// neighbours) and duplicate whole frames (so a duplicated record parses
/// as a record, like a double upload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSpan {
    /// Start of the record frame (the length word).
    pub frame_start: usize,
    /// Start of the payload, after the framing.
    pub payload_start: usize,
    /// End of the record, exclusive.
    pub end: usize,
}

/// Which trace-level fault a session received.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectedFault {
    /// A run of points displaced far off-route (GPS teleport).
    Teleport,
    /// A run of timestamps thrown far backwards; the §IV-B monotonic
    /// clamp flattens them onto one value (clock skew).
    ClockFreeze,
    /// A run frozen at one position while speeds keep reporting driving.
    StuckSensor,
    /// A silent window removed mid-drive and the remaining tail delayed —
    /// the vehicle covers kilometres while the device says nothing.
    Dropout,
}

impl InjectedFault {
    /// Stable lowercase label (used in metrics names).
    pub fn label(self) -> &'static str {
        match self {
            InjectedFault::Teleport => "teleport",
            InjectedFault::ClockFreeze => "clock_freeze",
            InjectedFault::StuckSensor => "stuck_sensor",
            InjectedFault::Dropout => "dropout",
        }
    }
}

/// A deterministic, seeded chaos plan.
///
/// Probabilities are per session and mutually exclusive (at most one
/// trace-level fault class per session, like [`crate::corruption`]).
/// Stage-level fields are interpreted by the study pipeline, not here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the chaos RNG stream (forked per session by trip id).
    pub seed: u64,
    /// Probability a session gets a teleport fault.
    pub p_teleport: f64,
    /// Teleport displacement, metres.
    pub teleport_m: f64,
    /// Points displaced per teleport.
    pub teleport_points: usize,
    /// Probability a session gets a clock-freeze fault.
    pub p_clock_freeze: f64,
    /// Timestamps thrown backwards per clock freeze.
    pub freeze_points: usize,
    /// Probability a session gets a stuck-sensor fault.
    pub p_stuck: f64,
    /// Points frozen per stuck-sensor fault.
    pub stuck_points: usize,
    /// Probability a session gets a dropout fault.
    pub p_dropout: f64,
    /// Extra silence added across the dropout window, seconds.
    pub dropout_gap_s: i64,
    /// Stage-level: panic the clean task for every session whose trip id
    /// is divisible by this (0 = off). Exercises executor task isolation.
    pub task_panic_one_in: u64,
    /// Stage-level: after completing (and checkpointing) the named stage
    /// (`simulate`/`clean`/`od`), the study returns an injected error —
    /// a simulated kill that `Study::resume` must recover from.
    pub kill_after_stage: Option<String>,
    /// Stage-level: the named stage's first checkpoint write fails with
    /// an injected store error (once; a retry succeeds).
    pub fail_checkpoint_stage: Option<String>,
    /// Override of `MatchConfig::gap_fill_max_expansions` (to force the
    /// search-budget fallback on a normal-sized run).
    pub gap_fill_max_expansions: Option<u64>,
    /// Override of the stage error budget (max quarantined fraction).
    pub error_budget: Option<f64>,
    /// Override of the executor's per-task attempt bound.
    pub max_task_attempts: Option<u32>,
    /// On-disk: seeded single-bit flips applied to a container image by
    /// [`Self::corrupt_file`] (0 = off).
    pub disk_bit_flips: u32,
    /// On-disk: bytes chopped off the container tail (0 = off).
    pub disk_truncate_bytes: u64,
    /// On-disk: duplicate one seeded record frame in place (a double
    /// upload at the storage layer).
    pub disk_duplicate_record: bool,
    /// On-disk: overwrite the container magic with seeded garbage.
    pub disk_garbage_header: bool,
    /// Streaming: kill the ingest after consuming this many feed records
    /// (0 = off). The stream writes its cursor checkpoint at the kill
    /// point, so a resumed run must reproduce the uninterrupted
    /// fingerprint byte for byte.
    pub stream_kill_after_records: u64,
    /// Streaming: delay roughly one in this many feed records far past
    /// the watermark's lateness bound (0 = off) — a late-data flood that
    /// lands in the quarantine ledger, never in a closed trip.
    pub stream_late_one_in: u64,
    /// Streaming: extra arrival delay applied to flooded records, seconds.
    pub stream_late_delay_s: i64,
    /// Streaming: collapse roughly one in this many records' arrival time
    /// onto a coarse boundary (0 = off), so whole groups of records land
    /// in the same instant — burst arrival.
    pub stream_burst_one_in: u64,
    /// Streaming: stall the feeder thread before roughly one in this many
    /// records (0 = off). Exercises queue drain and backpressure without
    /// ever changing the output.
    pub stream_stall_one_in: u64,
    /// Streaming: garble roughly one in this many records' position to a
    /// non-finite coordinate (0 = off); the ingest must quarantine these
    /// as malformed instead of buffering them into a trip.
    pub stream_garble_one_in: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            p_teleport: 0.0,
            teleport_m: 5_000.0,
            teleport_points: 6,
            p_clock_freeze: 0.0,
            freeze_points: 120,
            p_stuck: 0.0,
            stuck_points: 16,
            p_dropout: 0.0,
            dropout_gap_s: 1_200,
            task_panic_one_in: 0,
            kill_after_stage: None,
            fail_checkpoint_stage: None,
            gap_fill_max_expansions: None,
            error_budget: None,
            max_task_attempts: None,
            disk_bit_flips: 0,
            disk_truncate_bytes: 0,
            disk_duplicate_record: false,
            disk_garbage_header: false,
            stream_kill_after_records: 0,
            stream_late_one_in: 0,
            stream_late_delay_s: 86_400,
            stream_burst_one_in: 0,
            stream_stall_one_in: 0,
            stream_garble_one_in: 0,
        }
    }
}

impl FaultPlan {
    /// Whether the plan injects any trace-level faults.
    pub fn has_trace_faults(&self) -> bool {
        self.p_teleport > 0.0
            || self.p_clock_freeze > 0.0
            || self.p_stuck > 0.0
            || self.p_dropout > 0.0
    }

    /// Whether the plan injects any on-disk corruption.
    pub fn has_disk_faults(&self) -> bool {
        self.disk_bit_flips > 0
            || self.disk_truncate_bytes > 0
            || self.disk_duplicate_record
            || self.disk_garbage_header
    }

    /// Whether the plan injects any streaming-ingest faults.
    pub fn has_stream_faults(&self) -> bool {
        self.stream_kill_after_records > 0
            || self.stream_late_one_in > 0
            || self.stream_burst_one_in > 0
            || self.stream_stall_one_in > 0
            || self.stream_garble_one_in > 0
    }

    /// The chaos RNG stream for one feed record, a pure function of the
    /// plan seed and the record's position in the arrival-ordered feed
    /// (so a kill/resume replays identical faults).
    pub fn stream_rng(&self, record_index: u64) -> Rng {
        Rng::new(self.seed ^ STREAM_SEED_SALT).fork(record_index.wrapping_add(1))
    }

    /// Applies the plan's on-disk faults to a serialized container image,
    /// deterministically: the same plan, `salt`, image, and spans always
    /// produce the same corrupted bytes. `records` comes from the storage
    /// layer (`taxitrace-store`'s `codec::record_spans`); with an empty
    /// span list, bit flips land anywhere in the image instead of being
    /// aimed at record payloads, and duplication is skipped. Returns the
    /// label of each fault actually applied, in application order.
    pub fn corrupt_file(
        &self,
        salt: u64,
        bytes: &mut Vec<u8>,
        records: &[RecordSpan],
    ) -> Vec<&'static str> {
        let mut applied = Vec::new();
        if !self.has_disk_faults() || bytes.is_empty() {
            return applied;
        }
        let mut rng = Rng::new(self.seed ^ DISK_SEED_SALT).fork(salt.wrapping_add(1));
        // Bit flips first, aimed inside payload spans (offsets stay valid
        // because flips do not move bytes).
        let payloads: Vec<&RecordSpan> =
            records.iter().filter(|r| r.end > r.payload_start).collect();
        for _ in 0..self.disk_bit_flips {
            let offset = if payloads.is_empty() {
                rng.below(bytes.len())
            } else {
                let r = payloads[rng.below(payloads.len())];
                r.payload_start + rng.below(r.end - r.payload_start)
            };
            bytes[offset] ^= 1 << rng.below(8);
        }
        applied.extend(std::iter::repeat_n("disk_bit_flip", self.disk_bit_flips as usize));
        // Duplicate one whole frame in place (shifts everything after the
        // insertion point, hence after the flips).
        if self.disk_duplicate_record && !records.is_empty() {
            let r = &records[rng.below(records.len())];
            let copy = bytes[r.frame_start..r.end].to_vec();
            let tail = bytes.split_off(r.end);
            bytes.extend_from_slice(&copy);
            bytes.extend_from_slice(&tail);
            applied.push("disk_duplicate_record");
        }
        if self.disk_truncate_bytes > 0 {
            let cut = usize::try_from(self.disk_truncate_bytes)
                .unwrap_or(usize::MAX)
                .min(bytes.len());
            bytes.truncate(bytes.len() - cut);
            applied.push("disk_truncate");
        }
        if self.disk_garbage_header {
            for b in bytes.iter_mut().take(8) {
                *b = rng.below(256) as u8;
            }
            applied.push("disk_garbage_header");
        }
        applied
    }

    /// The chaos RNG stream for one session, a pure function of the plan
    /// seed and the trip id.
    pub fn session_rng(&self, trip_id: u64) -> Rng {
        Rng::new(self.seed ^ CHAOS_SEED_SALT).fork(trip_id.wrapping_add(1))
    }

    /// Applies at most one trace-level fault to a session's points (in
    /// arrival order), returning what was injected. Deterministic given
    /// the plan and the trip id.
    pub fn apply_session(
        &self,
        trip_id: u64,
        points: &mut Vec<RoutePoint>,
    ) -> Option<InjectedFault> {
        if !self.has_trace_faults() || points.len() < 24 {
            return None;
        }
        let mut rng = self.session_rng(trip_id);
        let draw = rng.f64();
        let mut threshold = self.p_teleport;
        if draw < threshold {
            return self.teleport(&mut rng, points);
        }
        threshold += self.p_clock_freeze;
        if draw < threshold {
            return self.clock_freeze(&mut rng, points);
        }
        threshold += self.p_stuck;
        if draw < threshold {
            return self.stuck(&mut rng, points);
        }
        threshold += self.p_dropout;
        if draw < threshold {
            return self.dropout(&mut rng, points);
        }
        None
    }

    fn fault_run(&self, rng: &mut Rng, n: usize, len: usize) -> std::ops::Range<usize> {
        // An interior run, never touching the endpoints so the fault sits
        // inside driving, not at a session boundary.
        let len = len.clamp(1, n - 2);
        let start = 1 + rng.below(n - len - 1);
        start..start + len
    }

    fn teleport(&self, rng: &mut Rng, points: &mut [RoutePoint]) -> Option<InjectedFault> {
        let run = self.fault_run(rng, points.len(), self.teleport_points);
        let angle = rng.range(0.0, std::f64::consts::TAU);
        let (dx, dy) = (self.teleport_m * angle.cos(), self.teleport_m * angle.sin());
        for p in &mut points[run] {
            p.pos = taxitrace_geo::Point::new(p.pos.x + dx, p.pos.y + dy);
        }
        Some(InjectedFault::Teleport)
    }

    fn clock_freeze(&self, rng: &mut Rng, points: &mut [RoutePoint]) -> Option<InjectedFault> {
        let run = self.fault_run(rng, points.len(), self.freeze_points);
        // Far enough back that the order repair's monotonic clamp flattens
        // the whole run onto its predecessor's timestamp.
        let back = Duration::from_hours(2);
        for p in &mut points[run] {
            p.timestamp = p.timestamp - back;
        }
        Some(InjectedFault::ClockFreeze)
    }

    fn stuck(&self, rng: &mut Rng, points: &mut [RoutePoint]) -> Option<InjectedFault> {
        let run = self.fault_run(rng, points.len(), self.stuck_points);
        let anchor = points[run.start].pos;
        for p in &mut points[run] {
            p.pos = anchor;
            // The unit keeps claiming it drives.
            p.speed_kmh = p.speed_kmh.max(30.0);
        }
        Some(InjectedFault::StuckSensor)
    }

    fn dropout(&self, rng: &mut Rng, points: &mut Vec<RoutePoint>) -> Option<InjectedFault> {
        // Remove a window spanning at least 3 km of path, then delay the
        // tail: a device silent for `dropout_gap_s` extra seconds while
        // the vehicle keeps covering ground.
        let n = points.len();
        let start = 1 + rng.below(n / 2);
        let mut end = start + 1;
        let mut span_m = 0.0;
        while end < n - 1 && span_m < 3_200.0 {
            span_m += points[end - 1].pos.distance(points[end].pos);
            end += 1;
        }
        if span_m < 3_200.0 {
            // Session too short to fake a far-moving dropout; leave it.
            return None;
        }
        points.drain(start + 1..end - 1);
        let delay = Duration::from_secs(self.dropout_gap_s);
        for p in &mut points[start + 1..] {
            p.timestamp += delay;
        }
        for (i, p) in points.iter_mut().enumerate() {
            p.point_id = i as u64;
        }
        Some(InjectedFault::Dropout)
    }

    /// Parses the `key value` plan format (one pair per line; blank lines
    /// and `#` comments ignored). Unknown keys are errors so a typo can
    /// never silently disable a fault.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("line {}: expected `key value`", lineno + 1))?;
            let value = value.trim();
            let bad = |what: &str| format!("line {}: bad {what} value {value:?}", lineno + 1);
            match key {
                "seed" => plan.seed = value.parse().map_err(|_| bad("u64"))?,
                "p_teleport" => plan.p_teleport = value.parse().map_err(|_| bad("f64"))?,
                "teleport_m" => plan.teleport_m = value.parse().map_err(|_| bad("f64"))?,
                "teleport_points" => {
                    plan.teleport_points = value.parse().map_err(|_| bad("usize"))?
                }
                "p_clock_freeze" => {
                    plan.p_clock_freeze = value.parse().map_err(|_| bad("f64"))?
                }
                "freeze_points" => {
                    plan.freeze_points = value.parse().map_err(|_| bad("usize"))?
                }
                "p_stuck" => plan.p_stuck = value.parse().map_err(|_| bad("f64"))?,
                "stuck_points" => {
                    plan.stuck_points = value.parse().map_err(|_| bad("usize"))?
                }
                "p_dropout" => plan.p_dropout = value.parse().map_err(|_| bad("f64"))?,
                "dropout_gap_s" => {
                    plan.dropout_gap_s = value.parse().map_err(|_| bad("i64"))?
                }
                "task_panic_one_in" => {
                    plan.task_panic_one_in = value.parse().map_err(|_| bad("u64"))?
                }
                "kill_after_stage" => plan.kill_after_stage = Some(value.to_string()),
                "fail_checkpoint_stage" => {
                    plan.fail_checkpoint_stage = Some(value.to_string())
                }
                "gap_fill_max_expansions" => {
                    plan.gap_fill_max_expansions =
                        Some(value.parse().map_err(|_| bad("u64"))?)
                }
                "error_budget" => {
                    plan.error_budget = Some(value.parse().map_err(|_| bad("f64"))?)
                }
                "max_task_attempts" => {
                    plan.max_task_attempts = Some(value.parse().map_err(|_| bad("u32"))?)
                }
                "disk_bit_flips" => {
                    plan.disk_bit_flips = value.parse().map_err(|_| bad("u32"))?
                }
                "disk_truncate_bytes" => {
                    plan.disk_truncate_bytes = value.parse().map_err(|_| bad("u64"))?
                }
                "disk_duplicate_record" => {
                    plan.disk_duplicate_record = value.parse().map_err(|_| bad("bool"))?
                }
                "disk_garbage_header" => {
                    plan.disk_garbage_header = value.parse().map_err(|_| bad("bool"))?
                }
                "stream_kill_after_records" => {
                    plan.stream_kill_after_records =
                        value.parse().map_err(|_| bad("u64"))?
                }
                "stream_late_one_in" => {
                    plan.stream_late_one_in = value.parse().map_err(|_| bad("u64"))?
                }
                "stream_late_delay_s" => {
                    plan.stream_late_delay_s = value.parse().map_err(|_| bad("i64"))?
                }
                "stream_burst_one_in" => {
                    plan.stream_burst_one_in = value.parse().map_err(|_| bad("u64"))?
                }
                "stream_stall_one_in" => {
                    plan.stream_stall_one_in = value.parse().map_err(|_| bad("u64"))?
                }
                "stream_garble_one_in" => {
                    plan.stream_garble_one_in = value.parse().map_err(|_| bad("u64"))?
                }
                other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Structural sanity of a plan (probabilities, budgets in range).
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("p_teleport", self.p_teleport),
            ("p_clock_freeze", self.p_clock_freeze),
            ("p_stuck", self.p_stuck),
            ("p_dropout", self.p_dropout),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability, got {p}"));
            }
        }
        let total =
            self.p_teleport + self.p_clock_freeze + self.p_stuck + self.p_dropout;
        if total > 1.0 {
            return Err(format!("fault probabilities sum to {total} > 1"));
        }
        if let Some(b) = self.error_budget {
            if !(0.0..=1.0).contains(&b) {
                return Err(format!("error_budget must be in [0, 1], got {b}"));
            }
        }
        if self.dropout_gap_s < 0 {
            return Err(format!("dropout_gap_s must be >= 0, got {}", self.dropout_gap_s));
        }
        if self.stream_late_delay_s < 0 {
            return Err(format!(
                "stream_late_delay_s must be >= 0, got {}",
                self.stream_late_delay_s
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PointTruth, TaxiId, TripId};
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_timebase::Timestamp;

    fn mk_points(n: usize) -> Vec<RoutePoint> {
        (0..n)
            .map(|i| RoutePoint {
                point_id: i as u64,
                trip_id: TripId(1),
                taxi: TaxiId(1),
                geo: GeoPoint::new(25.0, 65.0),
                pos: Point::new(i as f64 * 120.0, 0.0),
                timestamp: Timestamp::from_secs(i as i64 * 15),
                speed_kmh: 30.0,
                heading_deg: 90.0,
                fuel_ml: i as f64,
                truth: PointTruth { seq: i as u32, element: None },
            })
            .collect()
    }

    #[test]
    fn parse_round_trip() {
        let text = "# smoke plan\nseed 99\np_teleport 0.25\np_dropout 0.1\n\
                    task_panic_one_in 17\nkill_after_stage clean\nerror_budget 0.9\n";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.seed, 99);
        assert_eq!(plan.p_teleport, 0.25);
        assert_eq!(plan.p_dropout, 0.1);
        assert_eq!(plan.task_panic_one_in, 17);
        assert_eq!(plan.kill_after_stage.as_deref(), Some("clean"));
        assert_eq!(plan.error_budget, Some(0.9));
        assert!(plan.has_trace_faults());
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_values() {
        assert!(FaultPlan::parse("p_telport 0.5\n").is_err());
        assert!(FaultPlan::parse("p_teleport yes\n").is_err());
        assert!(FaultPlan::parse("p_teleport 1.5\n").is_err());
        assert!(FaultPlan::parse("p_teleport 0.8\np_dropout 0.8\n").is_err());
    }

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        let mut points = mk_points(60);
        let before = points.clone();
        assert_eq!(plan.apply_session(7, &mut points), None);
        assert_eq!(points, before);
    }

    #[test]
    fn faults_are_deterministic_per_trip() {
        let plan = FaultPlan { p_teleport: 0.5, p_dropout: 0.5, ..FaultPlan::default() };
        for trip in 0..20u64 {
            let mut a = mk_points(80);
            let mut b = mk_points(80);
            let fa = plan.apply_session(trip, &mut a);
            let fb = plan.apply_session(trip, &mut b);
            assert_eq!(fa, fb);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn teleport_displaces_a_run() {
        let plan = FaultPlan { p_teleport: 1.0, ..FaultPlan::default() };
        let mut points = mk_points(60);
        assert_eq!(plan.apply_session(3, &mut points), Some(InjectedFault::Teleport));
        let displaced = points
            .iter()
            .zip(mk_points(60))
            .filter(|(a, b)| a.pos.distance(b.pos) > 1_000.0)
            .count();
        assert_eq!(displaced, plan.teleport_points);
    }

    #[test]
    fn clock_freeze_throws_timestamps_backwards() {
        let plan = FaultPlan { p_clock_freeze: 1.0, ..FaultPlan::default() };
        let mut points = mk_points(60);
        assert_eq!(plan.apply_session(3, &mut points), Some(InjectedFault::ClockFreeze));
        let backwards =
            points.windows(2).filter(|w| w[1].timestamp < w[0].timestamp).count();
        assert!(backwards >= 1, "at least the run boundary goes backwards");
    }

    #[test]
    fn dropout_removes_points_and_delays_tail() {
        let plan = FaultPlan { p_dropout: 1.0, ..FaultPlan::default() };
        let mut points = mk_points(120);
        assert_eq!(plan.apply_session(3, &mut points), Some(InjectedFault::Dropout));
        assert!(points.len() < 120, "window removed");
        let max_gap = points
            .windows(2)
            .map(|w| (w[1].timestamp - w[0].timestamp).secs())
            .max()
            .unwrap();
        assert!(max_gap > plan.dropout_gap_s, "gap includes the injected delay");
        // Ids renumbered contiguously.
        let ids: Vec<u64> = points.iter().map(|p| p.point_id).collect();
        assert_eq!(ids, (0..points.len() as u64).collect::<Vec<u64>>());
    }

    fn fake_image() -> (Vec<u8>, Vec<RecordSpan>) {
        // A toy container: 16-byte header, then 4 records of 12-byte
        // frame + 20-byte payload.
        let mut bytes = vec![0xAAu8; 16];
        let mut spans = Vec::new();
        for i in 0..4u8 {
            let frame_start = bytes.len();
            bytes.extend_from_slice(&[i; 12]);
            let payload_start = bytes.len();
            bytes.extend_from_slice(&[0x10 + i; 20]);
            spans.push(RecordSpan { frame_start, payload_start, end: bytes.len() });
        }
        (bytes, spans)
    }

    #[test]
    fn disk_faults_are_deterministic_and_aimed() {
        let plan = FaultPlan { disk_bit_flips: 3, ..FaultPlan::default() };
        let (clean, spans) = fake_image();
        let mut a = clean.clone();
        let mut b = clean.clone();
        assert_eq!(
            plan.corrupt_file(7, &mut a, &spans),
            ["disk_bit_flip", "disk_bit_flip", "disk_bit_flip"]
        );
        plan.corrupt_file(7, &mut b, &spans);
        assert_eq!(a, b, "same salt, same corruption");
        let mut c = clean.clone();
        plan.corrupt_file(8, &mut c, &spans);
        assert_ne!(a, c, "different salt, different corruption");
        // Every changed byte lies inside a payload span.
        for (i, (x, y)) in clean.iter().zip(&a).enumerate() {
            if x != y {
                assert!(
                    spans.iter().any(|s| i >= s.payload_start && i < s.end),
                    "flip at {i} outside payloads"
                );
            }
        }
    }

    #[test]
    fn disk_duplicate_and_truncate_and_garbage() {
        let (clean, spans) = fake_image();
        let plan = FaultPlan { disk_duplicate_record: true, ..FaultPlan::default() };
        let mut img = clean.clone();
        assert_eq!(plan.corrupt_file(1, &mut img, &spans), ["disk_duplicate_record"]);
        assert_eq!(img.len(), clean.len() + 32, "one frame+payload duplicated");

        let plan = FaultPlan { disk_truncate_bytes: 10, ..FaultPlan::default() };
        let mut img = clean.clone();
        assert_eq!(plan.corrupt_file(1, &mut img, &spans), ["disk_truncate"]);
        assert_eq!(img.len(), clean.len() - 10);
        assert_eq!(img[..], clean[..clean.len() - 10]);

        let plan = FaultPlan { disk_garbage_header: true, ..FaultPlan::default() };
        let mut img = clean.clone();
        assert_eq!(plan.corrupt_file(1, &mut img, &spans), ["disk_garbage_header"]);
        assert_ne!(img[..8], clean[..8]);
        assert_eq!(img[8..], clean[8..]);
    }

    #[test]
    fn default_plan_leaves_disk_untouched() {
        let plan = FaultPlan::default();
        assert!(!plan.has_disk_faults());
        let (clean, spans) = fake_image();
        let mut img = clean.clone();
        assert!(plan.corrupt_file(0, &mut img, &spans).is_empty());
        assert_eq!(img, clean);
    }

    #[test]
    fn disk_keys_parse() {
        let plan = FaultPlan::parse(
            "seed 5\ndisk_bit_flips 2\ndisk_truncate_bytes 37\n\
             disk_duplicate_record true\ndisk_garbage_header false\n",
        )
        .unwrap();
        assert_eq!(plan.disk_bit_flips, 2);
        assert_eq!(plan.disk_truncate_bytes, 37);
        assert!(plan.disk_duplicate_record);
        assert!(!plan.disk_garbage_header);
        assert!(plan.has_disk_faults());
        assert!(!plan.has_trace_faults());
        assert!(FaultPlan::parse("disk_bit_flips maybe\n").is_err());
    }

    #[test]
    fn stream_keys_parse() {
        let plan = FaultPlan::parse(
            "seed 5\nstream_kill_after_records 500\nstream_late_one_in 7\n\
             stream_late_delay_s 3600\nstream_burst_one_in 11\n\
             stream_stall_one_in 13\nstream_garble_one_in 17\n",
        )
        .unwrap();
        assert_eq!(plan.stream_kill_after_records, 500);
        assert_eq!(plan.stream_late_one_in, 7);
        assert_eq!(plan.stream_late_delay_s, 3_600);
        assert_eq!(plan.stream_burst_one_in, 11);
        assert_eq!(plan.stream_stall_one_in, 13);
        assert_eq!(plan.stream_garble_one_in, 17);
        assert!(plan.has_stream_faults());
        assert!(!plan.has_trace_faults());
        assert!(!FaultPlan::default().has_stream_faults());
        assert!(FaultPlan::parse("stream_late_delay_s -5\n").is_err());
        assert!(FaultPlan::parse("stream_kill_after_record 5\n").is_err());
    }

    #[test]
    fn stream_rng_is_deterministic_per_record() {
        let plan = FaultPlan { seed: 9, ..FaultPlan::default() };
        for i in 0..8u64 {
            assert_eq!(plan.stream_rng(i).below(1_000), plan.stream_rng(i).below(1_000));
        }
        assert_ne!(
            plan.stream_rng(0).below(u64::MAX as usize),
            plan.stream_rng(1).below(u64::MAX as usize)
        );
    }

    #[test]
    fn stuck_freezes_positions_but_keeps_speed() {
        let plan = FaultPlan { p_stuck: 1.0, ..FaultPlan::default() };
        let mut points = mk_points(60);
        assert_eq!(plan.apply_session(3, &mut points), Some(InjectedFault::StuckSensor));
        let frozen = points
            .windows(2)
            .filter(|w| w[0].pos == w[1].pos && w[1].speed_kmh >= 30.0)
            .count();
        assert!(frozen >= plan.stuck_points - 1);
    }
}
