use serde::{Deserialize, Serialize};
use taxitrace_geo::{heading_diff_deg, Point};
use taxitrace_timebase::Timestamp;

/// Event-based route-point emission, mimicking the Driveco device.
///
/// The paper (§III): "There is no specific sampling rate for the route
/// points, but a route point is generated when some significant change in
/// the driving behavior, such as a turn, is registered." This sampler
/// emits on heading changes, speed changes, distance, and a heartbeat
/// interval (slower when stationary) — the heartbeat is what makes the
/// Table 2 stop-detection rules observable at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Emit when heading changed by more than this (degrees) and the vehicle
    /// moved at least `min_move_m`.
    pub heading_change_deg: f64,
    pub min_move_m: f64,
    /// Emit when speed changed by more than this (km/h).
    pub speed_change_kmh: f64,
    /// Emit after this many metres regardless.
    pub max_distance_m: f64,
    /// Heartbeat while moving, seconds.
    pub moving_heartbeat_s: i64,
    /// Heartbeat while stationary, seconds.
    pub stationary_heartbeat_s: i64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            heading_change_deg: 22.0,
            min_move_m: 12.0,
            speed_change_kmh: 14.0,
            max_distance_m: 350.0,
            moving_heartbeat_s: 35,
            stationary_heartbeat_s: 30,
        }
    }
}

/// Stateful significant-change detector.
#[derive(Debug, Clone)]
pub struct Sampler {
    config: SamplerConfig,
    last: Option<EmittedState>,
}

#[derive(Debug, Clone, Copy)]
struct EmittedState {
    time: Timestamp,
    pos: Point,
    speed_kmh: f64,
    heading_deg: f64,
}

impl Sampler {
    /// New sampler; the first observation is always emitted.
    pub fn new(config: SamplerConfig) -> Self {
        Self { config, last: None }
    }

    /// Resets state (call at engine start).
    pub fn reset(&mut self) {
        self.last = None;
    }

    /// Decides whether the device stores a route point for this observation.
    pub fn observe(
        &mut self,
        time: Timestamp,
        pos: Point,
        speed_kmh: f64,
        heading_deg: f64,
    ) -> bool {
        let Some(last) = self.last else {
            self.last = Some(EmittedState { time, pos, speed_kmh, heading_deg });
            return true;
        };
        let c = &self.config;
        let moved = pos.distance(last.pos);
        let dt = (time - last.time).secs();
        let stationary = speed_kmh < 2.0 && last.speed_kmh < 2.0;
        let heartbeat =
            if stationary { c.stationary_heartbeat_s } else { c.moving_heartbeat_s };
        let emit = (heading_diff_deg(heading_deg, last.heading_deg) > c.heading_change_deg
            && moved >= c.min_move_m)
            || (speed_kmh - last.speed_kmh).abs() > c.speed_change_kmh
            || moved > c.max_distance_m
            || dt >= heartbeat;
        if emit {
            self.last = Some(EmittedState { time, pos, speed_kmh, heading_deg });
        }
        emit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> Sampler {
        Sampler::new(SamplerConfig::default())
    }

    #[test]
    fn first_observation_emits() {
        let mut s = sampler();
        assert!(s.observe(Timestamp::from_secs(0), Point::new(0.0, 0.0), 30.0, 0.0));
    }

    #[test]
    fn steady_cruise_emits_only_heartbeats() {
        let mut s = sampler();
        let mut emitted = 0;
        for t in 0..120 {
            let pos = Point::new(t as f64 * 8.0, 0.0); // 8 m/s east
            if s.observe(Timestamp::from_secs(t), pos, 29.0, 90.0) {
                emitted += 1;
            }
        }
        // 1 initial + heartbeats/distance triggers; far fewer than 120.
        assert!(emitted <= 6, "{emitted}");
        assert!(emitted >= 3, "{emitted}");
    }

    #[test]
    fn turn_triggers_emission() {
        let mut s = sampler();
        s.observe(Timestamp::from_secs(0), Point::new(0.0, 0.0), 30.0, 90.0);
        // Move 20 m and turn 45°.
        assert!(s.observe(Timestamp::from_secs(3), Point::new(20.0, 0.0), 30.0, 45.0));
    }

    #[test]
    fn small_jitter_does_not_emit() {
        let mut s = sampler();
        s.observe(Timestamp::from_secs(0), Point::new(0.0, 0.0), 30.0, 90.0);
        assert!(!s.observe(Timestamp::from_secs(1), Point::new(8.0, 0.2), 31.0, 91.5));
    }

    #[test]
    fn braking_triggers_emission() {
        let mut s = sampler();
        s.observe(Timestamp::from_secs(0), Point::new(0.0, 0.0), 45.0, 90.0);
        assert!(s.observe(Timestamp::from_secs(2), Point::new(18.0, 0.0), 20.0, 90.0));
    }

    #[test]
    fn stationary_heartbeat() {
        let mut s = sampler();
        s.observe(Timestamp::from_secs(0), Point::new(0.0, 0.0), 0.0, 90.0);
        // Below the stationary heartbeat: no emit.
        assert!(!s.observe(Timestamp::from_secs(20), Point::new(0.0, 0.0), 0.0, 90.0));
        // At the heartbeat: fires.
        assert!(s.observe(Timestamp::from_secs(30), Point::new(0.0, 0.0), 0.0, 90.0));
    }
}
