//! Deterministic random number generation for the simulator.
//!
//! The whole study must be a pure function of one `u64` seed, stable across
//! library upgrades, so the generator is implemented here
//! (xoshiro256\*\*, seeded via SplitMix64) rather than delegating to the
//! `rand` crate's version-dependent `StdRng`.

/// xoshiro256** generator with convenience distributions.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second normal deviate from Box-Muller.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from a seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()], spare_normal: None }
    }

    /// Derives an independent stream (e.g. one per taxi) from this seed
    /// state and a stream id.
    pub fn fork(&self, stream: u64) -> Rng {
        Rng::new(
            self.s[0]
                .wrapping_mul(0xd6e8_feb8_6659_fd93)
                .wrapping_add(stream.wrapping_mul(0xa076_1d64_78bd_642f))
                .wrapping_add(self.s[2]),
        )
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        // Multiply-shift; bias is negligible for simulator purposes.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate (Box-Muller with caching).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid log(0).
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Exponential deviate with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Weighted choice: returns an index drawn proportionally to `weights`.
    /// Panics if all weights are zero or the slice is empty.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted() needs a positive total weight");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(8);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forks_are_independent() {
        let base = Rng::new(7);
        let mut a = base.fork(0);
        let mut b = base.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
        // Forking is deterministic.
        let mut a2 = base.fork(0);
        assert_eq!(Rng::new(7).fork(0).next_u64(), a2.next_u64() /* same state */);
    }

    #[test]
    fn uniform_mean_and_range() {
        let mut r = Rng::new(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(42);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(42);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k = r.below(10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = Rng::new(42);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.03, "{frac2}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::new(42);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
