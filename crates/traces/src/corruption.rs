use serde::{Deserialize, Serialize};
use taxitrace_timebase::Duration;

use crate::model::RoutePoint;
use crate::rng::Rng;

/// Error-injection configuration.
///
/// The §IV-B cleaning problem exists because "due to occasional latency
/// variation, the data obtained from the measurement device (id, timestamp)
/// may arrive at the server in an incorrect order". We inject exactly the
/// two error classes the repair must distinguish:
///
/// * **latency reorder** — a burst of points arrives late, so server ids
///   (arrival order) disagree with device timestamps; the timestamp order is
///   the true one;
/// * **timestamp glitch** — the device clock hiccups on a few points, so the
///   timestamp order zig-zags while arrival order is true.
///
/// At most one class is applied per session (the paper's repair assumes one
/// of the two orders is right).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionConfig {
    /// Probability a session suffers a latency reorder burst.
    pub p_reorder: f64,
    /// Probability a session suffers timestamp glitches instead.
    pub p_ts_glitch: f64,
    /// Burst length bounds for reorders.
    pub burst_min: usize,
    pub burst_max: usize,
    /// Number of glitched points per affected session.
    pub glitch_points: usize,
    /// Max clock offset of a glitch, seconds.
    pub glitch_max_s: i64,
    /// Per-point probability of a duplicate upload (the same measurement
    /// arrives twice with a fresh server id).
    pub p_duplicate: f64,
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        Self {
            p_reorder: 0.12,
            p_ts_glitch: 0.05,
            burst_min: 4,
            burst_max: 14,
            glitch_points: 3,
            glitch_max_s: 45,
            p_duplicate: 0.004,
        }
    }
}

/// Which corruption was applied to a session (kept for validation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppliedCorruption {
    None,
    /// Arrival order scrambled; timestamps truthful.
    LatencyReorder,
    /// Timestamps glitched; arrival order truthful.
    TimestampGlitch,
}

/// Applies corruption to a session's points (given in true order) and
/// returns them in *server arrival order* with `point_id` reassigned to the
/// arrival index, plus which corruption happened.
pub fn corrupt_session(
    config: &CorruptionConfig,
    rng: &mut Rng,
    mut points: Vec<RoutePoint>,
) -> (Vec<RoutePoint>, AppliedCorruption) {
    let n = points.len();
    if n < config.burst_min + 2 {
        renumber(&mut points);
        return (points, AppliedCorruption::None);
    }
    // Duplicate uploads happen independently of the ordering error class.
    if config.p_duplicate > 0.0 {
        let mut i = 0;
        while i < points.len() {
            if rng.chance(config.p_duplicate) {
                let dup = points[i];
                points.insert(i + 1, dup);
                i += 1; // do not re-roll on the copy
            }
            i += 1;
        }
    }
    let n = points.len();
    let draw = rng.f64();
    if draw < config.p_reorder {
        // A late burst: remove a window and re-insert it a few positions
        // later, as if those packets were delayed.
        let len = config.burst_min + rng.below(config.burst_max - config.burst_min + 1);
        let len = len.min(n - 2);
        let start = rng.below(n - len);
        let shift = 1 + rng.below(len.min(n - start - len));
        let burst: Vec<RoutePoint> = points.drain(start..start + len).collect();
        let insert_at = (start + shift).min(points.len());
        for (k, p) in burst.into_iter().enumerate() {
            points.insert(insert_at + k, p);
        }
        renumber(&mut points);
        (points, AppliedCorruption::LatencyReorder)
    } else if draw < config.p_reorder + config.p_ts_glitch {
        // Clock hiccups on a few interior points.
        for _ in 0..config.glitch_points {
            let i = 1 + rng.below(n - 2);
            // Shift past at least one neighbour so the timestamp order
            // actually zig-zags (a glitch smaller than the local sampling
            // interval would be unobservable).
            let neighbour_gap = (points[i + 1].timestamp - points[i - 1].timestamp)
                .secs()
                .max(2);
            let off = neighbour_gap + rng.below(config.glitch_max_s.max(1) as usize) as i64;
            let sign = if rng.chance(0.5) { 1 } else { -1 };
            points[i].timestamp += Duration::from_secs(sign * off);
        }
        renumber(&mut points);
        (points, AppliedCorruption::TimestampGlitch)
    } else {
        renumber(&mut points);
        (points, AppliedCorruption::None)
    }
}

/// Reassigns `point_id` to the (post-corruption) arrival index.
fn renumber(points: &mut [RoutePoint]) {
    for (i, p) in points.iter_mut().enumerate() {
        p.point_id = i as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PointTruth, TaxiId, TripId};
    use taxitrace_geo::{GeoPoint, Point};
    use taxitrace_timebase::Timestamp;

    fn mk_points(n: usize) -> Vec<RoutePoint> {
        (0..n)
            .map(|i| RoutePoint {
                point_id: 0,
                trip_id: TripId(1),
                taxi: TaxiId(1),
                geo: GeoPoint::new(25.0, 65.0),
                pos: Point::new(i as f64 * 10.0, 0.0),
                timestamp: Timestamp::from_secs(i as i64 * 20),
                speed_kmh: 30.0,
                heading_deg: 90.0,
                fuel_ml: i as f64,
                truth: PointTruth { seq: i as u32, element: None },
            })
            .collect()
    }

    fn force(p_reorder: f64, p_glitch: f64) -> CorruptionConfig {
        CorruptionConfig {
            p_reorder,
            p_ts_glitch: p_glitch,
            p_duplicate: 0.0,
            ..CorruptionConfig::default()
        }
    }

    #[test]
    fn no_corruption_preserves_order() {
        let mut rng = Rng::new(1);
        let (pts, kind) = corrupt_session(&force(0.0, 0.0), &mut rng, mk_points(30));
        assert_eq!(kind, AppliedCorruption::None);
        let seqs: Vec<u32> = pts.iter().map(|p| p.truth.seq).collect();
        assert_eq!(seqs, (0..30).collect::<Vec<u32>>());
        assert_eq!(pts[5].point_id, 5);
    }

    #[test]
    fn reorder_scrambles_arrival_but_keeps_timestamps() {
        let mut rng = Rng::new(3);
        let (pts, kind) = corrupt_session(&force(1.0, 0.0), &mut rng, mk_points(30));
        assert_eq!(kind, AppliedCorruption::LatencyReorder);
        // All points still present.
        let mut seqs: Vec<u32> = pts.iter().map(|p| p.truth.seq).collect();
        assert_ne!(seqs, (0..30).collect::<Vec<u32>>(), "order actually changed");
        seqs.sort_unstable();
        assert_eq!(seqs, (0..30).collect::<Vec<u32>>());
        // Timestamp order equals true order.
        let mut by_ts = pts.clone();
        by_ts.sort_by_key(|p| p.timestamp);
        let ts_seqs: Vec<u32> = by_ts.iter().map(|p| p.truth.seq).collect();
        assert_eq!(ts_seqs, (0..30).collect::<Vec<u32>>());
    }

    #[test]
    fn glitch_keeps_arrival_order_true() {
        let mut rng = Rng::new(5);
        let (pts, kind) = corrupt_session(&force(0.0, 1.0), &mut rng, mk_points(30));
        assert_eq!(kind, AppliedCorruption::TimestampGlitch);
        // Arrival (id) order is the true order.
        let seqs: Vec<u32> = pts.iter().map(|p| p.truth.seq).collect();
        assert_eq!(seqs, (0..30).collect::<Vec<u32>>());
        // But the timestamp order differs somewhere.
        let mut by_ts = pts.clone();
        by_ts.sort_by_key(|p| p.timestamp);
        let ts_seqs: Vec<u32> = by_ts.iter().map(|p| p.truth.seq).collect();
        assert_ne!(ts_seqs, (0..30).collect::<Vec<u32>>());
    }

    #[test]
    fn tiny_sessions_left_alone() {
        let mut rng = Rng::new(7);
        let (pts, kind) = corrupt_session(&force(1.0, 0.0), &mut rng, mk_points(3));
        assert_eq!(kind, AppliedCorruption::None);
        assert_eq!(pts.len(), 3);
    }

    #[test]
    fn duplicates_injected_and_flagged_by_identity() {
        let mut rng = Rng::new(99);
        let cfg = CorruptionConfig {
            p_reorder: 0.0,
            p_ts_glitch: 0.0,
            p_duplicate: 0.3,
            ..CorruptionConfig::default()
        };
        let (pts, kind) = corrupt_session(&cfg, &mut rng, mk_points(50));
        assert_eq!(kind, AppliedCorruption::None);
        assert!(pts.len() > 50, "duplicates inserted: {}", pts.len());
        // Duplicates are exact copies modulo the server id.
        let dups = pts
            .windows(2)
            .filter(|w| {
                w[0].timestamp == w[1].timestamp && w[0].pos == w[1].pos
            })
            .count();
        assert_eq!(dups, pts.len() - 50);
    }

    #[test]
    fn ids_always_contiguous() {
        let rng = Rng::new(11);
        for seed in 0..20 {
            let mut r = rng.fork(seed);
            let (pts, _) = corrupt_session(&CorruptionConfig::default(), &mut r, mk_points(40));
            let ids: Vec<u64> = pts.iter().map(|p| p.point_id).collect();
            assert!(pts.len() >= 40, "duplicates only add points");
            assert_eq!(ids, (0..pts.len() as u64).collect::<Vec<u64>>(), "arrival ids are 0..n");
        }
    }
}
