use std::fmt;

use serde::{Deserialize, Serialize};
use taxitrace_geo::{GeoPoint, Point};
use taxitrace_roadnet::{ElementId, NodeId};
use taxitrace_timebase::{Duration, Timestamp};

/// Identifier of a taxi (the study has seven; we keep them 1-based like the
/// paper's Table 3).
///
/// Wide enough that scaled fleets beyond 255 taxis cannot silently alias
/// identities in memory. The store wire format still carries one byte, so
/// persisting a fleet larger than [`TaxiId::MAX_PERSISTABLE`] is a typed
/// encode error rather than silent truncation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaxiId(pub u16);

impl TaxiId {
    /// Largest id representable in the one-byte store wire format.
    pub const MAX_PERSISTABLE: u16 = u8::MAX as u16;
}

impl fmt::Display for TaxiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "taxi{}", self.0)
    }
}

/// Identifier of a raw trip (one engine-on session, per the paper's
/// definition: "a run between two consecutive events of turning off the
/// engine").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TripId(pub u64);

impl fmt::Display for TripId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trip{}", self.0)
    }
}

/// Simulator-only ground truth attached to a route point; production
/// pipeline stages must not read it — it exists so cleaning and matching can
/// be *validated*, which the paper could not do with real data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointTruth {
    /// Position in the true measurement order within the session.
    pub seq: u32,
    /// The traffic element the vehicle was actually on (None while off-route
    /// at a pickup spot).
    pub element: Option<ElementId>,
}

/// One measurement from the on-board device.
///
/// Mirrors the paper's §III route-point vector: "point id, trip id,
/// latitude, longitude and start time, to give examples", plus the
/// OBD-derived speed and cumulative fuel used by the analyses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutePoint {
    /// Server-assigned point id (arrival order — may disagree with
    /// `timestamp` order under latency variation, which is exactly the
    /// §IV-B cleaning problem).
    pub point_id: u64,
    pub trip_id: TripId,
    pub taxi: TaxiId,
    /// Measured WGS-84 position (includes GPS noise).
    pub geo: GeoPoint,
    /// The same position in the planar analysis frame.
    pub pos: Point,
    pub timestamp: Timestamp,
    /// OBD speed, km/h.
    pub speed_kmh: f64,
    /// GPS heading, degrees.
    pub heading_deg: f64,
    /// Cumulative fuel since session start, ml.
    pub fuel_ml: f64,
    /// Simulator ground truth (validation only).
    pub truth: PointTruth,
}

/// Ground truth of one customer trip inside a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomerTripTruth {
    /// True-order sequence range (inclusive) of the trip's points.
    pub start_seq: u32,
    pub end_seq: u32,
    pub origin: NodeId,
    pub destination: NodeId,
    /// Traffic elements traversed, in travel order.
    pub elements: Vec<ElementId>,
    /// `Some(("T", "S"))` when the trip runs from one named O-D road to
    /// another.
    pub od_pair: Option<(String, String)>,
}

/// One raw engine-on session as uploaded by the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawTrip {
    pub id: TripId,
    pub taxi: TaxiId,
    pub start_time: Timestamp,
    pub end_time: Timestamp,
    /// Route points in *server arrival order* (i.e. `point_id` order);
    /// timestamp order may differ — see §IV-B.
    pub points: Vec<RoutePoint>,
    /// Device trip summary: total time.
    pub total_time: Duration,
    /// Device trip summary: odometer distance, metres (true driven
    /// distance, not the GPS-noise polyline length).
    pub total_distance_m: f64,
    /// Device trip summary: fuel, ml.
    pub total_fuel_ml: f64,
    /// Ground truth customer-trip boundaries (validation only).
    pub truth_trips: Vec<CustomerTripTruth>,
}

impl RawTrip {
    /// Points re-sorted into true measurement order (by ground truth).
    /// Validation helper; the production pipeline must reconstruct order via
    /// the §IV-B repair instead.
    pub fn points_in_true_order(&self) -> Vec<RoutePoint> {
        let mut pts = self.points.clone();
        pts.sort_by_key(|p| p.truth.seq);
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_ids() {
        assert_eq!(TaxiId(3).to_string(), "taxi3");
        assert_eq!(TripId(17).to_string(), "trip17");
    }

    #[test]
    fn true_order_sorting() {
        let mk = |pid: u64, seq: u32| RoutePoint {
            point_id: pid,
            trip_id: TripId(1),
            taxi: TaxiId(1),
            geo: GeoPoint::new(25.0, 65.0),
            pos: Point::new(0.0, 0.0),
            timestamp: Timestamp::from_secs(seq as i64),
            speed_kmh: 0.0,
            heading_deg: 0.0,
            fuel_ml: 0.0,
            truth: PointTruth { seq, element: None },
        };
        let trip = RawTrip {
            id: TripId(1),
            taxi: TaxiId(1),
            start_time: Timestamp::from_secs(0),
            end_time: Timestamp::from_secs(2),
            points: vec![mk(0, 2), mk(1, 0), mk(2, 1)],
            total_time: Duration::from_secs(2),
            total_distance_m: 0.0,
            total_fuel_ml: 0.0,
            truth_trips: Vec::new(),
        };
        let seqs: Vec<u32> = trip.points_in_true_order().iter().map(|p| p.truth.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
