//! Data-collection substrate: the taxi fleet and its on-board devices.
//!
//! The paper's data set — seven taxis with Driveco on-board trackers driving
//! Oulu for a year (§III) — is proprietary. This crate simulates the fleet
//! end-to-end so that the downstream pipeline (cleaning, segmentation,
//! O-D selection, map-matching, fusion, analysis) processes data with the
//! same structure and the same error classes, plus ground truth the real
//! data never had:
//!
//! * [`model`] — route points, raw engine-on trips, taxi/trip identifiers,
//!   mirroring the paper's data vectors;
//! * [`columns`] — struct-of-arrays buffers of the hot route-point fields
//!   for cache-friendly cleaning and statistics loops;
//! * [`rng`] — deterministic xoshiro256** randomness (a study is a pure
//!   function of a `u64` seed);
//! * [`driver`] — per-driver behaviour profiles and seasonal speed factors;
//! * [`fuel`] — OBD-style instantaneous fuel model;
//! * [`sampler`] — the Driveco-like "significant change" route-point
//!   emitter (no fixed sampling rate);
//! * [`corruption`] — server-latency reordering and device-clock glitches,
//!   the §IV-B error classes;
//! * [`simulator`] — the kinematic fleet simulator: customer-trip
//!   generation with hotspot demand, free route choice over the road graph,
//!   traffic lights / pedestrian crossings / crowd-zone interference,
//!   engine-on sessions spanning whole shifts.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod chaos;
pub mod columns;
pub mod corruption;
pub mod driver;
pub mod fuel;
pub mod model;
pub mod rng;
pub mod sampler;
pub mod simulator;

pub use chaos::{FaultPlan, InjectedFault, RecordSpan};
pub use columns::TraceColumns;
pub use corruption::{AppliedCorruption, CorruptionConfig};
pub use driver::{season_speed_factor, DriverProfile};
pub use fuel::FuelModel;
pub use model::{CustomerTripTruth, PointTruth, RawTrip, RoutePoint, TaxiId, TripId};
pub use rng::Rng;
pub use sampler::{Sampler, SamplerConfig};
pub use simulator::{
    simulate_fleet, CrowdZone, FleetConfig, FleetData, PAPER_SEGMENTS_PER_TAXI,
};
